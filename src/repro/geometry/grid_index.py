"""Uniform grid spatial index.

A simpler alternative to the R-tree: space is cut into fixed-size cells, and
every entry is registered in each cell its bounding box overlaps. Used by the
interlinking engine as its equigrid *blocking* structure and by benchmark
baselines.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Iterator, List, Set, Tuple, TypeVar

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox

T = TypeVar("T")

CellKey = Tuple[int, int]


class GridIndex(Generic[T]):
    """Fixed-cell-size spatial hash over ``(BoundingBox, item)`` entries."""

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise GeometryError("grid cell_size must be positive")
        self.cell_size = float(cell_size)
        self._cells: Dict[CellKey, List[Tuple[BoundingBox, T]]] = defaultdict(list)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def cell_count(self) -> int:
        return len(self._cells)

    def _cell_range(self, bbox: BoundingBox) -> Iterator[CellKey]:
        min_cx = math.floor(bbox.min_x / self.cell_size)
        max_cx = math.floor(bbox.max_x / self.cell_size)
        min_cy = math.floor(bbox.min_y / self.cell_size)
        max_cy = math.floor(bbox.max_y / self.cell_size)
        for cx in range(min_cx, max_cx + 1):
            for cy in range(min_cy, max_cy + 1):
                yield (cx, cy)

    def insert(self, bbox: BoundingBox, item: T) -> None:
        """Register *item* under every cell its box overlaps."""
        self._size += 1
        for key in self._cell_range(bbox):
            self._cells[key].append((bbox, item))

    def search(self, query: BoundingBox) -> Iterator[T]:
        """Yield items whose bounding box intersects *query* (each item once)."""
        seen: Set[int] = set()
        for key in self._cell_range(query):
            for box, item in self._cells.get(key, ()):
                marker = id(item)
                if marker in seen:
                    continue
                if box.intersects(query):
                    seen.add(marker)
                    yield item

    def cell_items(self, key: CellKey) -> List[Tuple[BoundingBox, T]]:
        """All entries registered under one cell (the interlinking "block")."""
        return list(self._cells.get(key, ()))

    def cells(self) -> Iterator[Tuple[CellKey, List[Tuple[BoundingBox, T]]]]:
        """Iterate non-empty cells as (key, entries) — the block collection."""
        return iter(self._cells.items())
