"""GeoJSON (RFC 7946) encoding and decoding.

The interchange format toward non-EO developers the paper wants to reach
("the myriad of software developers that might not be experts in EO"):
geometries, features with properties, and feature collections.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import GeometryError
from repro.geometry.primitives import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


def geometry_to_geojson(geometry: Geometry) -> Dict[str, Any]:
    """Encode a geometry as a GeoJSON geometry object (dict)."""
    if isinstance(geometry, Point):
        return {"type": "Point", "coordinates": [geometry.x, geometry.y]}
    if isinstance(geometry, LineString):
        return {
            "type": "LineString",
            "coordinates": [[x, y] for x, y in geometry.coords],
        }
    if isinstance(geometry, Polygon):
        return {"type": "Polygon", "coordinates": _polygon_coords(geometry)}
    if isinstance(geometry, MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [[p.x, p.y] for p in geometry],
        }
    if isinstance(geometry, MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [[[x, y] for x, y in line.coords] for line in geometry],
        }
    if isinstance(geometry, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [_polygon_coords(p) for p in geometry],
        }
    raise GeometryError(f"cannot encode {type(geometry).__name__} as GeoJSON")


def _polygon_coords(polygon: Polygon) -> List[List[List[float]]]:
    return [[[x, y] for x, y in ring] for ring in polygon.rings]


def geojson_to_geometry(obj: Dict[str, Any]) -> Geometry:
    """Decode a GeoJSON geometry object into a geometry."""
    if not isinstance(obj, dict) or "type" not in obj:
        raise GeometryError("not a GeoJSON geometry object")
    kind = obj["type"]
    coordinates = obj.get("coordinates")
    if coordinates is None:
        raise GeometryError(f"GeoJSON {kind} missing coordinates")
    try:
        if kind == "Point":
            return Point(coordinates[0], coordinates[1])
        if kind == "LineString":
            return LineString([(c[0], c[1]) for c in coordinates])
        if kind == "Polygon":
            return _polygon_from(coordinates)
        if kind == "MultiPoint":
            return MultiPoint([Point(c[0], c[1]) for c in coordinates])
        if kind == "MultiLineString":
            return MultiLineString(
                [LineString([(c[0], c[1]) for c in line]) for line in coordinates]
            )
        if kind == "MultiPolygon":
            return MultiPolygon([_polygon_from(rings) for rings in coordinates])
    except (IndexError, TypeError) as exc:
        raise GeometryError(f"malformed GeoJSON coordinates for {kind}") from exc
    raise GeometryError(f"unsupported GeoJSON type {kind!r}")


def _polygon_from(rings: List[List[List[float]]]) -> Polygon:
    if not rings:
        raise GeometryError("GeoJSON Polygon has no rings")
    exterior = [(c[0], c[1]) for c in rings[0]]
    interiors = [[(c[0], c[1]) for c in ring] for ring in rings[1:]]
    return Polygon(exterior, interiors)


def feature(
    geometry: Geometry, properties: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Build a GeoJSON Feature object."""
    return {
        "type": "Feature",
        "geometry": geometry_to_geojson(geometry),
        "properties": dict(properties or {}),
    }


def dumps_feature_collection(
    features: Iterable[Tuple[Geometry, Dict[str, Any]]], indent: Optional[int] = None
) -> str:
    """Serialize (geometry, properties) pairs as a FeatureCollection string."""
    collection = {
        "type": "FeatureCollection",
        "features": [feature(g, p) for g, p in features],
    }
    return json.dumps(collection, indent=indent)


def loads_feature_collection(text: str) -> List[Tuple[Geometry, Dict[str, Any]]]:
    """Parse a FeatureCollection string into (geometry, properties) pairs."""
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GeometryError(f"invalid GeoJSON: {exc}") from exc
    if obj.get("type") != "FeatureCollection":
        raise GeometryError("not a FeatureCollection")
    results: List[Tuple[Geometry, Dict[str, Any]]] = []
    for item in obj.get("features", []):
        if item.get("type") != "Feature" or "geometry" not in item:
            raise GeometryError("malformed Feature in collection")
        results.append(
            (geojson_to_geometry(item["geometry"]), item.get("properties") or {})
        )
    return results
