"""Geometry primitives: points, lines, polygons, and their bounding boxes.

All geometry classes are immutable. Construction validates basic shape
invariants (ring closure, minimum vertex counts) and raises
:class:`~repro.errors.GeometryError` on violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import GeometryError

Coordinate = Tuple[float, float]


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    The universal currency of the spatial indexes: every geometry exposes a
    bounding box, and index queries are phrased as box intersection.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Coordinate:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share at least one point (borders count)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True if *other* lies entirely inside this box (borders count)."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expand(self, margin: float) -> "BoundingBox":
        """Return a box grown by *margin* on every side."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from (x, y) to this box (0 inside)."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    @staticmethod
    def union_all(boxes: Iterable["BoundingBox"]) -> "BoundingBox":
        boxes = iter(boxes)
        try:
            result = next(boxes)
        except StopIteration:
            raise GeometryError("union_all of zero bounding boxes") from None
        for box in boxes:
            result = result.union(box)
        return result


class Geometry:
    """Abstract base for all geometry types."""

    geom_type: str = "Geometry"

    @property
    def bbox(self) -> BoundingBox:
        raise NotImplementedError

    @property
    def is_empty(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.geometry.wkt import to_wkt

        return f"<{self.geom_type} {to_wkt(self)[:60]}>"


def _validate_coords(coords: Sequence[Coordinate], minimum: int, what: str) -> Tuple[Coordinate, ...]:
    coords = tuple((float(x), float(y)) for x, y in coords)
    if len(coords) < minimum:
        raise GeometryError(f"{what} requires at least {minimum} coordinates, got {len(coords)}")
    for x, y in coords:
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"{what} has non-finite coordinate ({x}, {y})")
    return coords


def _coords_bbox(coords: Sequence[Coordinate]) -> BoundingBox:
    xs = [c[0] for c in coords]
    ys = [c[1] for c in coords]
    return BoundingBox(min(xs), min(ys), max(xs), max(ys))


class Point(Geometry):
    """A single planar coordinate."""

    geom_type = "Point"
    __slots__ = ("x", "y", "_bbox")

    def __init__(self, x: float, y: float):
        x, y = float(x), float(y)
        if not (math.isfinite(x) and math.isfinite(y)):
            raise GeometryError(f"non-finite point coordinate ({x}, {y})")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    @property
    def bbox(self) -> BoundingBox:
        return BoundingBox(self.x, self.y, self.x, self.y)

    @property
    def coords(self) -> Tuple[Coordinate, ...]:
        return ((self.x, self.y),)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Point) and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash(("Point", self.x, self.y))


class LineString(Geometry):
    """An open polyline of two or more vertices."""

    geom_type = "LineString"
    __slots__ = ("coords", "_bbox")

    def __init__(self, coords: Sequence[Coordinate]):
        object.__setattr__(self, "coords", _validate_coords(coords, 2, "LineString"))
        object.__setattr__(self, "_bbox", _coords_bbox(self.coords))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LineString is immutable")

    @property
    def bbox(self) -> BoundingBox:
        return self._bbox

    @property
    def length(self) -> float:
        return sum(
            math.hypot(x2 - x1, y2 - y1)
            for (x1, y1), (x2, y2) in zip(self.coords, self.coords[1:])
        )

    def segments(self) -> Iterator[Tuple[Coordinate, Coordinate]]:
        return zip(self.coords, self.coords[1:])

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LineString) and self.coords == other.coords

    def __hash__(self) -> int:
        return hash(("LineString", self.coords))


class Polygon(Geometry):
    """A polygon with one exterior ring and zero or more interior rings (holes).

    Rings are stored closed (first coordinate == last coordinate); an unclosed
    input ring is closed automatically. Ring orientation is not normalised —
    the predicates in :mod:`repro.geometry.predicates` are orientation
    agnostic.
    """

    geom_type = "Polygon"
    __slots__ = ("exterior", "interiors", "_bbox")

    def __init__(
        self,
        exterior: Sequence[Coordinate],
        interiors: Sequence[Sequence[Coordinate]] = (),
    ):
        object.__setattr__(self, "exterior", self._close_ring(exterior))
        object.__setattr__(
            self, "interiors", tuple(self._close_ring(ring) for ring in interiors)
        )
        object.__setattr__(self, "_bbox", _coords_bbox(self.exterior))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Polygon is immutable")

    @staticmethod
    def _close_ring(coords: Sequence[Coordinate]) -> Tuple[Coordinate, ...]:
        coords = _validate_coords(coords, 3, "Polygon ring")
        if coords[0] != coords[-1]:
            coords = coords + (coords[0],)
        if len(coords) < 4:
            raise GeometryError("Polygon ring requires at least 3 distinct vertices")
        return coords

    @property
    def bbox(self) -> BoundingBox:
        return self._bbox

    @property
    def rings(self) -> Tuple[Tuple[Coordinate, ...], ...]:
        return (self.exterior,) + self.interiors

    @property
    def area(self) -> float:
        """Unsigned area: exterior area minus hole areas (shoelace formula)."""
        return abs(_ring_signed_area(self.exterior)) - sum(
            abs(_ring_signed_area(ring)) for ring in self.interiors
        )

    @property
    def centroid(self) -> Point:
        """Area-weighted centroid of the exterior ring."""
        cx, cy, area = 0.0, 0.0, _ring_signed_area(self.exterior)
        if area == 0.0:
            xs = [c[0] for c in self.exterior[:-1]]
            ys = [c[1] for c in self.exterior[:-1]]
            return Point(sum(xs) / len(xs), sum(ys) / len(ys))
        for (x1, y1), (x2, y2) in zip(self.exterior, self.exterior[1:]):
            cross = x1 * y2 - x2 * y1
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        return Point(cx / (6.0 * area), cy / (6.0 * area))

    @property
    def perimeter(self) -> float:
        return sum(
            math.hypot(x2 - x1, y2 - y1)
            for (x1, y1), (x2, y2) in zip(self.exterior, self.exterior[1:])
        )

    @property
    def vertex_count(self) -> int:
        """Total vertices across all rings (closing vertex not double counted)."""
        return sum(len(ring) - 1 for ring in self.rings)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Polygon)
            and self.exterior == other.exterior
            and self.interiors == other.interiors
        )

    def __hash__(self) -> int:
        return hash(("Polygon", self.exterior, self.interiors))

    @staticmethod
    def box(min_x: float, min_y: float, max_x: float, max_y: float) -> "Polygon":
        """Axis-aligned rectangular polygon — the workhorse of selection queries."""
        if min_x >= max_x or min_y >= max_y:
            raise GeometryError("Polygon.box requires min < max on both axes")
        return Polygon(
            [(min_x, min_y), (max_x, min_y), (max_x, max_y), (min_x, max_y)]
        )

    @staticmethod
    def regular(
        center_x: float, center_y: float, radius: float, sides: int
    ) -> "Polygon":
        """Regular *sides*-gon; used to synthesise complex geometries (E3)."""
        if sides < 3:
            raise GeometryError("regular polygon requires >= 3 sides")
        if radius <= 0:
            raise GeometryError("regular polygon requires positive radius")
        step = 2.0 * math.pi / sides
        return Polygon(
            [
                (center_x + radius * math.cos(i * step), center_y + radius * math.sin(i * step))
                for i in range(sides)
            ]
        )


def _ring_signed_area(ring: Sequence[Coordinate]) -> float:
    area = 0.0
    for (x1, y1), (x2, y2) in zip(ring, ring[1:]):
        area += x1 * y2 - x2 * y1
    return area / 2.0


class _MultiGeometry(Geometry):
    """Shared behaviour for homogeneous geometry collections."""

    member_type: type = Geometry
    __slots__ = ("geoms", "_bbox")

    def __init__(self, geoms: Sequence[Geometry]):
        geoms = tuple(geoms)
        if not geoms:
            raise GeometryError(f"{self.geom_type} requires at least one member")
        for geom in geoms:
            if not isinstance(geom, self.member_type):
                raise GeometryError(
                    f"{self.geom_type} member must be {self.member_type.__name__}, "
                    f"got {type(geom).__name__}"
                )
        object.__setattr__(self, "geoms", geoms)
        object.__setattr__(
            self, "_bbox", BoundingBox.union_all(g.bbox for g in geoms)
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{self.geom_type} is immutable")

    @property
    def bbox(self) -> BoundingBox:
        return self._bbox

    def __len__(self) -> int:
        return len(self.geoms)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.geoms == other.geoms

    def __hash__(self) -> int:
        return hash((self.geom_type, self.geoms))


class MultiPoint(_MultiGeometry):
    geom_type = "MultiPoint"
    member_type = Point


class MultiLineString(_MultiGeometry):
    geom_type = "MultiLineString"
    member_type = LineString


class MultiPolygon(_MultiGeometry):
    geom_type = "MultiPolygon"
    member_type = Polygon

    @property
    def area(self) -> float:
        return sum(p.area for p in self.geoms)

    @property
    def vertex_count(self) -> int:
        return sum(p.vertex_count for p in self.geoms)
