"""Computational-geometry substrate.

A self-contained planar geometry library (no shapely dependency) providing the
primitives, predicates, and spatial indexes used by the geospatial RDF store
(:mod:`repro.geosparql`), the interlinking engine (:mod:`repro.interlinking`),
the raster/vector tooling (:mod:`repro.raster`), and the applications.

Geometries are immutable value objects. Coordinates are planar ``(x, y)``
pairs; for geographic data use :mod:`repro.geometry.crs` to project WGS84
longitude/latitude to local metric coordinates first when metric distances
matter.
"""

from repro.geometry.primitives import (
    BoundingBox,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry.wkt import from_wkt, to_wkt
from repro.geometry.predicates import (
    contains,
    distance,
    disjoint,
    intersects,
    within,
)
from repro.geometry.rtree import RTree
from repro.geometry.grid_index import GridIndex
from repro.geometry.crs import LocalProjection

__all__ = [
    "BoundingBox",
    "Geometry",
    "GridIndex",
    "LineString",
    "LocalProjection",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "RTree",
    "contains",
    "disjoint",
    "distance",
    "from_wkt",
    "intersects",
    "to_wkt",
    "within",
]
