"""Well-Known Text (WKT) parsing and serialization.

Supports the seven planar types used across the library: POINT, LINESTRING,
POLYGON, MULTIPOINT, MULTILINESTRING, MULTIPOLYGON and GEOMETRYCOLLECTION-free
round trips. The dialect is the OGC Simple Features one used by GeoSPARQL
``geo:wktLiteral`` values (optionally prefixed by a CRS IRI, which the
GeoSPARQL layer strips before calling :func:`from_wkt`).
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from repro.errors import WKTParseError
from repro.geometry.primitives import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

_NUMBER = re.compile(r"[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?")
_TOKEN = re.compile(r"\s*([A-Za-z]+|\(|\)|,|[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)")


class _Tokens:
    """Cursor over a WKT token stream."""

    def __init__(self, text: str):
        self._tokens: List[str] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN.match(text, pos)
            if match is None:
                remainder = text[pos:].strip()
                if remainder:
                    raise WKTParseError(f"unexpected character at: {remainder[:20]!r}")
                break
            self._tokens.append(match.group(1))
            pos = match.end()
        self._index = 0

    def peek(self) -> str:
        if self._index >= len(self._tokens):
            raise WKTParseError("unexpected end of WKT input")
        return self._tokens[self._index]

    def next(self) -> str:
        token = self.peek()
        self._index += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise WKTParseError(f"expected {expected!r}, got {token!r}")

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)


def _parse_coord(tokens: _Tokens) -> Tuple[float, float]:
    x_text = tokens.next()
    if not _NUMBER.fullmatch(x_text):
        raise WKTParseError(f"expected number, got {x_text!r}")
    y_text = tokens.next()
    if not _NUMBER.fullmatch(y_text):
        raise WKTParseError(f"expected number, got {y_text!r}")
    return float(x_text), float(y_text)


def _parse_coord_list(tokens: _Tokens) -> List[Tuple[float, float]]:
    tokens.expect("(")
    coords = [_parse_coord(tokens)]
    while tokens.peek() == ",":
        tokens.next()
        coords.append(_parse_coord(tokens))
    tokens.expect(")")
    return coords


def _parse_ring_list(tokens: _Tokens) -> List[List[Tuple[float, float]]]:
    tokens.expect("(")
    rings = [_parse_coord_list(tokens)]
    while tokens.peek() == ",":
        tokens.next()
        rings.append(_parse_coord_list(tokens))
    tokens.expect(")")
    return rings


def from_wkt(text: str) -> Geometry:
    """Parse a WKT string into a :class:`~repro.geometry.primitives.Geometry`.

    Raises :class:`~repro.errors.WKTParseError` on malformed input.
    """
    tokens = _Tokens(text)
    tag = tokens.next().upper()
    if tag == "POINT":
        coords = _parse_coord_list(tokens)
        if len(coords) != 1:
            raise WKTParseError("POINT requires exactly one coordinate")
        geometry: Geometry = Point(*coords[0])
    elif tag == "LINESTRING":
        geometry = LineString(_parse_coord_list(tokens))
    elif tag == "POLYGON":
        rings = _parse_ring_list(tokens)
        geometry = Polygon(rings[0], rings[1:])
    elif tag == "MULTIPOINT":
        geometry = MultiPoint([Point(*c) for c in _parse_multipoint(tokens)])
    elif tag == "MULTILINESTRING":
        geometry = MultiLineString([LineString(c) for c in _parse_ring_list(tokens)])
    elif tag == "MULTIPOLYGON":
        tokens.expect("(")
        polygons = [_parse_ring_list(tokens)]
        while tokens.peek() == ",":
            tokens.next()
            polygons.append(_parse_ring_list(tokens))
        tokens.expect(")")
        geometry = MultiPolygon([Polygon(r[0], r[1:]) for r in polygons])
    else:
        raise WKTParseError(f"unsupported WKT type: {tag!r}")
    if not tokens.exhausted:
        raise WKTParseError(f"trailing tokens after {tag}")
    return geometry


def _parse_multipoint(tokens: _Tokens) -> List[Tuple[float, float]]:
    # MULTIPOINT accepts both `(1 2, 3 4)` and `((1 2), (3 4))`.
    tokens.expect("(")
    coords: List[Tuple[float, float]] = []
    while True:
        if tokens.peek() == "(":
            tokens.next()
            coords.append(_parse_coord(tokens))
            tokens.expect(")")
        else:
            coords.append(_parse_coord(tokens))
        if tokens.peek() == ",":
            tokens.next()
            continue
        tokens.expect(")")
        return coords


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def _format_coords(coords: Sequence[Tuple[float, float]]) -> str:
    return ", ".join(f"{_format_number(x)} {_format_number(y)}" for x, y in coords)


def to_wkt(geometry: Geometry) -> str:
    """Serialize a geometry to WKT. Inverse of :func:`from_wkt`."""
    if isinstance(geometry, Point):
        return f"POINT ({_format_number(geometry.x)} {_format_number(geometry.y)})"
    if isinstance(geometry, LineString):
        return f"LINESTRING ({_format_coords(geometry.coords)})"
    if isinstance(geometry, Polygon):
        rings = ", ".join(f"({_format_coords(ring)})" for ring in geometry.rings)
        return f"POLYGON ({rings})"
    if isinstance(geometry, MultiPoint):
        inner = ", ".join(
            f"({_format_number(p.x)} {_format_number(p.y)})" for p in geometry
        )
        return f"MULTIPOINT ({inner})"
    if isinstance(geometry, MultiLineString):
        inner = ", ".join(f"({_format_coords(line.coords)})" for line in geometry)
        return f"MULTILINESTRING ({inner})"
    if isinstance(geometry, MultiPolygon):
        inner = ", ".join(
            "(" + ", ".join(f"({_format_coords(ring)})" for ring in poly.rings) + ")"
            for poly in geometry
        )
        return f"MULTIPOLYGON ({inner})"
    raise WKTParseError(f"cannot serialize {type(geometry).__name__}")
