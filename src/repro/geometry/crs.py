"""Coordinate reference system helpers.

Copernicus products are georeferenced in WGS84 longitude/latitude, but metric
predicates (distances in metres, 10 m grid cells) need a planar metric frame.
:class:`LocalProjection` implements the equirectangular (plate carrée with
latitude-of-origin scaling) projection: accurate to well under 1% for the
scene-sized extents (tens to hundreds of km) this library works with.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import GeometryError
from repro.geometry.primitives import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

EARTH_RADIUS_M = 6_371_008.8


class LocalProjection:
    """Projects WGS84 (lon, lat) degrees to local metres around an origin."""

    def __init__(self, origin_lon: float, origin_lat: float):
        if not -180.0 <= origin_lon <= 180.0:
            raise GeometryError(f"origin longitude out of range: {origin_lon}")
        if not -90.0 <= origin_lat <= 90.0:
            raise GeometryError(f"origin latitude out of range: {origin_lat}")
        self.origin_lon = float(origin_lon)
        self.origin_lat = float(origin_lat)
        self._cos_lat = math.cos(math.radians(origin_lat))
        if self._cos_lat < 1e-6:
            raise GeometryError("projection origin may not be at a pole")

    def forward(self, lon: float, lat: float) -> Tuple[float, float]:
        """(lon, lat) degrees -> (x, y) metres east/north of the origin."""
        x = math.radians(lon - self.origin_lon) * EARTH_RADIUS_M * self._cos_lat
        y = math.radians(lat - self.origin_lat) * EARTH_RADIUS_M
        return x, y

    def inverse(self, x: float, y: float) -> Tuple[float, float]:
        """(x, y) metres -> (lon, lat) degrees. Inverse of :meth:`forward`."""
        lon = self.origin_lon + math.degrees(x / (EARTH_RADIUS_M * self._cos_lat))
        lat = self.origin_lat + math.degrees(y / EARTH_RADIUS_M)
        return lon, lat

    def project_geometry(self, geometry: Geometry) -> Geometry:
        """Project every coordinate of *geometry* with :meth:`forward`."""
        return _map_coords(geometry, self.forward)

    def unproject_geometry(self, geometry: Geometry) -> Geometry:
        """Inverse-project every coordinate of *geometry*."""
        return _map_coords(geometry, self.inverse)


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two WGS84 points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def _map_coords(geometry: Geometry, transform) -> Geometry:
    if isinstance(geometry, Point):
        return Point(*transform(geometry.x, geometry.y))
    if isinstance(geometry, LineString):
        return LineString([transform(x, y) for x, y in geometry.coords])
    if isinstance(geometry, Polygon):
        return Polygon(
            [transform(x, y) for x, y in geometry.exterior],
            [[transform(x, y) for x, y in ring] for ring in geometry.interiors],
        )
    if isinstance(geometry, MultiPoint):
        return MultiPoint([_map_coords(g, transform) for g in geometry])
    if isinstance(geometry, MultiLineString):
        return MultiLineString([_map_coords(g, transform) for g in geometry])
    if isinstance(geometry, MultiPolygon):
        return MultiPolygon([_map_coords(g, transform) for g in geometry])
    raise GeometryError(f"cannot project {type(geometry).__name__}")
