"""Spatial predicates over the geometry primitives.

The predicate set mirrors the GeoSPARQL simple-features functions the
ExtremeEarth query layer exposes (``geof:sfIntersects``, ``sfContains``,
``sfWithin``, ``geof:distance``). Semantics follow OGC simple features:
boundaries count as part of a geometry, so a point on a polygon edge is
contained by the polygon and touching geometries intersect.

All functions accept any pairing of Point / LineString / Polygon and their
Multi* counterparts.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.primitives import (
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    _MultiGeometry,
)

Coordinate = Tuple[float, float]
_EPS = 1e-12


# ---------------------------------------------------------------------------
# Segment-level helpers
# ---------------------------------------------------------------------------

def _orientation(p: Coordinate, q: Coordinate, r: Coordinate) -> int:
    """-1 clockwise, 0 collinear, +1 counter-clockwise (with tolerance)."""
    value = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    scale = max(
        abs(q[0] - p[0]), abs(q[1] - p[1]), abs(r[0] - p[0]), abs(r[1] - p[1]), 1.0
    )
    if abs(value) <= _EPS * scale * scale:
        return 0
    return 1 if value > 0 else -1


def _on_segment(p: Coordinate, q: Coordinate, r: Coordinate) -> bool:
    """Assuming p, q, r collinear: is q within the box spanned by p..r?"""
    return (
        min(p[0], r[0]) - _EPS <= q[0] <= max(p[0], r[0]) + _EPS
        and min(p[1], r[1]) - _EPS <= q[1] <= max(p[1], r[1]) + _EPS
    )


def segments_intersect(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> bool:
    """True if closed segments a1-a2 and b1-b2 share at least one point."""
    o1 = _orientation(a1, a2, b1)
    o2 = _orientation(a1, a2, b2)
    o3 = _orientation(b1, b2, a1)
    o4 = _orientation(b1, b2, a2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(a1, b1, a2):
        return True
    if o2 == 0 and _on_segment(a1, b2, a2):
        return True
    if o3 == 0 and _on_segment(b1, a1, b2):
        return True
    if o4 == 0 and _on_segment(b1, a2, b2):
        return True
    return False


def point_segment_distance(p: Coordinate, a: Coordinate, b: Coordinate) -> float:
    """Euclidean distance from point *p* to closed segment a-b."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = max(0.0, min(1.0, ((px - ax) * dx + (py - ay) * dy) / length_sq))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def segment_segment_distance(
    a1: Coordinate, a2: Coordinate, b1: Coordinate, b2: Coordinate
) -> float:
    if segments_intersect(a1, a2, b1, b2):
        return 0.0
    return min(
        point_segment_distance(a1, b1, b2),
        point_segment_distance(a2, b1, b2),
        point_segment_distance(b1, a1, a2),
        point_segment_distance(b2, a1, a2),
    )


# ---------------------------------------------------------------------------
# Ring / polygon helpers
# ---------------------------------------------------------------------------

def point_on_ring(x: float, y: float, ring: Sequence[Coordinate]) -> bool:
    p = (x, y)
    for a, b in zip(ring, ring[1:]):
        if _orientation(a, b, p) == 0 and _on_segment(a, p, b):
            return True
    return False


def point_in_ring(x: float, y: float, ring: Sequence[Coordinate]) -> bool:
    """Ray casting: strictly-inside test (boundary handled by caller)."""
    inside = False
    for (x1, y1), (x2, y2) in zip(ring, ring[1:]):
        if (y1 > y) != (y2 > y):
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
            if x < x_cross:
                inside = not inside
    return inside


def point_in_polygon(point: Point, polygon: Polygon) -> bool:
    """OGC containment: interior or boundary of the polygon."""
    if not polygon.bbox.contains_point(point.x, point.y):
        return False
    if point_on_ring(point.x, point.y, polygon.exterior):
        return True
    if not point_in_ring(point.x, point.y, polygon.exterior):
        return False
    for hole in polygon.interiors:
        if point_on_ring(point.x, point.y, hole):
            return True
        if point_in_ring(point.x, point.y, hole):
            return False
    return True


def _rings_cross(
    rings_a: Sequence[Sequence[Coordinate]], rings_b: Sequence[Sequence[Coordinate]]
) -> bool:
    for ring_a in rings_a:
        for ring_b in rings_b:
            for sa in zip(ring_a, ring_a[1:]):
                for sb in zip(ring_b, ring_b[1:]):
                    if segments_intersect(sa[0], sa[1], sb[0], sb[1]):
                        return True
    return False


def _line_crosses_polygon_boundary(line: LineString, polygon: Polygon) -> bool:
    for seg in line.segments():
        for ring in polygon.rings:
            for rseg in zip(ring, ring[1:]):
                if segments_intersect(seg[0], seg[1], rseg[0], rseg[1]):
                    return True
    return False


# ---------------------------------------------------------------------------
# Public predicates
# ---------------------------------------------------------------------------

def intersects(a: Geometry, b: Geometry) -> bool:
    """True if geometries *a* and *b* share at least one point."""
    if not a.bbox.intersects(b.bbox):
        return False
    if isinstance(a, _MultiGeometry):
        return any(intersects(part, b) for part in a)
    if isinstance(b, _MultiGeometry):
        return any(intersects(a, part) for part in b)
    return _simple_intersects(a, b)


def _simple_intersects(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, Point) and isinstance(b, Point):
        return math.hypot(a.x - b.x, a.y - b.y) <= _EPS
    if isinstance(a, Point) and isinstance(b, LineString):
        return any(
            point_segment_distance((a.x, a.y), s, e) <= _EPS for s, e in b.segments()
        )
    if isinstance(a, LineString) and isinstance(b, Point):
        return _simple_intersects(b, a)
    if isinstance(a, Point) and isinstance(b, Polygon):
        return point_in_polygon(a, b)
    if isinstance(a, Polygon) and isinstance(b, Point):
        return point_in_polygon(b, a)
    if isinstance(a, LineString) and isinstance(b, LineString):
        return any(
            segments_intersect(sa[0], sa[1], sb[0], sb[1])
            for sa in a.segments()
            for sb in b.segments()
        )
    if isinstance(a, LineString) and isinstance(b, Polygon):
        if _line_crosses_polygon_boundary(a, b):
            return True
        return point_in_polygon(Point(*a.coords[0]), b)
    if isinstance(a, Polygon) and isinstance(b, LineString):
        return _simple_intersects(b, a)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        if _rings_cross(a.rings, b.rings):
            return True
        # No boundary crossing: one polygon may lie entirely inside the other.
        if point_in_polygon(Point(*b.exterior[0]), a):
            return True
        return point_in_polygon(Point(*a.exterior[0]), b)
    raise GeometryError(
        f"intersects not defined for {type(a).__name__} / {type(b).__name__}"
    )


def contains(a: Geometry, b: Geometry) -> bool:
    """True if every point of *b* lies in (interior or boundary of) *a*."""
    if not a.bbox.contains_box(b.bbox):
        return False
    if isinstance(b, _MultiGeometry):
        return all(contains(a, part) for part in b)
    if isinstance(a, MultiPolygon):
        # Sufficient condition: some member contains b outright. (Containment
        # split across members is not representable without polygon union.)
        return any(contains(part, b) for part in a)
    if isinstance(a, (MultiPoint, MultiLineString)):
        return any(contains(part, b) for part in a)
    return _simple_contains(a, b)


def _simple_contains(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, Point):
        return isinstance(b, Point) and a == b
    if isinstance(a, LineString):
        if isinstance(b, Point):
            return _simple_intersects(b, a)
        if isinstance(b, LineString):
            return all(
                any(
                    point_segment_distance(v, s, e) <= _EPS
                    for s, e in a.segments()
                )
                for v in b.coords
            ) and intersects(a, b)
        return False
    if isinstance(a, Polygon):
        if isinstance(b, Point):
            return point_in_polygon(b, a)
        if isinstance(b, LineString):
            # All vertices inside, and the line never exits through a hole:
            # approximate by requiring all vertices + segment midpoints inside.
            probes = list(b.coords) + [
                ((s[0] + e[0]) / 2.0, (s[1] + e[1]) / 2.0) for s, e in b.segments()
            ]
            return all(point_in_polygon(Point(*p), a) for p in probes)
        if isinstance(b, Polygon):
            if not all(
                point_in_polygon(Point(x, y), a) for x, y in b.exterior[:-1]
            ):
                return False
            # Exclude the case where b dips into one of a's holes.
            for hole in a.interiors:
                hole_poly = Polygon(hole)
                if intersects(hole_poly, b) and not _boundary_only_overlap(
                    hole_poly, b
                ):
                    return False
            return True
        return False
    raise GeometryError(
        f"contains not defined for {type(a).__name__} / {type(b).__name__}"
    )


def _boundary_only_overlap(hole: Polygon, other: Polygon) -> bool:
    """True if *other* only touches the hole's boundary (no interior overlap)."""
    centroid = other.centroid
    return not (
        point_in_polygon(centroid, hole)
        and not point_on_ring(centroid.x, centroid.y, hole.exterior)
    )


def within(a: Geometry, b: Geometry) -> bool:
    """True if *a* lies entirely inside *b* — the converse of :func:`contains`."""
    return contains(b, a)


def disjoint(a: Geometry, b: Geometry) -> bool:
    """True if the geometries share no point."""
    return not intersects(a, b)


def distance(a: Geometry, b: Geometry) -> float:
    """Minimum Euclidean distance between the two geometries (0 if touching)."""
    if isinstance(a, _MultiGeometry):
        return min(distance(part, b) for part in a)
    if isinstance(b, _MultiGeometry):
        return min(distance(a, part) for part in b)
    if intersects(a, b):
        return 0.0
    return _boundary_distance(a, b)


def _geometry_segments(geom: Geometry):
    if isinstance(geom, Point):
        return [((geom.x, geom.y), (geom.x, geom.y))]
    if isinstance(geom, LineString):
        return list(geom.segments())
    if isinstance(geom, Polygon):
        segments = []
        for ring in geom.rings:
            segments.extend(zip(ring, ring[1:]))
        return segments
    raise GeometryError(f"distance not defined for {type(geom).__name__}")


def _boundary_distance(a: Geometry, b: Geometry) -> float:
    return min(
        segment_segment_distance(sa[0], sa[1], sb[0], sb[1])
        for sa in _geometry_segments(a)
        for sb in _geometry_segments(b)
    )
