"""R-tree spatial index.

Two construction modes:

* **Bulk load** (:meth:`RTree.bulk_load`) using Sort-Tile-Recursive (STR)
  packing — the mode the Strabon-like store uses when a dataset is loaded.
* **Dynamic insert** (:meth:`RTree.insert`) with quadratic-split node
  overflow — used for incremental catalogue ingestion.

Both store ``(BoundingBox, item)`` pairs; queries return the stored items.
The E2 ablation bench compares the two construction modes.
"""

from __future__ import annotations

import math
from typing import Callable, Generic, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

import heapq

from repro.errors import GeometryError
from repro.geometry.primitives import BoundingBox

T = TypeVar("T")

DEFAULT_MAX_ENTRIES = 16


class _Node(Generic[T]):
    __slots__ = ("bbox", "children", "entries", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.bbox: Optional[BoundingBox] = None
        self.children: List["_Node[T]"] = []
        self.entries: List[Tuple[BoundingBox, T]] = []

    def recompute_bbox(self) -> None:
        if self.is_leaf:
            boxes: Iterable[BoundingBox] = (box for box, _ in self.entries)
        else:
            boxes = (child.bbox for child in self.children if child.bbox is not None)
        self.bbox = BoundingBox.union_all(boxes)


def _enlargement(box: BoundingBox, extra: BoundingBox) -> float:
    union = box.union(extra)
    return union.area - box.area


class RTree(Generic[T]):
    """An R-tree over ``(BoundingBox, item)`` entries."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 4:
            raise GeometryError("R-tree max_entries must be >= 4")
        self._max_entries = max_entries
        self._min_entries = max(2, max_entries // 3)
        self._root: _Node[T] = _Node(is_leaf=True)
        self._size = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        entries: Iterable[Tuple[BoundingBox, T]],
        max_entries: int = DEFAULT_MAX_ENTRIES,
    ) -> "RTree[T]":
        """Build a packed tree with Sort-Tile-Recursive (STR) layout."""
        tree = cls(max_entries=max_entries)
        entries = list(entries)
        tree._size = len(entries)
        if not entries:
            return tree

        leaves: List[_Node[T]] = []
        for chunk in _str_pack(entries, max_entries, key=lambda e: e[0]):
            leaf: _Node[T] = _Node(is_leaf=True)
            leaf.entries = chunk
            leaf.recompute_bbox()
            leaves.append(leaf)

        level = leaves
        while len(level) > 1:
            parents: List[_Node[T]] = []
            packed = _str_pack(
                [(node.bbox, node) for node in level], max_entries, key=lambda e: e[0]
            )
            for chunk in packed:
                parent: _Node[T] = _Node(is_leaf=False)
                parent.children = [node for _, node in chunk]
                parent.recompute_bbox()
                parents.append(parent)
            level = parents
        tree._root = level[0]
        return tree

    def insert(self, bbox: BoundingBox, item: T) -> None:
        """Insert one entry, splitting overflowing nodes quadratically."""
        self._size += 1
        split = self._insert_into(self._root, bbox, item)
        if split is not None:
            new_root: _Node[T] = _Node(is_leaf=False)
            new_root.children = [self._root, split]
            new_root.recompute_bbox()
            self._root = new_root

    def _insert_into(
        self, node: _Node[T], bbox: BoundingBox, item: T
    ) -> Optional[_Node[T]]:
        if node.is_leaf:
            node.entries.append((bbox, item))
            node.bbox = bbox if node.bbox is None else node.bbox.union(bbox)
            if len(node.entries) > self._max_entries:
                return self._split_leaf(node)
            return None

        best = min(
            node.children,
            key=lambda child: (
                _enlargement(child.bbox, bbox),
                child.bbox.area,
            ),
        )
        split = self._insert_into(best, bbox, item)
        node.bbox = node.bbox.union(bbox) if node.bbox is not None else bbox
        if split is not None:
            node.children.append(split)
            if len(node.children) > self._max_entries:
                return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node[T]) -> _Node[T]:
        group_a, group_b = _quadratic_split(node.entries, key=lambda e: e[0], min_fill=self._min_entries)
        node.entries = group_a
        node.recompute_bbox()
        sibling: _Node[T] = _Node(is_leaf=True)
        sibling.entries = group_b
        sibling.recompute_bbox()
        return sibling

    def _split_internal(self, node: _Node[T]) -> _Node[T]:
        group_a, group_b = _quadratic_split(
            node.children, key=lambda child: child.bbox, min_fill=self._min_entries
        )
        node.children = group_a
        node.recompute_bbox()
        sibling: _Node[T] = _Node(is_leaf=False)
        sibling.children = group_b
        sibling.recompute_bbox()
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height

    def search(self, query: BoundingBox) -> Iterator[T]:
        """Yield items whose bounding box intersects *query*."""
        for box, item in self.search_with_boxes(query):
            yield item

    def search_with_boxes(self, query: BoundingBox) -> Iterator[Tuple[BoundingBox, T]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bbox is None or not node.bbox.intersects(query):
                continue
            if node.is_leaf:
                for box, item in node.entries:
                    if box.intersects(query):
                        yield box, item
            else:
                stack.extend(node.children)

    def nearest(self, x: float, y: float, count: int = 1) -> List[Tuple[float, T]]:
        """Return the *count* entries nearest to (x, y) as (distance, item).

        Best-first search over node boxes; exact for the stored boxes.
        """
        if count < 1:
            raise GeometryError("nearest requires count >= 1")
        results: List[Tuple[float, T]] = []
        if self._root.bbox is None:
            return results
        counter = 0
        heap: List[Tuple[float, int, object, bool]] = [
            (self._root.bbox.distance_to_point(x, y), counter, self._root, False)
        ]
        while heap and len(results) < count:
            dist, _, payload, is_entry = heapq.heappop(heap)
            if is_entry:
                results.append((dist, payload))  # type: ignore[arg-type]
                continue
            node: _Node[T] = payload  # type: ignore[assignment]
            if node.is_leaf:
                for box, item in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap, (box.distance_to_point(x, y), counter, item, True)
                    )
            else:
                for child in node.children:
                    if child.bbox is None:
                        continue
                    counter += 1
                    heapq.heappush(
                        heap,
                        (child.bbox.distance_to_point(x, y), counter, child, False),
                    )
        return results

    def items(self) -> Iterator[Tuple[BoundingBox, T]]:
        """Yield all stored (bbox, item) pairs."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(node.children)


def _str_pack(
    entries: Sequence,
    max_entries: int,
    key: Callable,
) -> List[List]:
    """Sort-Tile-Recursive packing of entries into groups of <= max_entries."""
    count = len(entries)
    leaf_count = math.ceil(count / max_entries)
    slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
    by_x = sorted(entries, key=lambda e: key(e).center[0])
    slice_size = math.ceil(count / slice_count)
    groups: List[List] = []
    for i in range(0, count, slice_size):
        vertical = sorted(by_x[i : i + slice_size], key=lambda e: key(e).center[1])
        for j in range(0, len(vertical), max_entries):
            groups.append(list(vertical[j : j + max_entries]))
    return groups


def _quadratic_split(items: List, key: Callable, min_fill: int):
    """Guttman quadratic split of an overflowing node's items into two groups."""
    # Pick the pair of seeds wasting the most area if grouped together.
    worst_waste = -1.0
    seeds = (0, 1)
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            box_i, box_j = key(items[i]), key(items[j])
            waste = box_i.union(box_j).area - box_i.area - box_j.area
            if waste > worst_waste:
                worst_waste = waste
                seeds = (i, j)

    group_a = [items[seeds[0]]]
    group_b = [items[seeds[1]]]
    box_a = key(items[seeds[0]])
    box_b = key(items[seeds[1]])
    remaining = [item for idx, item in enumerate(items) if idx not in seeds]

    while remaining:
        # Honour minimum fill so neither group ends up underfull.
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(remaining)
            break
        item = remaining.pop()
        box = key(item)
        enlarge_a = _enlargement(box_a, box)
        enlarge_b = _enlargement(box_b, box)
        if enlarge_a < enlarge_b or (
            enlarge_a == enlarge_b and len(group_a) <= len(group_b)
        ):
            group_a.append(item)
            box_a = box_a.union(box)
        else:
            group_b.append(item)
            box_b = box_b.union(box)
    return group_a, group_b
