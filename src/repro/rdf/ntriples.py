"""N-Triples parser and serializer (RDF 1.1 N-Triples, UTF-8 subset).

N-Triples is the line-oriented exchange format used by the GeoTriples output
stage and the catalogue dump/restore path.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Tuple

from repro.errors import RDFError
from repro.rdf.term import BNode, IRI, Literal, Term, Triple, make_triple

_IRI_RE = re.compile(r"<([^<>\"\s]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'  # quoted lexical form with escapes
    r"(?:\^\^<([^<>\"\s]*)>|@([A-Za-z0-9-]+))?"  # optional datatype or language
)

_ESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    result: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            pair = text[i : i + 2]
            if pair in _ESCAPES:
                result.append(_ESCAPES[pair])
                i += 2
                continue
            if pair == "\\u" and i + 6 <= len(text):
                result.append(chr(int(text[i + 2 : i + 6], 16)))
                i += 6
                continue
            raise RDFError(f"invalid escape sequence at {text[i:i+2]!r}")
        result.append(text[i])
        i += 1
    return "".join(result)


def _parse_term(text: str, pos: int, line_no: int) -> Tuple[Term, int]:
    while pos < len(text) and text[pos] in " \t":
        pos += 1
    if pos >= len(text):
        raise RDFError(f"line {line_no}: unexpected end of line")
    if text[pos] == "<":
        match = _IRI_RE.match(text, pos)
        if not match:
            raise RDFError(f"line {line_no}: malformed IRI")
        return IRI(match.group(1)), match.end()
    if text.startswith("_:", pos):
        match = _BNODE_RE.match(text, pos)
        if not match:
            raise RDFError(f"line {line_no}: malformed blank node")
        return BNode(match.group(1)), match.end()
    if text[pos] == '"':
        match = _LITERAL_RE.match(text, pos)
        if not match:
            raise RDFError(f"line {line_no}: malformed literal")
        lexical = _unescape(match.group(1))
        datatype, language = match.group(2), match.group(3)
        return Literal(lexical, datatype=datatype, language=language), match.end()
    raise RDFError(f"line {line_no}: unexpected character {text[pos]!r}")


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples text, yielding triples. Comments and blank lines skipped."""
    for line_no, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        subject, pos = _parse_term(line, 0, line_no)
        predicate, pos = _parse_term(line, pos, line_no)
        obj, pos = _parse_term(line, pos, line_no)
        remainder = line[pos:].strip()
        if remainder != ".":
            raise RDFError(f"line {line_no}: expected terminating '.', got {remainder!r}")
        yield make_triple(subject, predicate, obj)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to N-Triples text (one statement per line)."""
    return "".join(triple.n3() + "\n" for triple in triples)
