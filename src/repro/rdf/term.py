"""RDF terms: IRIs, literals, blank nodes, and triples.

Terms are immutable, hashable value objects. Literal values carry an optional
datatype IRI and language tag, and :meth:`Literal.to_python` converts the
common XSD datatypes to native Python values for use in SPARQL filters.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import NamedTuple, Optional, Union

from repro.errors import RDFError

_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"

_NUMERIC_DATATYPES = frozenset({XSD_INTEGER, XSD_DECIMAL, XSD_DOUBLE})


@dataclass(frozen=True)
class IRI:
    """An absolute IRI reference."""

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise RDFError("IRI must be non-empty")
        if any(ch in self.value for ch in ("<", ">", '"', " ", "\n", "\t")):
            raise RDFError(f"IRI contains forbidden character: {self.value!r}")

    def n3(self) -> str:
        return f"<{self.value}>"

    def __str__(self) -> str:
        return self.value


_bnode_counter = itertools.count()
_bnode_lock = threading.Lock()


@dataclass(frozen=True)
class BNode:
    """A blank node with a document-scoped label."""

    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            with _bnode_lock:
                object.__setattr__(self, "label", f"b{next(_bnode_counter)}")
        if not self.label.replace("_", "").isalnum():
            raise RDFError(f"invalid blank node label: {self.label!r}")

    def n3(self) -> str:
        return f"_:{self.label}"

    def __str__(self) -> str:
        return f"_:{self.label}"


@dataclass(frozen=True)
class Literal:
    """An RDF literal with optional datatype IRI or language tag."""

    lexical: str
    datatype: Optional[str] = None
    language: Optional[str] = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise RDFError("literal cannot have both datatype and language tag")
        if not isinstance(self.lexical, str):
            raise RDFError(f"literal lexical form must be str, got {type(self.lexical).__name__}")

    @staticmethod
    def from_python(value: Union[str, int, float, bool]) -> "Literal":
        """Build a typed literal from a native Python value."""
        if isinstance(value, bool):
            return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
        if isinstance(value, int):
            return Literal(str(value), datatype=XSD_INTEGER)
        if isinstance(value, float):
            return Literal(repr(value), datatype=XSD_DOUBLE)
        if isinstance(value, str):
            return Literal(value)
        raise RDFError(f"cannot convert {type(value).__name__} to literal")

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to a native Python value based on the datatype."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype in (XSD_DECIMAL, XSD_DOUBLE):
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical in ("true", "1")
        return self.lexical

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # \u-escape remaining control and Unicode line-break characters so the
        # serialized statement survives line-oriented processing.
        escaped = "".join(
            f"\\u{ord(ch):04x}" if ord(ch) < 0x20 or ch in "\x85\u2028\u2029" else ch
            for ch in escaped
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def __str__(self) -> str:
        return self.lexical


Term = Union[IRI, BNode, Literal]


class Triple(NamedTuple):
    """An RDF triple. Subject/predicate positions are validated on creation
    via :func:`make_triple`; the bare NamedTuple is kept cheap for indexing."""

    subject: Term
    predicate: Term
    object: Term

    def n3(self) -> str:
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."


def make_triple(subject: Term, predicate: Term, obj: Term) -> Triple:
    """Validated triple constructor enforcing RDF position rules."""
    if isinstance(subject, Literal):
        raise RDFError("triple subject cannot be a literal")
    if not isinstance(predicate, IRI):
        raise RDFError("triple predicate must be an IRI")
    if not isinstance(obj, (IRI, BNode, Literal)):
        raise RDFError(f"invalid triple object: {obj!r}")
    return Triple(subject, predicate, obj)
