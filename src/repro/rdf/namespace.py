"""Namespace helper and the vocabularies used across the stack."""

from __future__ import annotations

from repro.rdf.term import IRI


class Namespace:
    """IRI factory: ``NS = Namespace("http://ex.org/"); NS.thing -> IRI``."""

    def __init__(self, base: str):
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return IRI(self._base + name)

    def __getitem__(self, name: str) -> IRI:
        return IRI(self._base + name)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def local_name(self, iri: IRI) -> str:
        """Strip the namespace base from *iri* (must be in this namespace)."""
        if iri not in self:
            raise ValueError(f"{iri} not in namespace {self._base}")
        return iri.value[len(self._base):]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")

# GeoSPARQL vocabulary (OGC).
GEO = Namespace("http://www.opengis.net/ont/geosparql#")
GEOF = Namespace("http://www.opengis.net/def/function/geosparql/")
SF = Namespace("http://www.opengis.net/ont/sf#")

# ExtremeEarth application vocabularies.
EX = Namespace("http://extremeearth.eu/ontology#")
EOP = Namespace("http://extremeearth.eu/product#")
