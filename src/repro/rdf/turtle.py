"""Turtle-subset parser and serializer.

Supports the Turtle features the examples and the catalogue use:
``@prefix`` declarations, prefixed names, ``a`` for rdf:type, ``;`` and ``,``
abbreviation, typed/lang literals, and numeric/boolean shorthand. Nested blank
node property lists are not supported (GeoTriples emits flat triples).
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import RDFError
from repro.rdf.term import (
    BNode,
    IRI,
    Literal,
    Term,
    Triple,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
    make_triple,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*"(?:\^\^<[^<>"\s]*>|\^\^[A-Za-z][\w-]*:[\w-]+|@[A-Za-z0-9-]+)?)
  | (?P<bnode>_:[A-Za-z0-9_]+)
  | (?P<prefix_decl>@prefix)
  | (?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<boolean>\btrue\b|\bfalse\b)
  | (?P<a>\ba\b)
  | (?P<pname>[A-Za-z][\w-]*:[\w./#-]*|:[\w./#-]+)
  | (?P<punct>[.;,\[\]])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise RDFError(f"turtle: unexpected input at {text[pos:pos+20]!r}")
        kind = match.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


class _TurtleParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._index = 0
        self._prefixes: Dict[str, str] = {}

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise RDFError("turtle: unexpected end of input")
        self._index += 1
        return token

    def _expect_punct(self, char: str) -> None:
        kind, value = self._next()
        if kind != "punct" or value != char:
            raise RDFError(f"turtle: expected {char!r}, got {value!r}")

    def _resolve_pname(self, pname: str) -> IRI:
        prefix, _, local = pname.partition(":")
        if prefix not in self._prefixes:
            raise RDFError(f"turtle: undeclared prefix {prefix!r}")
        return IRI(self._prefixes[prefix] + local)

    def _parse_term(self, kind: str, value: str) -> Term:
        if kind == "iri":
            return IRI(value[1:-1])
        if kind == "bnode":
            return BNode(value[2:])
        if kind == "pname":
            return self._resolve_pname(value)
        if kind == "a":
            return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        if kind == "number":
            datatype = XSD_DECIMAL if ("." in value or "e" in value or "E" in value) else XSD_INTEGER
            return Literal(value, datatype=datatype)
        if kind == "boolean":
            return Literal(value, datatype=XSD_BOOLEAN)
        if kind == "literal":
            return self._parse_literal(value)
        raise RDFError(f"turtle: unexpected token {value!r}")

    def _parse_literal(self, text: str) -> Literal:
        end_quote = _find_closing_quote(text)
        lexical = _unescape_turtle(text[1:end_quote])
        suffix = text[end_quote + 1 :]
        if not suffix:
            return Literal(lexical)
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        if suffix.startswith("^^<"):
            return Literal(lexical, datatype=suffix[3:-1])
        if suffix.startswith("^^"):
            return Literal(lexical, datatype=self._resolve_pname(suffix[2:]).value)
        raise RDFError(f"turtle: malformed literal suffix {suffix!r}")

    def parse(self) -> Iterator[Triple]:
        while self._peek() is not None:
            kind, value = self._peek()
            if kind == "prefix_decl":
                self._parse_prefix()
                continue
            yield from self._parse_statement()

    def _parse_prefix(self) -> None:
        self._next()  # @prefix
        kind, value = self._next()
        if kind != "pname" or not value.endswith(":"):
            raise RDFError(f"turtle: expected prefix name, got {value!r}")
        prefix = value[:-1]
        kind, iri_text = self._next()
        if kind != "iri":
            raise RDFError("turtle: expected IRI in @prefix")
        self._prefixes[prefix] = iri_text[1:-1]
        self._expect_punct(".")

    def _parse_statement(self) -> Iterator[Triple]:
        kind, value = self._next()
        subject = self._parse_term(kind, value)
        while True:
            kind, value = self._next()
            predicate = self._parse_term(kind, value)
            if not isinstance(predicate, IRI):
                raise RDFError(f"turtle: predicate must be IRI, got {predicate!r}")
            while True:
                kind, value = self._next()
                obj = self._parse_term(kind, value)
                yield make_triple(subject, predicate, obj)
                kind, value = self._next()
                if kind != "punct":
                    raise RDFError(f"turtle: expected punctuation, got {value!r}")
                if value == ",":
                    continue
                break
            if value == ";":
                # Allow trailing ';' before '.'
                next_token = self._peek()
                if next_token is not None and next_token == ("punct", "."):
                    self._next()
                    return
                continue
            if value == ".":
                return
            raise RDFError(f"turtle: unexpected punctuation {value!r}")


def _find_closing_quote(text: str) -> int:
    i = 1
    while i < len(text):
        if text[i] == "\\":
            i += 2
            continue
        if text[i] == '"':
            return i
        i += 1
    raise RDFError(f"turtle: unterminated literal {text!r}")


def _unescape_turtle(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\r", "\r")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


def parse_turtle(text: str) -> Iterator[Triple]:
    """Parse Turtle-subset text into triples."""
    return _TurtleParser(text).parse()


def serialize_turtle(
    triples: Iterable[Triple], prefixes: Optional[Dict[str, str]] = None
) -> str:
    """Serialize triples to Turtle, grouping by subject and abbreviating IRIs."""
    prefixes = dict(prefixes or {})
    lines: List[str] = [
        f"@prefix {name}: <{base}> ." for name, base in sorted(prefixes.items())
    ]
    if lines:
        lines.append("")

    def abbreviate(term: Term) -> str:
        if isinstance(term, IRI):
            if term.value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type":
                return "a"
            for name, base in prefixes.items():
                if term.value.startswith(base):
                    local = term.value[len(base):]
                    if re.fullmatch(r"[\w.-]*", local):
                        return f"{name}:{local}"
            return term.n3()
        return term.n3()

    by_subject: Dict[Term, List[Triple]] = defaultdict(list)
    for triple in triples:
        by_subject[triple.subject].append(triple)

    for subject, group in by_subject.items():
        by_predicate: Dict[Term, List[Term]] = defaultdict(list)
        for triple in group:
            by_predicate[triple.predicate].append(triple.object)
        predicate_parts = []
        for predicate, objects in by_predicate.items():
            object_text = ", ".join(abbreviate(o) for o in objects)
            predicate_parts.append(f"{abbreviate(predicate)} {object_text}")
        body = " ;\n    ".join(predicate_parts)
        lines.append(f"{abbreviate(subject)} {body} .")
    return "\n".join(lines) + "\n"
