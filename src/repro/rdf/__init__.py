"""RDF substrate: terms, triple store, and serialization.

This package implements the RDF data model the Strabon-like geospatial store
(:mod:`repro.geosparql`), the GeoTriples mapper, the interlinking engine, the
federation layer, and the semantic catalogue are built on.

The triple store (:class:`~repro.rdf.graph.Graph`) keeps three hash indexes
(SPO, POS, OSP) so any triple pattern with at least one bound position is
answered without a full scan — the classic in-memory RDF layout.
"""

from repro.rdf.term import BNode, IRI, Literal, Term, Triple
from repro.rdf.namespace import (
    EX,
    GEO,
    GEOF,
    Namespace,
    RDF,
    RDFS,
    XSD,
)
from repro.rdf.graph import Graph
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.rdf.turtle import parse_turtle, serialize_turtle

__all__ = [
    "BNode",
    "EX",
    "GEO",
    "GEOF",
    "Graph",
    "IRI",
    "Literal",
    "Namespace",
    "RDF",
    "RDFS",
    "Term",
    "Triple",
    "XSD",
    "parse_ntriples",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_turtle",
]
