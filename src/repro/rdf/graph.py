"""In-memory triple store with SPO / POS / OSP hash indexes.

Every triple pattern with at least one bound position is answered from an
index; only the fully unbound pattern scans. This is the storage layer under
both the Strabon-like GeoStore and the naive baseline — the baselines differ
only in how they treat *spatial* filters, so E2 isolates the spatial index.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import RDFError
from repro.rdf.term import Term, Triple, make_triple

Pattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]


class Graph:
    """A set of RDF triples with pattern-matching access paths."""

    def __init__(self, name: str = "default"):
        self.name = name
        self._triples: Set[Triple] = set()
        # Monotonic mutation counter: bumped on every successful add/remove,
        # so plan caches can key on content identity (see repro.cache).
        self._version = 0
        # index[first][second] -> set of third
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))

    @property
    def version(self) -> int:
        """Content version: changes iff the triple set has changed."""
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Add a triple. Returns False if it was already present."""
        triple = make_triple(subject, predicate, obj)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._version += 1
        s, p, o = triple
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(*triple)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add_triple(t))

    def remove(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Remove a triple. Returns False if it was not present."""
        triple = Triple(subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._version += 1
        s, p, o = triple
        self._prune(self._spo, s, p, o)
        self._prune(self._pos, p, o, s)
        self._prune(self._osp, o, s, p)
        return True

    @staticmethod
    def _prune(index, a, b, c) -> None:
        bucket = index[a][b]
        bucket.discard(c)
        if not bucket:
            del index[a][b]
            if not index[a]:
                del index[a]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def triples(self, pattern: Pattern) -> Iterator[Triple]:
        """Yield triples matching a pattern of bound terms and ``None`` wildcards."""
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            triple = Triple(s, p, o)
            if triple in self._triples:
                yield triple
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        yield from self._triples

    def count(self, pattern: Pattern) -> int:
        """Number of triples matching *pattern* (used by the federation planner)."""
        s, p, o = pattern
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is not None and o is None:
            return len(self._spo.get(s, {}).get(p, ()))
        if s is None and p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and p is None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        return sum(1 for _ in self.triples(pattern))

    def subjects(self, predicate: Optional[Term] = None, obj: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for triple in self.triples((None, predicate, obj)):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: Optional[Term] = None, predicate: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for triple in self.triples((subject, predicate, None)):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self) -> Iterator[Term]:
        return iter(self._pos.keys())

    def value(self, subject: Term, predicate: Term) -> Optional[Term]:
        """The single object of (subject, predicate, ?) or None; raises if many."""
        objects = list(self._spo.get(subject, {}).get(predicate, ()))
        if not objects:
            return None
        if len(objects) > 1:
            raise RDFError(
                f"value() found {len(objects)} objects for {subject} {predicate}"
            )
        return objects[0]

    def predicate_count(self, predicate: Term) -> int:
        """Total triples with the given predicate (planner statistics)."""
        return sum(len(s) for s in self._pos.get(predicate, {}).values())
