"""In-memory triple store with SPO / POS / OSP hash indexes.

Every triple pattern with at least one bound position is answered from an
index; only the fully unbound pattern scans. This is the storage layer under
both the Strabon-like GeoStore and the naive baseline — the baselines differ
only in how they treat *spatial* filters, so E2 isolates the spatial index.

The graph also maintains a **term dictionary** mapping every term it has ever
seen to a dense integer id (:meth:`term_id` / :meth:`term_for_id`). Ids are
assigned in first-seen order and never recycled — the dictionary is
append-only even under :meth:`remove` — so columnar consumers
(:mod:`repro.sparql.vector`) can keep id-indexed decode arrays that stay
valid across mutations and only ever need extending.

Alongside the dictionary the graph keeps an **id-row table**: three parallel
lists of (subject, predicate, object) ids, one row per live triple
(:meth:`id_columns`). Rows are unordered; :meth:`remove` swap-pops so both
mutations stay O(1). The vector engine snapshots these lists into numpy
arrays (keyed on :attr:`version`) and answers every scan with boolean masks
instead of iterating triples through Python.
"""

from __future__ import annotations

from array import array
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import RDFError
from repro.rdf.term import Term, Triple, make_triple

Pattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]


class Graph:
    """A set of RDF triples with pattern-matching access paths."""

    def __init__(self, name: str = "default"):
        self.name = name
        self._triples: Set[Triple] = set()
        # Monotonic mutation counter: bumped on every successful add/remove,
        # so plan caches can key on content identity (see repro.cache).
        self._version = 0
        # index[first][second] -> set of third
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(lambda: defaultdict(set))
        # Term dictionary: dense ids in first-seen order, never recycled.
        self._term_ids: Dict[Term, int] = {}
        self._id_terms: List[Term] = []
        # Id-row table: parallel (s, p, o) id columns, one row per live
        # triple, in no particular order. Stored as array('q') so columnar
        # consumers can snapshot them through the buffer protocol (a memcpy,
        # not a per-element conversion). _row_of maps a triple to its row so
        # remove can swap-pop in O(1).
        self._row_s = array("q")
        self._row_p = array("q")
        self._row_o = array("q")
        self._row_triples: List[Triple] = []
        self._row_of: Dict[Triple, int] = {}

    @property
    def version(self) -> int:
        """Content version: changes iff the triple set has changed."""
        return self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Add a triple. Returns False if it was already present."""
        triple = make_triple(subject, predicate, obj)
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._version += 1
        s, p, o = triple
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._row_of[triple] = len(self._row_s)
        self._row_s.append(self._intern(s))
        self._row_p.append(self._intern(p))
        self._row_o.append(self._intern(o))
        self._row_triples.append(triple)
        return True

    def add_triple(self, triple: Triple) -> bool:
        return self.add(*triple)

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns the number actually inserted."""
        return sum(1 for t in triples if self.add_triple(t))

    def remove(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Remove a triple. Returns False if it was not present."""
        triple = Triple(subject, predicate, obj)
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._version += 1
        s, p, o = triple
        self._prune(self._spo, s, p, o)
        self._prune(self._pos, p, o, s)
        self._prune(self._osp, o, s, p)
        row = self._row_of.pop(triple)
        last = len(self._row_triples) - 1
        if row != last:
            moved = self._row_triples[last]
            self._row_s[row] = self._row_s[last]
            self._row_p[row] = self._row_p[last]
            self._row_o[row] = self._row_o[last]
            self._row_triples[row] = moved
            self._row_of[moved] = row
        self._row_s.pop()
        self._row_p.pop()
        self._row_o.pop()
        self._row_triples.pop()
        return True

    @staticmethod
    def _prune(index, a, b, c) -> None:
        bucket = index[a][b]
        bucket.discard(c)
        if not bucket:
            del index[a][b]
            if not index[a]:
                del index[a]

    # ------------------------------------------------------------------
    # Term dictionary
    # ------------------------------------------------------------------

    def _intern(self, term: Term) -> int:
        term_id = self._term_ids.get(term)
        if term_id is None:
            term_id = len(self._id_terms)
            self._term_ids[term] = term_id
            self._id_terms.append(term)
        return term_id

    @property
    def term_count(self) -> int:
        """Number of distinct terms ever seen (the dictionary is append-only)."""
        return len(self._id_terms)

    def term_id(self, term: Term) -> Optional[int]:
        """The dense id for *term*, or None if the graph has never seen it."""
        return self._term_ids.get(term)

    def term_for_id(self, term_id: int) -> Term:
        """The term a dictionary id decodes to; raises on out-of-range ids."""
        return self._id_terms[term_id]

    def id_columns(self) -> Tuple[array, array, array]:
        """The id-row table: parallel (subject, predicate, object) id columns.

        One row per live triple, in no particular order, as ``array('q')``
        buffers. Callers must treat them as read-only and snapshot them
        (keyed on :attr:`version`) before doing columnar work — they mutate
        with the graph.
        """
        return self._row_s, self._row_p, self._row_o

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def triples(self, pattern: Pattern) -> Iterator[Triple]:
        """Yield triples matching a pattern of bound terms and ``None`` wildcards."""
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            triple = Triple(s, p, o)
            if triple in self._triples:
                yield triple
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
            return
        if s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield Triple(s, pred, obj)
            return
        if p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        yield from self._triples

    def count(self, pattern: Pattern) -> int:
        """Number of triples matching *pattern*.

        Used by the federation planner and the vector engine's cost model.
        Every shape short of fully-bound is answered from index bucket sizes
        without materializing triples: two-bound shapes are one bucket
        lookup, single-bound shapes sum bucket sizes (O(buckets), not
        O(matching triples)).
        """
        s, p, o = pattern
        if s is None and p is None and o is None:
            return len(self._triples)
        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._triples else 0
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        return sum(len(preds) for preds in self._osp.get(o, {}).values())

    def subjects(self, predicate: Optional[Term] = None, obj: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for triple in self.triples((None, predicate, obj)):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: Optional[Term] = None, predicate: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for triple in self.triples((subject, predicate, None)):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def predicates(self) -> Iterator[Term]:
        return iter(self._pos.keys())

    def value(self, subject: Term, predicate: Term) -> Optional[Term]:
        """The single object of (subject, predicate, ?) or None; raises if many."""
        objects = list(self._spo.get(subject, {}).get(predicate, ()))
        if not objects:
            return None
        if len(objects) > 1:
            raise RDFError(
                f"value() found {len(objects)} objects for {subject} {predicate}"
            )
        return objects[0]

    def predicate_count(self, predicate: Term) -> int:
        """Total triples with the given predicate (planner statistics)."""
        return sum(len(s) for s in self._pos.get(predicate, {}).values())

    # ------------------------------------------------------------------
    # Index statistics (O(1); feed the vector engine's cost model)
    # ------------------------------------------------------------------

    def distinct_subjects(self) -> int:
        """Number of distinct subjects (top-level SPO fanout)."""
        return len(self._spo)

    def distinct_predicates(self) -> int:
        """Number of distinct predicates (top-level POS fanout)."""
        return len(self._pos)

    def distinct_objects(self) -> int:
        """Number of distinct objects (top-level OSP fanout)."""
        return len(self._osp)
