"""End-to-end ExtremeEarth pipeline orchestration."""

from repro.pipeline.extremeearth import (
    ExtremeEarthPipeline,
    IngestReport,
    SceneReport,
)

__all__ = ["ExtremeEarthPipeline", "IngestReport", "SceneReport"]
