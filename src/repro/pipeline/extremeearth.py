"""The ExtremeEarth platform pipeline: ingest -> analyse -> knowledge -> query.

Wires the whole stack together the way Challenge C5 describes: products land
in HopsFS-sim and the semantic catalogue; scenes flow through the deep
learning classifiers on the simulated cluster; extracted information
(classification maps, probability rasters) and knowledge (icebergs, fields,
RDF) are materialised and registered; everything is queryable through the
catalogue afterwards.

The pipeline also keeps the books for two paper claims:

* **E10 (variety)** — "1PB of Sentinel data ... about 450TB of content
  information and knowledge": :meth:`information_ratio` is materialised
  information+knowledge bytes over raw scene bytes.
* **E13 (velocity)** — ingest throughput on the simulated cluster, with
  locality-aware scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PipelineError
from repro.apps.foodsecurity.cropmap import classify_scene, extract_fields
from repro.apps.polar.icebergs import detect_icebergs
from repro.apps.polar.pcdss import encode_ice_chart
from repro.apps.polar.seaice import classify_ice_scene
from repro.catalog.service import SemanticCatalog
from repro.cluster.dataframe import SimContext
from repro.cluster.resources import ClusterSpec
from repro.geosparql.store import GeoStore
from repro.hopsfs.filesystem import HopsFS
from repro.hopsfs.kvstore import ShardedKVStore
from repro.ml.network import Sequential
from repro.raster.products import Product
from repro.raster.sentinel import LandCover, SeaIce, SentinelScene
from repro.rdf.ntriples import serialize_ntriples


@dataclass
class IngestReport:
    """Outcome of an archive ingest run."""

    products: int
    raw_bytes: int
    simulated_seconds: float

    @property
    def products_per_second(self) -> float:
        if self.simulated_seconds == 0:
            return 0.0
        return self.products / self.simulated_seconds


@dataclass
class SceneReport:
    """Outcome of processing one scene."""

    scene_bytes: int
    information_bytes: int  # classification + probability rasters
    knowledge_entities: int  # icebergs / fields registered in the catalogue
    pcdss_bytes: int = 0


class ExtremeEarthPipeline:
    """The integrated platform."""

    def __init__(
        self,
        metadata_shards: int = 8,
        cluster: Optional[ClusterSpec] = None,
        ingest_cost_s_per_product: float = 0.05,
    ):
        if ingest_cost_s_per_product <= 0:
            raise PipelineError("ingest cost must be positive")
        self.fs = HopsFS(store=ShardedKVStore(shard_count=metadata_shards))
        self.catalog = SemanticCatalog()
        self.context = SimContext(
            cluster or ClusterSpec(node_count=4, cpu_slots_per_node=4),
            task_overhead_s=0.01,
            per_item_cost_s=ingest_cost_s_per_product,
        )
        self.fs.makedirs("/archive/products")
        self.fs.makedirs("/archive/knowledge")
        self._raw_bytes = 0
        self._information_bytes = 0
        self._knowledge_bytes = 0
        self._scenes_processed = 0

    # ------------------------------------------------------------------
    # Ingest (E13)
    # ------------------------------------------------------------------

    def ingest_archive(self, products: Sequence[Product]) -> IngestReport:
        """Register product metadata in HopsFS + the semantic catalogue.

        The per-product work (checksum, metadata extraction, registration)
        runs as a distributed job on the simulated cluster.
        """
        products = list(products)
        if not products:
            raise PipelineError("nothing to ingest")
        before = self.context.simulated_time_s

        collection = self.context.parallelize(products)
        registered = collection.map(self._register_product)
        count = registered.count()

        raw_bytes = sum(p.size_bytes for p in products)
        self._raw_bytes += raw_bytes
        self.catalog.add_products(products)
        return IngestReport(
            products=count,
            raw_bytes=raw_bytes,
            simulated_seconds=self.context.simulated_time_s - before,
        )

    def _register_product(self, product: Product) -> str:
        path = f"/archive/products/{product.name}.meta"
        record = (
            f"{product.mission.value},{product.product_type},"
            f"{product.sensing_time.isoformat()},{product.size_bytes}"
        ).encode()
        if not self.fs.exists(path):
            self.fs.create(path, record)
        return path

    # ------------------------------------------------------------------
    # Scene processing (E10 accounting)
    # ------------------------------------------------------------------

    def process_polar_scene(
        self,
        scene: SentinelScene,
        model: Sequential,
        patch_size: int = 8,
        pcdss_budget: int = 2048,
        observed_at: str = "2017-03-01T00:00:00",
    ) -> SceneReport:
        """Sea-ice pipeline: classify, extract icebergs, package for ships."""
        if scene.mission != "S1":
            raise PipelineError("polar pipeline expects a Sentinel-1 scene")
        stage_map = classify_ice_scene(model, scene, patch_size=patch_size)
        probabilities = model.predict_proba(
            _scene_patches(scene.grid.data, patch_size, normalize="sar")
        )
        information = _information_bytes(stage_map, probabilities.shape[1])

        detections = detect_icebergs(scene)
        for detection in detections:
            self.catalog.add_iceberg(
                detection.detection_id, detection.outline, observed_at
            )
        message = encode_ice_chart(stage_map, byte_budget=pcdss_budget)
        self._register_content(stage_map, SeaIce)

        return self._account_scene(
            scene, int(information), len(detections), pcdss_bytes=len(message)
        )

    def process_agri_scene(
        self,
        scene: SentinelScene,
        model: Sequential,
        patch_size: int = 8,
        min_field_pixels: int = 16,
    ) -> SceneReport:
        """Food-security pipeline: crop map + field boundaries as knowledge."""
        if scene.mission != "S2":
            raise PipelineError("agri pipeline expects a Sentinel-2 scene")
        crop_map = classify_scene(model, scene, patch_size=patch_size)
        probabilities = model.predict_proba(
            _scene_patches(scene.grid.data, patch_size, normalize="none")
        )
        information = _information_bytes(crop_map, probabilities.shape[1])
        fields = extract_fields(
            crop_map, scene.grid, min_pixels=min_field_pixels
        )
        for index, (boundary, crop) in enumerate(fields):
            self.catalog.add_crop_field(
                f"s{self._scenes_processed}f{index}", str(crop), boundary
            )
        self._register_content(crop_map, LandCover)
        return self._account_scene(scene, int(information), len(fields))

    def _register_content(self, class_map: np.ndarray, class_enum) -> None:
        """Publish the scene's class composition as catalogue knowledge, so
        products become searchable by what is *in* them (Challenge C4)."""
        from repro.raster.stats import class_fractions
        from repro.rdf.term import IRI

        fractions = {}
        for value, fraction in class_fractions(class_map).items():
            try:
                fractions[class_enum(value).name] = fraction
            except ValueError:
                continue  # classifier indexes outside the enum: skip
        scene_iri = IRI(
            f"http://extremeearth.eu/scene/{self._scenes_processed + 1:06d}"
        )
        self.catalog.add_content_summary(scene_iri, fractions)

    def _account_scene(
        self,
        scene: SentinelScene,
        information_bytes: int,
        knowledge_entities: int,
        pcdss_bytes: int = 0,
    ) -> SceneReport:
        self._scenes_processed += 1
        scene_bytes = scene.grid.nbytes
        self._raw_bytes += scene_bytes
        self._information_bytes += information_bytes
        # Knowledge bytes: the serialized RDF lives in the catalogue store;
        # approximate with the N-Triples size of what this scene added.
        self._knowledge_bytes += knowledge_entities * 400
        path = f"/archive/knowledge/scene{self._scenes_processed:06d}.nt"
        sample = serialize_ntriples([]).encode() or b""
        if not self.fs.exists(path):
            self.fs.create(path, sample + b"#knowledge index\n")
        return SceneReport(
            scene_bytes=scene_bytes,
            information_bytes=information_bytes,
            knowledge_entities=knowledge_entities,
            pcdss_bytes=pcdss_bytes,
        )

    # ------------------------------------------------------------------
    # Claims accounting
    # ------------------------------------------------------------------

    @property
    def raw_bytes(self) -> int:
        return self._raw_bytes

    @property
    def information_bytes(self) -> int:
        return self._information_bytes + self._knowledge_bytes

    def information_ratio(self) -> float:
        """Materialised information+knowledge bytes / raw bytes (E10)."""
        if self._raw_bytes == 0:
            raise PipelineError("no data processed yet")
        return self.information_bytes / self._raw_bytes

    @property
    def scenes_processed(self) -> int:
        return self._scenes_processed


def _information_bytes(class_map: np.ndarray, num_classes: int) -> int:
    """Bytes of materialised "content information": the class map (int16 per
    pixel) plus per-pixel class probability rasters quantised to uint8 (the
    operational encoding of concentrations/confidences)."""
    pixels = class_map.size
    return class_map.astype(np.int16).nbytes + num_classes * pixels


def _scene_patches(data: np.ndarray, patch_size: int, normalize: str) -> np.ndarray:
    """Non-overlapping patches of a scene for probability extraction."""
    if normalize == "sar":
        from repro.apps.polar.seaice import normalize_sar

        data = normalize_sar(data)
    bands, rows, cols = data.shape
    usable_r = (rows // patch_size) * patch_size
    usable_c = (cols // patch_size) * patch_size
    patches = (
        data[:, :usable_r, :usable_c]
        .reshape(bands, usable_r // patch_size, patch_size, usable_c // patch_size, patch_size)
        .transpose(1, 3, 0, 2, 4)
        .reshape(-1, bands, patch_size, patch_size)
    )
    return patches
