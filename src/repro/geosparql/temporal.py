"""stSPARQL temporal extension: period literals and Allen-style functions.

Strabon is a *spatiotemporal* RDF store ("the state-of-the art geospatial
and temporal RDF store Strabon"); its stSPARQL dialect adds valid-time
periods to triples and temporal relations to filters. This module provides
the same capability for our engine:

* ``strdf:period`` literals with lexical form ``[start, end)`` over ISO-8601
  instants; ``xsd:dateTime`` literals are accepted as degenerate periods;
* the Allen-family filter functions ``before``, ``after``, ``during``,
  ``overlaps`` (plus ``periodIntersects`` and accessors ``periodStart`` /
  ``periodEnd``), registered alongside the ``geof:`` functions;
* :class:`IntervalIndex` — a sorted interval structure for candidate
  pre-filtering of temporal selections.
"""

from __future__ import annotations

import bisect
from datetime import datetime
from typing import List, Optional, Sequence, Tuple, TypeVar, Generic

from repro.errors import RDFError
from repro.rdf.term import Literal, Term, XSD_DATE, XSD_DATETIME
from repro.sparql.evaluator import FunctionRegistry
from repro.sparql.functions import EvaluationError, Value

STRDF = "http://strdf.di.uoa.gr/ontology#"
PERIOD_DATATYPE = STRDF + "period"

BEFORE = STRDF + "before"
AFTER = STRDF + "after"
DURING = STRDF + "during"
OVERLAPS = STRDF + "overlaps"
PERIOD_INTERSECTS = STRDF + "periodIntersects"
PERIOD_START = STRDF + "periodStart"
PERIOD_END = STRDF + "periodEnd"

Instant = datetime
Period = Tuple[datetime, datetime]

T = TypeVar("T")


def period_literal(start: str, end: str) -> Literal:
    """Build a ``strdf:period`` literal ``[start, end)`` from ISO instants."""
    period = (_parse_instant(start), _parse_instant(end))
    if period[0] > period[1]:
        raise RDFError(f"period start {start!r} after end {end!r}")
    return Literal(f"[{start}, {end})", datatype=PERIOD_DATATYPE)


def is_temporal_literal(term: Term) -> bool:
    return isinstance(term, Literal) and term.datatype in (
        PERIOD_DATATYPE,
        XSD_DATETIME,
        XSD_DATE,
    )


def literal_period(term: Term) -> Period:
    """Parse a temporal literal into a half-open [start, end) period.

    ``xsd:dateTime``/``xsd:date`` values become degenerate instants.
    """
    if not isinstance(term, Literal):
        raise RDFError(f"not a temporal literal: {term!r}")
    if term.datatype == PERIOD_DATATYPE:
        text = term.lexical.strip()
        if not (text.startswith("[") and text.endswith(")")):
            raise RDFError(f"malformed period literal: {term.lexical!r}")
        start_text, _, end_text = text[1:-1].partition(",")
        if not end_text:
            raise RDFError(f"malformed period literal: {term.lexical!r}")
        start = _parse_instant(start_text.strip())
        end = _parse_instant(end_text.strip())
        if start > end:
            raise RDFError(f"period start after end: {term.lexical!r}")
        return start, end
    if term.datatype in (XSD_DATETIME, XSD_DATE):
        instant = _parse_instant(term.lexical)
        return instant, instant
    raise RDFError(f"not a temporal literal: {term!r}")


def _parse_instant(text: str) -> datetime:
    try:
        return datetime.fromisoformat(text)
    except ValueError as exc:
        raise RDFError(f"invalid ISO instant {text!r}") from exc


# ---------------------------------------------------------------------------
# Relation semantics (half-open intervals)
# ---------------------------------------------------------------------------

def period_before(a: Period, b: Period) -> bool:
    """a ends at or before b starts (no shared instant)."""
    return a[1] <= b[0] and a != b


def period_during(a: Period, b: Period) -> bool:
    """a contained in b (boundaries allowed)."""
    return b[0] <= a[0] and a[1] <= b[1]


def period_overlaps(a: Period, b: Period) -> bool:
    """The periods share at least one instant."""
    if a[0] == a[1] or b[0] == b[1]:
        # Degenerate instants: containment check with closed semantics.
        point, other = (a, b) if a[0] == a[1] else (b, a)
        return other[0] <= point[0] <= other[1]
    return a[0] < b[1] and b[0] < a[1]


# ---------------------------------------------------------------------------
# Filter functions
# ---------------------------------------------------------------------------

def _temporal_arg(value: Value, function: str) -> Period:
    try:
        return literal_period(value)  # type: ignore[arg-type]
    except RDFError as exc:
        raise EvaluationError(f"{function}: {exc}") from exc


def _binary(name: str, relation):
    def function(args: List[Value]) -> bool:
        if len(args) != 2:
            raise EvaluationError(f"{name} takes 2 arguments, got {len(args)}")
        return relation(
            _temporal_arg(args[0], name), _temporal_arg(args[1], name)
        )

    return function


def _period_start(args: List[Value]) -> Literal:
    if len(args) != 1:
        raise EvaluationError("strdf:periodStart takes 1 argument")
    start, _ = _temporal_arg(args[0], "strdf:periodStart")
    return Literal(start.isoformat(), datatype=XSD_DATETIME)


def _period_end(args: List[Value]) -> Literal:
    if len(args) != 1:
        raise EvaluationError("strdf:periodEnd takes 1 argument")
    _, end = _temporal_arg(args[0], "strdf:periodEnd")
    return Literal(end.isoformat(), datatype=XSD_DATETIME)


def register_temporal_functions(registry: FunctionRegistry) -> FunctionRegistry:
    """Install the strdf: temporal functions into *registry* (returned)."""
    registry.register(BEFORE, _binary("strdf:before", period_before))
    registry.register(
        AFTER, _binary("strdf:after", lambda a, b: period_before(b, a))
    )
    registry.register(DURING, _binary("strdf:during", period_during))
    registry.register(OVERLAPS, _binary("strdf:overlaps", period_overlaps))
    registry.register(
        PERIOD_INTERSECTS, _binary("strdf:periodIntersects", period_overlaps)
    )
    registry.register(PERIOD_START, _period_start)
    registry.register(PERIOD_END, _period_end)
    return registry


# ---------------------------------------------------------------------------
# Interval index
# ---------------------------------------------------------------------------

class IntervalIndex(Generic[T]):
    """A static sorted-interval index for temporal candidate pre-filtering.

    Build once with :meth:`build`; :meth:`overlapping` returns every item
    whose interval shares an instant with the query — by binary search on
    start order plus a running maximum of ends (a flattened interval tree).
    """

    def __init__(self):
        self._starts: List[datetime] = []
        self._entries: List[Tuple[datetime, datetime, T]] = []
        self._max_end_prefix: List[datetime] = []

    @classmethod
    def build(cls, entries: Sequence[Tuple[Period, T]]) -> "IntervalIndex[T]":
        index = cls()
        ordered = sorted(entries, key=lambda e: (e[0][0], e[0][1]))
        running: Optional[datetime] = None
        for (start, end), item in ordered:
            if start > end:
                raise RDFError(f"interval start after end: {start} > {end}")
            index._entries.append((start, end, item))
            index._starts.append(start)
            running = end if running is None else max(running, end)
            index._max_end_prefix.append(running)
        return index

    def __len__(self) -> int:
        return len(self._entries)

    def overlapping(self, query: Period) -> List[T]:
        """Items whose interval overlaps *query* (closed-at-degenerate)."""
        query_start, query_end = query
        if not self._entries:
            return []
        # Entries starting after the query ends can never overlap.
        hi = bisect.bisect_right(self._starts, query_end)
        results: List[T] = []
        for start, end, item in self._entries[:hi]:
            if period_overlaps((start, end), query):
                results.append(item)
        return results

    def first_overlap_possible(self, query: Period) -> bool:
        """Cheap reject: False when no stored interval can reach the query."""
        if not self._entries:
            return False
        return self._max_end_prefix[-1] >= query[0]
