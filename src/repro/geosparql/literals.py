"""``geo:wktLiteral`` handling.

GeoSPARQL represents geometries as typed literals whose lexical form is WKT,
optionally preceded by a CRS IRI in angle brackets. Parsing WKT on every
filter evaluation would dominate query time, so parsed geometries are cached
by lexical form.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

from repro.errors import RDFError
from repro.geometry import Geometry, from_wkt, to_wkt
from repro.rdf.term import Literal, Term

WKT_DATATYPE = "http://www.opengis.net/ont/geosparql#wktLiteral"
CRS84 = "http://www.opengis.net/def/crs/OGC/1.3/CRS84"


def geometry_literal(geometry: Geometry, crs: Optional[str] = None) -> Literal:
    """Wrap a geometry as a ``geo:wktLiteral``."""
    text = to_wkt(geometry)
    if crs:
        text = f"<{crs}> {text}"
    return Literal(text, datatype=WKT_DATATYPE)


def is_geometry_literal(term: Term) -> bool:
    """True if *term* is a ``geo:wktLiteral``."""
    return isinstance(term, Literal) and term.datatype == WKT_DATATYPE


@lru_cache(maxsize=65536)
def _parse_cached(lexical: str) -> Geometry:
    text = lexical
    if text.startswith("<"):
        end = text.find(">")
        if end == -1:
            raise RDFError(f"malformed CRS prefix in wktLiteral: {lexical[:40]!r}")
        text = text[end + 1:].lstrip()
    return from_wkt(text)


def literal_geometry(term: Term) -> Geometry:
    """Parse the geometry out of a ``geo:wktLiteral`` (cached).

    Raises :class:`~repro.errors.RDFError` if the term is not a geometry
    literal or its WKT is malformed.
    """
    if not is_geometry_literal(term):
        raise RDFError(f"not a geo:wktLiteral: {term!r}")
    return _parse_cached(term.lexical)


def literal_crs(term: Literal) -> Optional[str]:
    """Extract the CRS IRI from a wktLiteral, or None for the default CRS84."""
    if not is_geometry_literal(term):
        raise RDFError(f"not a geo:wktLiteral: {term!r}")
    text = term.lexical
    if text.startswith("<"):
        end = text.find(">")
        if end == -1:
            raise RDFError(f"malformed CRS prefix: {text[:40]!r}")
        return text[1:end]
    return None
