"""GeoSPARQL ``geof:`` filter functions.

Registers the simple-features topological functions and metric helpers into a
:class:`~repro.sparql.evaluator.FunctionRegistry` so any SPARQL query can use
them. Arguments must be ``geo:wktLiteral`` values (or terms convertible to
them); type errors surface as :class:`EvaluationError`, which SPARQL filter
semantics turn into "row dropped".
"""

from __future__ import annotations

from typing import List

from repro.errors import RDFError, WKTParseError
from repro.geometry import Geometry, contains, disjoint, distance, intersects, within
from repro.geometry.primitives import BoundingBox, Polygon
from repro.geosparql.literals import geometry_literal, literal_geometry
from repro.rdf.term import Literal
from repro.sparql.evaluator import FunctionRegistry
from repro.sparql.functions import EvaluationError, Value

GEOF = "http://www.opengis.net/def/function/geosparql/"

SF_INTERSECTS = GEOF + "sfIntersects"
SF_CONTAINS = GEOF + "sfContains"
SF_WITHIN = GEOF + "sfWithin"
SF_DISJOINT = GEOF + "sfDisjoint"
DISTANCE = GEOF + "distance"
ENVELOPE = GEOF + "envelope"
AREA = GEOF + "area"

# Relations the spatial index can pre-filter: candidates from a bbox probe are
# a superset of true matches. sfDisjoint is deliberately absent.
INDEXABLE_RELATIONS = frozenset({SF_INTERSECTS, SF_CONTAINS, SF_WITHIN})


def _geometry_arg(value: Value, function: str) -> Geometry:
    try:
        return literal_geometry(value)  # type: ignore[arg-type]
    except (RDFError, WKTParseError) as exc:
        raise EvaluationError(f"{function}: {exc}") from exc


def _binary(name: str, predicate):
    def geo_function(args: List[Value]) -> bool:
        if len(args) != 2:
            raise EvaluationError(f"{name} takes 2 arguments, got {len(args)}")
        a = _geometry_arg(args[0], name)
        b = _geometry_arg(args[1], name)
        return predicate(a, b)

    return geo_function


def _distance(args: List[Value]) -> float:
    if len(args) != 2:
        raise EvaluationError(f"geof:distance takes 2 arguments, got {len(args)}")
    a = _geometry_arg(args[0], "geof:distance")
    b = _geometry_arg(args[1], "geof:distance")
    return distance(a, b)


def _envelope(args: List[Value]) -> Literal:
    if len(args) != 1:
        raise EvaluationError("geof:envelope takes 1 argument")
    geometry = _geometry_arg(args[0], "geof:envelope")
    box: BoundingBox = geometry.bbox
    if box.width == 0 or box.height == 0:
        # Degenerate envelope: widen infinitesimally so it stays a polygon.
        box = box.expand(1e-9)
    return geometry_literal(Polygon.box(box.min_x, box.min_y, box.max_x, box.max_y))


def _area(args: List[Value]) -> float:
    if len(args) != 1:
        raise EvaluationError("geof:area takes 1 argument")
    geometry = _geometry_arg(args[0], "geof:area")
    area = getattr(geometry, "area", None)
    if area is None:
        raise EvaluationError("geof:area requires an areal geometry")
    return area


def geo_function_registry() -> FunctionRegistry:
    """A fresh registry with all ``geof:`` *and* ``strdf:`` temporal
    functions installed (Strabon is a spatiotemporal store)."""
    registry = FunctionRegistry()
    registry.register(SF_INTERSECTS, _binary("geof:sfIntersects", intersects))
    registry.register(SF_CONTAINS, _binary("geof:sfContains", contains))
    registry.register(SF_WITHIN, _binary("geof:sfWithin", within))
    registry.register(SF_DISJOINT, _binary("geof:sfDisjoint", disjoint))
    registry.register(DISTANCE, _distance)
    registry.register(ENVELOPE, _envelope)
    registry.register(AREA, _area)
    from repro.geosparql.temporal import register_temporal_functions

    register_temporal_functions(registry)
    return registry
