"""GeoSPARQL layer: the "Strabon" of the stack.

Adds geospatial semantics on top of :mod:`repro.rdf` and :mod:`repro.sparql`:

* ``geo:wktLiteral`` geometry literals (:mod:`repro.geosparql.literals`)
* the ``geof:`` simple-features filter functions
  (:mod:`repro.geosparql.functions`)
* :class:`~repro.geosparql.store.GeoStore` — a triple store that maintains an
  R-tree over geometry literals and rewrites spatial filters into index-backed
  candidate scans, plus :class:`~repro.geosparql.store.NaiveGeoStore`, the
  scan-everything baseline used by experiment E2.

The paper's motivating claim (Section 1): "the state-of-the art geospatial and
temporal RDF store Strabon ... can only handle up to 100 GBs of point data and
still be able to answer simple geospatial queries (selections over a
rectangular area) efficiently (in a few seconds)". E2/E3 reproduce the shape
of that behaviour and the multipolygon degradation.
"""

from repro.geosparql.literals import (
    WKT_DATATYPE,
    geometry_literal,
    literal_geometry,
    is_geometry_literal,
)
from repro.geosparql.functions import geo_function_registry
from repro.geosparql.store import GeoStore, NaiveGeoStore
from repro.geosparql.temporal import (
    IntervalIndex,
    PERIOD_DATATYPE,
    is_temporal_literal,
    literal_period,
    period_literal,
)

__all__ = [
    "GeoStore",
    "IntervalIndex",
    "NaiveGeoStore",
    "PERIOD_DATATYPE",
    "WKT_DATATYPE",
    "geo_function_registry",
    "geometry_literal",
    "is_geometry_literal",
    "is_temporal_literal",
    "literal_geometry",
    "literal_period",
    "period_literal",
]
