"""Geospatial RDF stores.

:class:`GeoStore` is the Strabon-like engine: it maintains an R-tree over all
``geo:wktLiteral`` objects in the graph and rewrites indexable spatial filters
(``geof:sfIntersects/sfContains/sfWithin`` between a variable and a constant
geometry) into an index-backed candidate scan that feeds the join, after which
the exact predicate still runs. :class:`NaiveGeoStore` shares everything but
the rewrite — every spatial filter is evaluated by brute force — making the
pair the two arms of experiment E2/E3.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, TYPE_CHECKING, Union

from repro.geometry import BoundingBox, RTree, contains as geom_contains
from repro.geosparql.functions import (
    INDEXABLE_RELATIONS,
    SF_CONTAINS,
    SF_WITHIN,
    geo_function_registry,
)
from repro.geosparql.literals import is_geometry_literal, literal_geometry
from repro.rdf.graph import Graph
from repro.rdf.term import Literal, Term, Triple
from repro.sparql.algebra import (
    AlgebraOp,
    CompileOptions,
    FilterOp,
    JoinOp,
    LeftJoinOp,
    ScanOp,
    UnionOp,
    compile_group,
    operator_variables,
)
from repro.sparql.ast import (
    AskQuery,
    FunctionCall,
    SelectQuery,
    TermExpr,
    Variable,
    VarExpr,
)
from repro.sparql.evaluator import (
    Bindings,
    FunctionRegistry,
    _evaluate_op,
    apply_solution_modifiers,
    materialize_select,
)
from repro.sparql.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.plan import PlanCache


class _SpatialCandidateOp(AlgebraOp):
    """Binds a variable to geometry literals whose bbox matches a constant.

    Yields a superset of the literals satisfying the spatial relation; the
    exact geof: filter above it removes false positives.
    """

    def __init__(self, variable: Variable, candidates: List[Literal]):
        self.variable = variable
        self.candidates = candidates

    def bound_variables(self):
        """Hook for :func:`repro.sparql.algebra.operator_variables`."""
        return {self.variable}

    def evaluate_custom(
        self, graph: Graph, bindings: Bindings, registry: FunctionRegistry
    ) -> Iterator[Bindings]:
        bound = bindings.get(self.variable)
        if bound is not None:
            # Variable already bound upstream: act as a membership check.
            if bound in self._candidate_set():
                yield dict(bindings)
            return
        for literal in self.candidates:
            new_bindings = dict(bindings)
            new_bindings[self.variable] = literal
            yield new_bindings

    def _candidate_set(self) -> Set[Literal]:
        cached = getattr(self, "_cached_set", None)
        if cached is None:
            cached = set(self.candidates)
            self._cached_set = cached
        return cached


class GeoStore:
    """Triple store with an R-tree over geometry literals.

    Use :meth:`add` / :meth:`add_all` to load data and :meth:`query` to run
    (Geo)SPARQL. The spatial rewrite can be disabled per query for ablations.
    """

    #: Whether spatial filters are rewritten to use the R-tree.
    use_spatial_index = True

    def __init__(
        self,
        max_entries: int = 16,
        plan_cache: Optional["PlanCache"] = None,
    ):
        self.graph = Graph()
        self.registry = geo_function_registry()
        self._rtree: RTree[Literal] = RTree(max_entries=max_entries)
        self._indexed: Set[Literal] = set()
        self._stats = {"spatial_rewrites": 0, "candidates_examined": 0}
        #: Optional shared :class:`~repro.cache.PlanCache`; may be attached
        #: after construction. None (the default) takes the uncached path.
        self.plan_cache = plan_cache

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def add(self, subject: Term, predicate: Term, obj: Term) -> bool:
        """Add a triple, indexing the object if it is a geometry literal."""
        added = self.graph.add(subject, predicate, obj)
        if added and is_geometry_literal(obj) and obj not in self._indexed:
            geometry = literal_geometry(obj)
            self._rtree.insert(geometry.bbox, obj)
            self._indexed.add(obj)
        return added

    def add_all(self, triples) -> int:
        return sum(1 for t in triples if self.add(*t))

    def bulk_load(self, triples) -> int:
        """Load triples and STR-pack the spatial index in one pass.

        Faster than :meth:`add_all` for large static datasets (the E2
        ablation measures the difference).
        """
        count = 0
        entries = []
        for triple in triples:
            if self.graph.add(*triple):
                count += 1
                obj = triple[2]
                if is_geometry_literal(obj) and obj not in self._indexed:
                    self._indexed.add(obj)
                    entries.append((literal_geometry(obj).bbox, obj))
        if entries:
            existing = list(self._rtree.items())
            self._rtree = RTree.bulk_load(existing + entries)
        return count

    def __len__(self) -> int:
        return len(self.graph)

    @property
    def geometry_count(self) -> int:
        return len(self._indexed)

    @property
    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    @property
    def content_version(self) -> int:
        """Monotonic content version (every load path mutates the graph)."""
        return self.graph.version

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save_ntriples(self, path: str) -> int:
        """Dump the store to an N-Triples file; returns the triple count."""
        from repro.rdf.ntriples import serialize_ntriples

        with open(path, "w", encoding="utf-8") as handle:
            handle.write(serialize_ntriples(iter(self.graph)))
        return len(self.graph)

    @classmethod
    def from_ntriples(cls, path: str, max_entries: int = 16) -> "GeoStore":
        """Load a store from an N-Triples file, rebuilding the spatial index."""
        from repro.rdf.ntriples import parse_ntriples

        store = cls(max_entries=max_entries)
        with open(path, "r", encoding="utf-8") as handle:
            store.bulk_load(parse_ntriples(handle.read()))
        return store

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    def query(
        self,
        query: Union[str, SelectQuery, AskQuery],
        options: Optional[CompileOptions] = None,
    ) -> Union[List[Bindings], bool]:
        """Evaluate a (Geo)SPARQL query with spatial-index acceleration.

        With a :attr:`plan_cache` attached, *string* queries reuse parsed
        ASTs and compiled (spatially rewritten) plans across calls; the key
        includes :attr:`content_version`, so any mutation recompiles.
        """
        text: Optional[str] = None
        if isinstance(query, str):
            text = query
            if self.plan_cache is not None:
                query = self.plan_cache.parse(text)
            else:
                query = parse_query(text)
        budget = getattr(options, "budget", None) if options is not None else None
        if options is not None and options.engine == "vector":
            # Columnar execution of the spatially rewritten plan: the
            # candidate scan runs through the interpreted fallback (it is a
            # custom operator) and feeds the vectorized hash joins.
            from repro.sparql.vector import execute_tree, finish_select

            tree = self._plan(query.where, options, text=text)
            batch, ctx = execute_tree(
                tree, self.graph, self.registry, budget=budget
            )
            if isinstance(query, AskQuery):
                return batch.nrows > 0
            return finish_select(query, batch, ctx)
        if isinstance(query, AskQuery):
            tree = self._plan(query.where, options, text=text)
            for _ in _evaluate_op(
                tree, self.graph, {}, self.registry, None, budget
            ):
                return True
            return False

        tree = self._plan(query.where, options, text=text)
        return materialize_select(
            query,
            _evaluate_op(tree, self.graph, {}, self.registry, None, budget),
            self.registry,
            budget,
        )

    def explain(
        self,
        query: Union[str, SelectQuery, AskQuery],
        options: Optional[CompileOptions] = None,
    ) -> str:
        """Render the physical plan for a query (for debugging/teaching).

        Shows the operator tree after spatial rewriting, one operator per
        line with indentation for children.
        """
        if isinstance(query, str):
            query = parse_query(query)
        tree = self._plan(query.where, options)
        lines: List[str] = []

        def walk(op: AlgebraOp, depth: int) -> None:
            pad = "  " * depth
            if isinstance(op, ScanOp):
                lines.append(f"{pad}Scan({_pattern_text(op.pattern)})")
            elif isinstance(op, JoinOp):
                lines.append(f"{pad}Join")
                walk(op.left, depth + 1)
                walk(op.right, depth + 1)
            elif isinstance(op, LeftJoinOp):
                lines.append(f"{pad}LeftJoin")
                walk(op.left, depth + 1)
                walk(op.right, depth + 1)
            elif isinstance(op, UnionOp):
                lines.append(f"{pad}Union")
                for operand in op.operands:
                    walk(operand, depth + 1)
            elif isinstance(op, FilterOp):
                lines.append(f"{pad}Filter({_expression_text(op.expression)})")
                walk(op.operand, depth + 1)
            elif isinstance(op, _SpatialCandidateOp):
                lines.append(
                    f"{pad}SpatialCandidates(?{op.variable.name}, "
                    f"{len(op.candidates)} candidates)"
                )
            else:
                lines.append(f"{pad}{type(op).__name__}")

        walk(tree, 0)
        return "\n".join(lines)

    def _plan(
        self,
        where,
        options: Optional[CompileOptions],
        text: Optional[str] = None,
    ) -> AlgebraOp:
        if self.plan_cache is not None and text is not None:
            # Cached per store *and* content version: the spatial rewrite
            # bakes R-tree candidate lists into the tree, and every index
            # mutation also bumps the graph version, so the key is exact.
            return self.plan_cache.plan(
                self,
                text,
                options,
                self.graph.version,
                lambda: self._build_plan(where, options),
            )
        return self._build_plan(where, options)

    def _build_plan(self, where, options: Optional[CompileOptions]) -> AlgebraOp:
        tree = compile_group(where, self.graph, options)
        if self.use_spatial_index:
            rebuilt = self._rewrite_spatial_global(tree)
            tree = rebuilt if rebuilt is not None else self._rewrite_spatial(tree)
        if options is not None and options.engine == "vector" and options.reorder_patterns:
            # Cost-order the pure scan regions; subtrees containing the
            # spatial candidate op keep their bound-variable-aware order.
            from repro.sparql.vector import apply_cost_order

            tree = apply_cost_order(tree, self.graph)
        return tree

    def _rewrite_spatial_global(self, tree: AlgebraOp) -> Optional[AlgebraOp]:
        """Rebuild a pure scan/join/filter tree so the spatial candidate scan
        *drives* the join: candidates bind the geometry variable first and
        index lookups walk outward, instead of candidates being re-enumerated
        per upstream row. Returns None when the tree has other operators
        (OPTIONAL/UNION), in which case the local rewrite is used."""
        scans: List[ScanOp] = []
        filters: List = []

        def collect(op: AlgebraOp) -> bool:
            if isinstance(op, ScanOp):
                scans.append(op)
                return True
            if isinstance(op, JoinOp):
                return collect(op.left) and collect(op.right)
            if isinstance(op, FilterOp):
                filters.append(op.expression)
                return collect(op.operand)
            return False

        if not collect(tree) or not scans:
            return None
        spatial = next(
            (
                (expr, parsed)
                for expr in filters
                if (parsed := self._indexable_parts(expr)) is not None
            ),
            None,
        )
        if spatial is None:
            return None
        expression, (variable, candidates) = spatial

        from repro.sparql.algebra import _push_filter, order_patterns

        self._stats["spatial_rewrites"] += 1
        self._stats["candidates_examined"] += len(candidates)
        ordered = order_patterns(
            [s.pattern for s in scans], self.graph, bound_vars={variable}
        )
        rebuilt: AlgebraOp = _SpatialCandidateOp(variable, candidates)
        for pattern in ordered:
            rebuilt = JoinOp(rebuilt, ScanOp(pattern))
        for expr in filters:
            # Includes the spatial predicate itself: bbox candidates are a
            # superset, the exact test lands just above the candidate scan.
            rebuilt = _push_filter(rebuilt, expr)
        return rebuilt

    def _indexable_parts(self, expression):
        """(variable, candidates) for an indexable spatial filter, else None."""
        if not isinstance(expression, FunctionCall):
            return None
        if expression.name not in INDEXABLE_RELATIONS or len(expression.args) != 2:
            return None
        first, second = expression.args
        variable: Optional[Variable] = None
        constant = None
        var_first = False
        if isinstance(first, VarExpr) and isinstance(second, TermExpr):
            variable, constant, var_first = first.variable, second.term, True
        elif isinstance(first, TermExpr) and isinstance(second, VarExpr):
            variable, constant = second.variable, first.term
        if variable is None or not is_geometry_literal(constant):
            return None
        query_geometry = literal_geometry(constant)
        candidates = list(self._rtree.search(query_geometry.bbox))
        if expression.name == SF_WITHIN and var_first:
            candidates = [
                c
                for c in candidates
                if query_geometry.bbox.contains_box(literal_geometry(c).bbox)
            ]
        return variable, candidates

    # ------------------------------------------------------------------
    # Spatial rewrite
    # ------------------------------------------------------------------

    def _rewrite_spatial(self, op: AlgebraOp) -> AlgebraOp:
        if isinstance(op, FilterOp):
            inner = self._rewrite_spatial(op.operand)
            rewritten = self._try_index_filter(op.expression, inner)
            if rewritten is not None:
                return rewritten
            return FilterOp(op.expression, inner)
        if isinstance(op, JoinOp):
            return JoinOp(self._rewrite_spatial(op.left), self._rewrite_spatial(op.right))
        if isinstance(op, LeftJoinOp):
            return LeftJoinOp(
                self._rewrite_spatial(op.left), self._rewrite_spatial(op.right)
            )
        if isinstance(op, UnionOp):
            return UnionOp([self._rewrite_spatial(o) for o in op.operands])
        return op

    def _try_index_filter(
        self, expression, inner: AlgebraOp
    ) -> Optional[AlgebraOp]:
        """If the filter is an indexable spatial relation var-vs-constant,
        plant a candidate scan in front of the operand."""
        if not isinstance(expression, FunctionCall):
            return None
        if expression.name not in INDEXABLE_RELATIONS or len(expression.args) != 2:
            return None
        first, second = expression.args
        variable: Optional[Variable] = None
        constant: Optional[Literal] = None
        var_first = False
        if isinstance(first, VarExpr) and isinstance(second, TermExpr):
            variable, constant, var_first = first.variable, second.term, True
        elif isinstance(first, TermExpr) and isinstance(second, VarExpr):
            variable, constant = second.variable, first.term
        if variable is None or not is_geometry_literal(constant):
            return None

        query_geometry = literal_geometry(constant)
        # sfContains(?g, const) means ?g contains the constant: any candidate
        # bbox must *contain* the constant's bbox -> probing with the
        # constant's bbox still yields a superset (intersecting is necessary).
        candidates = list(self._rtree.search(query_geometry.bbox))
        if expression.name == SF_WITHIN and var_first:
            # ?g within const: candidate bbox must be inside const's bbox.
            candidates = [
                c
                for c in candidates
                if constant is not None
                and query_geometry.bbox.contains_box(literal_geometry(c).bbox)
            ]
        self._stats["spatial_rewrites"] += 1
        self._stats["candidates_examined"] += len(candidates)
        candidate_op = _SpatialCandidateOp(variable, candidates)
        inner = self._reorder_for_bound(inner, variable)
        return FilterOp(expression, JoinOp(candidate_op, inner))

    def _reorder_for_bound(self, inner: AlgebraOp, variable: Variable) -> AlgebraOp:
        """Re-order a pure scan/join/filter subtree knowing *variable* is
        bound by the candidate scan, so the join starts from the geometry
        pattern instead of scanning an unrelated predicate per candidate."""
        scans: List[ScanOp] = []
        filters: List = []

        def collect(op: AlgebraOp) -> bool:
            if isinstance(op, ScanOp):
                scans.append(op)
                return True
            if isinstance(op, JoinOp):
                return collect(op.left) and collect(op.right)
            if isinstance(op, FilterOp):
                filters.append(op.expression)
                return collect(op.operand)
            return False

        if not collect(inner) or not scans:
            return inner
        from repro.sparql.algebra import _push_filter, order_patterns

        ordered = order_patterns(
            [s.pattern for s in scans], self.graph, bound_vars={variable}
        )
        tree: AlgebraOp = ScanOp(ordered[0])
        for pattern in ordered[1:]:
            tree = JoinOp(tree, ScanOp(pattern))
        for expression in filters:
            tree = _push_filter(tree, expression)
        return tree


def _pattern_text(pattern) -> str:
    def term_text(position) -> str:
        if isinstance(position, Variable):
            return f"?{position.name}"
        text = str(position)
        return text if len(text) <= 40 else text[:37] + "..."

    return " ".join(
        term_text(p) for p in (pattern.subject, pattern.predicate, pattern.object)
    )


def _expression_text(expression) -> str:
    from repro.sparql.ast import BinaryOp, TermExpr, UnaryOp, VarExpr

    if isinstance(expression, VarExpr):
        return f"?{expression.variable.name}"
    if isinstance(expression, TermExpr):
        text = str(expression.term)
        return text if len(text) <= 30 else text[:27] + "..."
    if isinstance(expression, UnaryOp):
        return f"{expression.operator}{_expression_text(expression.operand)}"
    if isinstance(expression, BinaryOp):
        return (
            f"{_expression_text(expression.left)} {expression.operator} "
            f"{_expression_text(expression.right)}"
        )
    if isinstance(expression, FunctionCall):
        name = expression.name.rsplit("/", 1)[-1].rsplit("#", 1)[-1]
        args = ", ".join(_expression_text(a) for a in expression.args)
        return f"{name}({args})"
    return type(expression).__name__


class NaiveGeoStore(GeoStore):
    """The brute-force baseline: identical semantics, no spatial rewrite."""

    use_spatial_index = False
