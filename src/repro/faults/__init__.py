"""Deterministic fault injection and fault tolerance (experiment E17).

At the scale the paper targets — petabytes of Copernicus data on a shared
platform — node crashes, stragglers and flaky endpoints are the steady
state, not the exception. This package provides the chaos layer that lets
every scaling experiment be re-measured *under failure*:

* :class:`~repro.faults.injector.FaultPlan` — a declarative, seeded
  description of what goes wrong (node/datanode crashes, stragglers,
  shard outages, endpoint error/timeout/death, ML worker crashes,
  E18's time-windowed endpoint flaps and client overload bursts, plus
  E20's *silent* storage faults: replica bit flips, torn WAL writes,
  stale replicas and snapshot corruption — failures nothing notices
  until a checksum looks — and E23's per-operator slowdowns charged
  against in-engine query deadlines, and E25's storage-node losses and
  time-windowed network partitions for the distributed SPARQL engine);
  ``FaultPlan.none()`` is the guaranteed no-op plan and
  ``FaultPlan.chaos(seed, ...)`` generates one from failure rates.
* :class:`~repro.faults.injector.FaultInjector` — the runtime oracle the
  subsystems consult; per-key random streams keep verdicts reproducible
  and mutually independent.
* :class:`~repro.faults.retry.RetryPolicy` — the shared exponential
  backoff + jitter + deadline loop with attempt accounting
  (:class:`~repro.faults.retry.RetryState`), used by the KV store and the
  federation executor instead of ad-hoc retries.

Tolerance mechanisms live with their subsystems: task re-queue/speculation/
blacklisting in :mod:`repro.cluster.scheduler`, re-replication and replica
fallback in :mod:`repro.hopsfs.blocks`, retryable shard outages in
:mod:`repro.hopsfs.kvstore`, graceful degradation in
:mod:`repro.federation.executor`, checkpoint/restore and elastic recovery in
:mod:`repro.ml.distributed`, and WAL crash recovery / checksum verification /
scrub-and-repair for the silent-fault kinds in :mod:`repro.durability`.
"""

from repro.faults.injector import (
    BitFlip,
    EndpointFault,
    EndpointFlap,
    FaultInjector,
    FaultPlan,
    NetworkPartition,
    NodeCrash,
    NodeLoss,
    OverloadBurst,
    ShardOutage,
    SlowOperator,
    SnapshotCorruption,
    StaleReplica,
    Straggler,
    TornWrite,
    WorkerCrash,
)
from repro.faults.retry import RetryPolicy, RetryState

__all__ = [
    "BitFlip",
    "EndpointFault",
    "EndpointFlap",
    "FaultInjector",
    "FaultPlan",
    "NetworkPartition",
    "NodeCrash",
    "NodeLoss",
    "OverloadBurst",
    "RetryPolicy",
    "RetryState",
    "ShardOutage",
    "SlowOperator",
    "SnapshotCorruption",
    "StaleReplica",
    "Straggler",
    "TornWrite",
    "WorkerCrash",
]
