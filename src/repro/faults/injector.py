"""Deterministic, seeded fault injection (experiment E17).

A :class:`FaultPlan` *declares* what goes wrong — node crashes at absolute
simulated times, straggler slowdowns, transient/permanent metadata-shard
outages, per-call endpoint error/timeout probabilities, ML worker crashes —
and a :class:`FaultInjector` answers the runtime questions each subsystem
asks ("does this call fail?", "when does node 3 die?") reproducibly.

Determinism has two layers:

* scheduled faults (crashes, outages) are explicit in the plan, so the
  failure timeline is the plan;
* probabilistic faults (task failures, endpoint errors) are drawn from
  per-key random streams derived from ``(plan.seed, domain, key)`` with a
  stable hash, so two runs of the same workload see byte-identical fault
  sequences — and adding chaos to one subsystem never perturbs the draws
  another subsystem sees.

``FaultPlan.none()`` is the empty plan; subsystems accept
``injector: Optional[FaultInjector] = None`` and skip all fault logic when
unset, so the default path is exactly the pre-chaos code.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import FaultError


@dataclass(frozen=True)
class NodeCrash:
    """Compute/datanode ``node_id`` dies permanently at ``at_s`` (sim time)."""

    node_id: int
    at_s: float


@dataclass(frozen=True)
class Straggler:
    """Node ``node_id`` runs ``factor``x slower than its nominal speed."""

    node_id: int
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise FaultError(f"straggler factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class ShardOutage:
    """Metadata shard ``shard`` is down for an operation-count window.

    The window is measured in the store's *attempted* operation counter:
    ``[start_op, start_op + duration_ops)``; ``duration_ops=None`` makes the
    outage permanent. Operation counts stand in for time because the KV store
    has no clock — its simulated time is derived from per-shard busy work.
    """

    shard: int
    start_op: int = 0
    duration_ops: Optional[int] = None

    @property
    def permanent(self) -> bool:
        return self.duration_ops is None

    def covers(self, op_index: int) -> bool:
        if op_index < self.start_op:
            return False
        return self.duration_ops is None or op_index < self.start_op + self.duration_ops


@dataclass(frozen=True)
class EndpointFault:
    """Per-call fault profile of one federation endpoint.

    ``error_rate``/``timeout_rate`` are independent per-call probabilities of
    a transient (retryable) failure; ``dead_after_calls`` makes the endpoint
    permanently unreachable from that call index on (0 = down from the start).
    """

    name: str
    error_rate: float = 0.0
    timeout_rate: float = 0.0
    dead_after_calls: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0 or not 0.0 <= self.timeout_rate <= 1.0:
            raise FaultError("endpoint fault rates must be in [0, 1]")
        if self.error_rate + self.timeout_rate > 1.0:
            raise FaultError("error_rate + timeout_rate must not exceed 1")


@dataclass(frozen=True)
class WorkerCrash:
    """Training worker ``worker`` dies permanently before step ``at_step``."""

    worker: int
    at_step: int


@dataclass(frozen=True)
class EndpointFlap:
    """Endpoint ``name`` is down for the sim-time window [down_s, up_s).

    Unlike :class:`EndpointFault` (per-call probabilities and call-count
    death), a flap is a *time-windowed* total outage — the shape a circuit
    breaker exists for. Several flaps on one endpoint model flapping proper.
    """

    name: str
    down_s: float
    up_s: float

    def __post_init__(self) -> None:
        if self.down_s < 0 or self.up_s <= self.down_s:
            raise FaultError(
                f"flap window must satisfy 0 <= down_s < up_s, got "
                f"[{self.down_s}, {self.up_s})"
            )

    def covers(self, at_s: float) -> bool:
        return self.down_s <= at_s < self.up_s


@dataclass(frozen=True)
class OverloadBurst:
    """Demand multiplier over a sim-time window (experiment E18).

    During [start_s, start_s + duration_s) the client arrival rate is
    multiplied by ``factor`` — the flash-crowd shape that drives the
    admission-control experiments.
    """

    start_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.start_s < 0 or self.duration_s <= 0:
            raise FaultError("burst window must be non-negative and non-empty")
        if self.factor < 1.0:
            raise FaultError(f"burst factor must be >= 1, got {self.factor}")

    def covers(self, at_s: float) -> bool:
        return self.start_s <= at_s < self.start_s + self.duration_s


@dataclass(frozen=True)
class BitFlip:
    """Replica of ``block_id`` on datanode ``node_id`` silently rots (E20).

    The bytes on disk no longer match the block's content fingerprint; only
    checksum verification (or the scrubber) can tell — reads without it
    happily serve the garbage.
    """

    node_id: int
    block_id: int


@dataclass(frozen=True)
class TornWrite:
    """WAL record ``record_index`` on ``shard`` lands only partially (E20).

    Models a crash mid-``write()``: the record's header-and-prefix reach disk
    but the tail doesn't, so recovery must recognise and discard it. The
    append that tears also kills the process (a torn write *is* a crash
    artifact — there is no torn write the writer survives).
    """

    shard: int
    record_index: int

    def __post_init__(self) -> None:
        if self.record_index < 0:
            raise FaultError("record_index must be >= 0")


@dataclass(frozen=True)
class StaleReplica:
    """Replica of ``block_id`` on ``node_id`` missed the latest write (E20).

    The replica's bytes are a *valid previous generation* of the block, not
    random garbage — the silent failure mode of an interrupted replica
    update. Detectable only because fingerprints cover the generation.
    """

    node_id: int
    block_id: int


@dataclass(frozen=True)
class SnapshotCorruption:
    """The ``snapshot_index``-th checkpoint of ``shard`` rots on disk (E20).

    Detected at recovery by the snapshot checksum; with the full WAL still
    present recovery falls back to a from-scratch replay, otherwise the
    shard is genuinely lost.
    """

    shard: int
    snapshot_index: int = 0

    def __post_init__(self) -> None:
        if self.snapshot_index < 0:
            raise FaultError("snapshot_index must be >= 0")


@dataclass(frozen=True)
class SlowOperator:
    """SPARQL operator ``op`` costs ``charge_s`` extra seconds per checkpoint (E23).

    Injected into a :class:`~repro.sparql.governor.QueryBudget`'s charge
    stream: every engine checkpoint whose operator name matches ``op``
    (exact, prefix, or ``"*"`` for all) charges the query's deadline an
    extra ``charge_s`` of modelled time — the chaos shape that makes
    in-engine deadline enforcement observable on a simulated clock.
    """

    op: str
    charge_s: float

    def __post_init__(self) -> None:
        if self.charge_s < 0:
            raise FaultError(f"charge_s must be >= 0, got {self.charge_s}")


@dataclass(frozen=True)
class NodeLoss:
    """Storage-bearing node ``node_id`` dies permanently at ``at_s`` (E25).

    Unlike :class:`NodeCrash` (a pure compute failure the scheduler re-queues
    around), a node *loss* also takes the store-partition replicas the node
    holds: the distributed SPARQL engine must fail scans over to a surviving
    replica, and a partition whose last replica is lost becomes
    :class:`~repro.errors.PartitionUnavailable`.
    """

    node_id: int
    at_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultError(f"loss time must be >= 0, got {self.at_s}")


@dataclass(frozen=True)
class NetworkPartition:
    """Nodes in ``island`` are unreachable from the rest for a window (E25).

    During ``[down_s, up_s)`` any data-plane fetch that crosses the island
    boundary fails; fetches with both ends on the same side still work.
    Transient by construction — the window heals — so the correct response
    is deterministic retry/failover, not abandonment.
    """

    island: Tuple[int, ...]
    down_s: float
    up_s: float

    def __post_init__(self) -> None:
        if not self.island:
            raise FaultError("partition island must name at least one node")
        if self.down_s < 0 or self.up_s <= self.down_s:
            raise FaultError(
                f"partition window must satisfy 0 <= down_s < up_s, got "
                f"[{self.down_s}, {self.up_s})"
            )

    def covers(self, at_s: float) -> bool:
        return self.down_s <= at_s < self.up_s

    def separates(self, a: int, b: int) -> bool:
        return (a in self.island) != (b in self.island)


@dataclass(frozen=True)
class FaultPlan:
    """The full chaos declaration for one experiment run."""

    seed: int = 0
    node_crashes: Tuple[NodeCrash, ...] = ()
    stragglers: Tuple[Straggler, ...] = ()
    task_failure_rate: float = 0.0
    datanode_crashes: Tuple[int, ...] = ()
    shard_outages: Tuple[ShardOutage, ...] = ()
    endpoint_faults: Tuple[EndpointFault, ...] = ()
    worker_crashes: Tuple[WorkerCrash, ...] = ()
    endpoint_flaps: Tuple[EndpointFlap, ...] = ()
    overload_bursts: Tuple[OverloadBurst, ...] = ()
    bit_flips: Tuple[BitFlip, ...] = ()
    torn_writes: Tuple[TornWrite, ...] = ()
    stale_replicas: Tuple[StaleReplica, ...] = ()
    snapshot_corruptions: Tuple[SnapshotCorruption, ...] = ()
    slow_operators: Tuple[SlowOperator, ...] = ()
    node_losses: Tuple[NodeLoss, ...] = ()
    network_partitions: Tuple[NetworkPartition, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_failure_rate < 1.0:
            raise FaultError("task_failure_rate must be in [0, 1)")

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: injecting it is a no-op everywhere."""
        return cls()

    @property
    def empty(self) -> bool:
        return all(
            not getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("seed",)
        )

    @classmethod
    def chaos(
        cls,
        seed: int,
        *,
        node_count: int = 0,
        node_crash_prob: float = 0.0,
        horizon_s: float = 100.0,
        straggler_prob: float = 0.0,
        straggler_factor: float = 4.0,
        task_failure_rate: float = 0.0,
        datanode_count: int = 0,
        datanode_crash_prob: float = 0.0,
        shard_count: int = 0,
        shard_outage_prob: float = 0.0,
        outage_start_ops: int = 0,
        outage_duration_ops: Optional[int] = 50,
        endpoints: Sequence[str] = (),
        endpoint_error_rate: float = 0.0,
        endpoint_timeout_rate: float = 0.0,
        endpoint_death_prob: float = 0.0,
        endpoint_death_after: int = 0,
        workers: int = 0,
        worker_crash_prob: float = 0.0,
        max_step: int = 100,
        block_count: int = 0,
        bit_flip_prob: float = 0.0,
        stale_replica_prob: float = 0.0,
        slow_operator_ops: Sequence[str] = (),
        slow_operator_prob: float = 0.0,
        slow_operator_charge_s: float = 0.05,
        node_loss_prob: float = 0.0,
        network_partition_prob: float = 0.0,
        network_partition_duration_s: float = 30.0,
    ) -> "FaultPlan":
        """Generate a concrete plan from a seed and per-subsystem rates.

        The same arguments and seed always yield the same plan — this is the
        one place randomness enters, and it is fully consumed here.
        """
        rng = random.Random(seed)
        node_crashes = tuple(
            NodeCrash(node_id=n, at_s=rng.uniform(0.0, horizon_s))
            for n in range(node_count)
            if rng.random() < node_crash_prob
        )
        crashed = {c.node_id for c in node_crashes}
        stragglers = tuple(
            Straggler(node_id=n, factor=straggler_factor)
            for n in range(node_count)
            if n not in crashed and rng.random() < straggler_prob
        )
        datanode_crashes = tuple(
            n for n in range(datanode_count) if rng.random() < datanode_crash_prob
        )
        shard_outages = tuple(
            ShardOutage(
                shard=s,
                start_op=outage_start_ops,
                duration_ops=outage_duration_ops,
            )
            for s in range(shard_count)
            if rng.random() < shard_outage_prob
        )
        endpoint_faults = tuple(
            EndpointFault(
                name=name,
                error_rate=endpoint_error_rate,
                timeout_rate=endpoint_timeout_rate,
                dead_after_calls=(
                    endpoint_death_after
                    if rng.random() < endpoint_death_prob
                    else None
                ),
            )
            for name in endpoints
        )
        worker_crashes = tuple(
            WorkerCrash(worker=w, at_step=rng.randrange(1, max(2, max_step)))
            for w in range(workers)
            if rng.random() < worker_crash_prob
        )
        # Silent storage faults (E20): independent draws over the
        # (datanode, block) grid, appended after every pre-E20 draw so a
        # given seed's crash/outage schedule is unchanged by the new knobs.
        bit_flips = tuple(
            BitFlip(node_id=n, block_id=b)
            for n in range(datanode_count)
            for b in range(block_count)
            if rng.random() < bit_flip_prob
        )
        flipped = {(f.node_id, f.block_id) for f in bit_flips}
        stale_replicas = tuple(
            StaleReplica(node_id=n, block_id=b)
            for n in range(datanode_count)
            for b in range(block_count)
            if (n, b) not in flipped and rng.random() < stale_replica_prob
        )
        # Slow operators (E23): drawn last, after every pre-E23 draw, so a
        # given seed's existing fault schedule is unchanged by the new knobs.
        slow_operators = tuple(
            SlowOperator(op=op, charge_s=slow_operator_charge_s)
            for op in slow_operator_ops
            if rng.random() < slow_operator_prob
        )
        # Node losses + network partitions (E25): drawn last, after every
        # pre-E25 draw, so a given seed's existing schedule is unchanged.
        # Nodes the plan already crashes are skipped — a loss on a dead node
        # would be unobservable and only muddy the plan's story.
        node_losses = tuple(
            NodeLoss(node_id=n, at_s=rng.uniform(0.0, horizon_s))
            for n in range(node_count)
            if n not in crashed and rng.random() < node_loss_prob
        )
        network_partitions: Tuple[NetworkPartition, ...] = ()
        if node_count >= 2 and rng.random() < network_partition_prob:
            island_size = max(1, node_count // 3)
            island = tuple(sorted(rng.sample(range(node_count), island_size)))
            down_s = rng.uniform(0.0, horizon_s)
            network_partitions = (
                NetworkPartition(
                    island=island,
                    down_s=down_s,
                    up_s=down_s + network_partition_duration_s,
                ),
            )
        return cls(
            seed=seed,
            node_crashes=node_crashes,
            stragglers=stragglers,
            task_failure_rate=task_failure_rate,
            datanode_crashes=datanode_crashes,
            shard_outages=shard_outages,
            endpoint_faults=endpoint_faults,
            worker_crashes=worker_crashes,
            bit_flips=bit_flips,
            stale_replicas=stale_replicas,
            slow_operators=slow_operators,
            node_losses=node_losses,
            network_partitions=network_partitions,
        )


def _derive_seed(seed: int, domain: str, key: object) -> int:
    """Stable (across processes) stream seed for (plan seed, domain, key)."""
    digest = hashlib.blake2b(
        f"{seed}:{domain}:{key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


# Endpoint call outcomes.
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"
DEAD = "dead"


class FaultInjector:
    """Runtime oracle over a :class:`FaultPlan`.

    One injector can serve several subsystems at once; its probabilistic
    streams are keyed per (domain, entity) so subsystems never perturb each
    other's draws.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._streams: Dict[Tuple[str, object], random.Random] = {}
        self._node_crash_at = {c.node_id: c.at_s for c in plan.node_crashes}
        self._straggler = {s.node_id: s.factor for s in plan.stragglers}
        self._endpoint = {f.name: f for f in plan.endpoint_faults}
        self._worker_crash_at = {c.worker: c.at_step for c in plan.worker_crashes}
        self._node_loss_at = {l.node_id: l.at_s for l in plan.node_losses}

    def _stream(self, domain: str, key: object) -> random.Random:
        stream = self._streams.get((domain, key))
        if stream is None:
            stream = random.Random(_derive_seed(self.plan.seed, domain, key))
            self._streams[(domain, key)] = stream
        return stream

    # ------------------------------------------------------------------
    # Cluster
    # ------------------------------------------------------------------

    def node_crash_time(self, node_id: int) -> Optional[float]:
        """Simulated time at which the compute node dies, or None."""
        return self._node_crash_at.get(node_id)

    def straggler_factor(self, node_id: int) -> float:
        """Slowdown multiplier for the node (1.0 = healthy)."""
        return self._straggler.get(node_id, 1.0)

    def node_loss_time(self, node_id: int) -> Optional[float]:
        """Simulated time at which the *storage-bearing* node dies, or None.

        A loss implies a crash (the node's compute slots vanish too) but is
        reported separately so the scheduler can tell the distributed store
        layer that the node's partition replicas went with it (E25).
        """
        return self._node_loss_at.get(node_id)

    def node_losses(self) -> Tuple[NodeLoss, ...]:
        """The plan's storage-node losses (applied once by the store layer)."""
        return self.plan.node_losses

    def reachable(self, a: int, b: int, at_s: float) -> bool:
        """Can node *a* fetch from node *b* at sim time? (E25 data plane.)

        False only while an active :class:`NetworkPartition` window puts the
        two nodes on opposite sides of an island boundary; a node can always
        reach itself.
        """
        if a == b:
            return True
        return not any(
            p.covers(at_s) and p.separates(a, b)
            for p in self.plan.network_partitions
        )

    def task_fails(self, task_id: int) -> bool:
        """Does the task's current attempt fail? One draw per attempt, from
        a per-task stream, so the verdict sequence is independent of how
        tasks interleave on the cluster."""
        rate = self.plan.task_failure_rate
        if rate <= 0.0:
            return False
        return self._stream("task", task_id).random() < rate

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    def shard_outage(self, shard: int, op_index: int) -> Optional[ShardOutage]:
        """The outage covering this shard at this attempted-op index, if any."""
        for outage in self.plan.shard_outages:
            if outage.shard == shard and outage.covers(op_index):
                return outage
        return None

    def datanode_crashes(self) -> Tuple[int, ...]:
        """Datanode ids the plan kills (applied once by the BlockManager)."""
        return self.plan.datanode_crashes

    # ------------------------------------------------------------------
    # Silent storage faults (experiment E20)
    # ------------------------------------------------------------------

    def wal_torn(self, shard: int, record_index: int) -> bool:
        """Is this shard's ``record_index``-th WAL append torn mid-write?"""
        return any(
            torn.shard == shard and torn.record_index == record_index
            for torn in self.plan.torn_writes
        )

    def snapshot_corrupted(self, shard: int, snapshot_index: int) -> bool:
        """Does this shard's ``snapshot_index``-th checkpoint rot on disk?"""
        return any(
            rot.shard == shard and rot.snapshot_index == snapshot_index
            for rot in self.plan.snapshot_corruptions
        )

    def block_bit_flips(self) -> Tuple[BitFlip, ...]:
        """Replica corruptions to apply (once) to block storage."""
        return self.plan.bit_flips

    def block_stale_replicas(self) -> Tuple[StaleReplica, ...]:
        """Replicas that silently revert to their previous generation."""
        return self.plan.stale_replicas

    # ------------------------------------------------------------------
    # Federation
    # ------------------------------------------------------------------

    def endpoint_outcome(self, name: str, call_index: int) -> str:
        """Outcome of one remote call: ``ok``/``error``/``timeout``/``dead``.

        Permanent death dominates; transient error/timeout are drawn from the
        endpoint's private stream.
        """
        fault = self._endpoint.get(name)
        if fault is None:
            return OK
        if fault.dead_after_calls is not None and call_index >= fault.dead_after_calls:
            return DEAD
        if fault.error_rate == 0.0 and fault.timeout_rate == 0.0:
            return OK
        draw = self._stream("endpoint", name).random()
        if draw < fault.error_rate:
            return ERROR
        if draw < fault.error_rate + fault.timeout_rate:
            return TIMEOUT
        return OK

    def endpoint_down_at(self, name: str, at_s: float) -> bool:
        """Is the endpoint inside one of its flap windows at sim time?"""
        return any(
            flap.name == name and flap.covers(at_s)
            for flap in self.plan.endpoint_flaps
        )

    # ------------------------------------------------------------------
    # Query governance (experiment E23)
    # ------------------------------------------------------------------

    def operator_charge(self, op_name: str) -> float:
        """Extra modelled seconds a checkpoint in *op_name* must charge.

        Matches a :class:`SlowOperator` by exact name, prefix (so
        ``op="hash_join"`` also slows ``hash_join.probe``) or the ``"*"``
        wildcard; the strongest matching fault wins, mirroring
        :meth:`arrival_multiplier`'s no-stacking rule.
        """
        if not self.plan.slow_operators:
            return 0.0
        charges = [
            fault.charge_s
            for fault in self.plan.slow_operators
            if fault.op == "*" or op_name == fault.op or op_name.startswith(fault.op)
        ]
        return max(charges) if charges else 0.0

    # ------------------------------------------------------------------
    # Overload (experiment E18)
    # ------------------------------------------------------------------

    def arrival_multiplier(self, at_s: float) -> float:
        """Client demand multiplier at sim time (1.0 outside every burst).

        Overlapping bursts don't stack — the strongest one wins, so a plan
        stays interpretable as "the worst flash crowd active right now".
        """
        factors = [
            burst.factor
            for burst in self.plan.overload_bursts
            if burst.covers(at_s)
        ]
        return max(factors) if factors else 1.0

    # ------------------------------------------------------------------
    # ML
    # ------------------------------------------------------------------

    def worker_crashed(self, worker: int, step: int) -> bool:
        """Is the training worker dead at (the start of) this step?"""
        at = self._worker_crash_at.get(worker)
        return at is not None and step >= at
