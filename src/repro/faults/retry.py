"""Shared retry policy: exponential backoff + jitter + deadline.

Every subsystem that survives transient faults does it through one
:class:`RetryPolicy` instead of ad-hoc loops, so attempt accounting and
backoff behaviour are uniform and testable. The policy never sleeps real
time — callers pass a ``sleep`` callable that charges simulated time (or
nothing), which keeps chaos experiments deterministic and fast.

An exception is retried when it is an instance of one of ``retryable_types``
*and* its ``retryable`` attribute (see :class:`repro.errors.FaultError`) is
not False — permanent faults like a dead endpoint short-circuit the loop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import FaultError, RetryExhausted, TimeoutExceeded

T = TypeVar("T")


@dataclass
class RetryState:
    """Attempt accounting for one retried call (filled in by ``call``)."""

    attempts: int = 0
    retries: int = 0
    waited_s: float = 0.0
    last_error: Optional[BaseException] = None


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter and an overall deadline.

    ``max_attempts`` counts *all* attempts including the first, so
    ``max_attempts=1`` means no retries. The deadline bounds cumulative
    backoff wait: a retry whose wait would cross ``deadline_s`` raises
    :class:`TimeoutExceeded` instead of waiting.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None
    retryable_types: Tuple[Type[BaseException], ...] = (FaultError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise FaultError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise FaultError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise FaultError("jitter must be in [0, 1)")

    def backoff_s(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before the ``retry_index``-th retry (1-based), jittered."""
        if retry_index < 1:
            raise FaultError("retry_index is 1-based")
        delay = min(
            self.base_delay_s * self.multiplier ** (retry_index - 1),
            self.max_delay_s,
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def _is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable_types) and getattr(
            error, "retryable", True
        )

    def call(
        self,
        fn: Callable[[], T],
        *,
        state: Optional[RetryState] = None,
        rng: Optional[random.Random] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> T:
        """Invoke ``fn`` under this policy.

        Raises :class:`RetryExhausted` (carrying the attempt count and last
        error) when attempts run out, and :class:`TimeoutExceeded` when the
        deadline would be crossed. Non-retryable exceptions propagate
        unchanged on first occurrence.
        """
        state = state if state is not None else RetryState()
        while True:
            state.attempts += 1
            try:
                return fn()
            except BaseException as error:  # noqa: BLE001 - filtered below
                state.last_error = error
                if not self._is_retryable(error):
                    raise
                if state.attempts >= self.max_attempts:
                    raise RetryExhausted(
                        f"gave up after {state.attempts} attempts: {error}",
                        attempts=state.attempts,
                        last_error=error,
                    ) from error
                delay = self.backoff_s(state.retries + 1, rng)
                if (
                    self.deadline_s is not None
                    and state.waited_s + delay > self.deadline_s
                ):
                    raise TimeoutExceeded(
                        f"retry deadline {self.deadline_s}s exceeded after "
                        f"{state.attempts} attempts: {error}"
                    ) from error
                state.retries += 1
                state.waited_s += delay
                if sleep is not None:
                    sleep(delay)
