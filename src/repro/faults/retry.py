"""Shared retry policy: exponential backoff + jitter + deadline.

Every subsystem that survives transient faults does it through one
:class:`RetryPolicy` instead of ad-hoc loops, so attempt accounting and
backoff behaviour are uniform and testable. The policy never sleeps real
time — callers pass a ``sleep`` callable that charges simulated time (or
nothing), which keeps chaos experiments deterministic and fast.

Jitter is on by default and *deterministic*: each policy owns a
``random.Random(jitter_seed)`` stream, so two policies built with the same
parameters replay the same backoff sequence, while the documented
``jitter=0.1`` actually de-synchronises concurrent retriers. Callers that
need a shared stream can still pass an explicit ``rng``.

An exception is retried when it is an instance of one of ``retryable_types``
*and* its ``retryable`` attribute (see :class:`repro.errors.FaultError`) is
not False — permanent faults like a dead endpoint short-circuit the loop.
Two whole families are deliberately outside the net (experiment E20):
:class:`~repro.errors.DataCorruption` is not a :class:`FaultError` at all
(re-reading the same corrupt bytes can never succeed — replica failover,
scrubbing or WAL replay are the fix), and :class:`~repro.errors.SimulatedCrash`
sets ``retryable = False`` (the process is dead; only ``recover()`` helps).

Attempt/backoff accounting lands in two places: the per-call
:class:`RetryState`, and (when an :class:`~repro.obs.Observability` bundle
is attached) the ``retry.*`` metrics — attempts, recovered retries,
give-ups, and a backoff-delay histogram, labelled by the policy's ``scope``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar, TYPE_CHECKING

from repro.errors import FaultError, RetryExhausted, TimeoutExceeded

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observability
    from repro.resilience.deadline import Deadline

T = TypeVar("T")


@dataclass
class RetryState:
    """Attempt accounting for one retried call (filled in by ``call``)."""

    attempts: int = 0
    retries: int = 0
    waited_s: float = 0.0
    last_error: Optional[BaseException] = None


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter and an overall deadline.

    ``max_attempts`` counts *all* attempts including the first, so
    ``max_attempts=1`` means no retries. ``deadline_s`` bounds cumulative
    backoff wait — or, when ``call`` is given a ``clock``, total elapsed
    time including attempt durations: a retry whose wait would cross the
    bound raises :class:`TimeoutExceeded` instead of waiting. ``call`` also
    accepts an end-to-end :class:`~repro.resilience.Deadline` to charge.

    ``scope`` names the policy in metrics (``retry.*`` series are labelled
    with it), so one Observability bundle can tell the KV store's retries
    from the federation executor's.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0
    jitter: float = 0.1
    deadline_s: Optional[float] = None
    retryable_types: Tuple[Type[BaseException], ...] = (FaultError,)
    jitter_seed: int = 0
    scope: str = "default"
    obs: Optional["Observability"] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise FaultError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise FaultError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise FaultError("jitter must be in [0, 1)")
        # The policy's own jitter stream: deterministic under jitter_seed,
        # used whenever the caller does not supply an rng.
        self._rng = random.Random(self.jitter_seed)

    def backoff_s(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """Backoff before the ``retry_index``-th retry (1-based), jittered.

        With no explicit ``rng`` the policy's seeded stream applies the
        configured jitter (the stream advances per call, so consecutive
        delays differ but the whole sequence replays under the same seed).
        """
        if retry_index < 1:
            raise FaultError("retry_index is 1-based")
        delay = min(
            self.base_delay_s * self.multiplier ** (retry_index - 1),
            self.max_delay_s,
        )
        if self.jitter:
            stream = rng if rng is not None else self._rng
            delay *= 1.0 + self.jitter * (2.0 * stream.random() - 1.0)
        return delay

    def _is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable_types) and getattr(
            error, "retryable", True
        )

    def call(
        self,
        fn: Callable[[], T],
        *,
        state: Optional[RetryState] = None,
        rng: Optional[random.Random] = None,
        sleep: Optional[Callable[[float], None]] = None,
        obs: Optional["Observability"] = None,
        clock: Optional[Callable[[], float]] = None,
        deadline: Optional["Deadline"] = None,
    ) -> T:
        """Invoke ``fn`` under this policy.

        Raises :class:`RetryExhausted` (carrying the attempt count and last
        error) when attempts run out, and :class:`TimeoutExceeded` when the
        deadline would be crossed. Non-retryable exceptions propagate
        unchanged on first occurrence.

        Deadline accounting comes in two strengths:

        * with no ``clock``, ``deadline_s`` bounds *cumulative backoff*
          only (``state.waited_s``) — the historical behaviour;
        * with a ``clock`` (wall or simulated), ``deadline_s`` bounds total
          elapsed time since the call started, so slow attempts are charged
          too — a retry whose backoff would land past the deadline raises
          :class:`TimeoutExceeded` without waiting.

        An end-to-end :class:`~repro.resilience.Deadline` can be passed as
        ``deadline``: the loop refuses to start an attempt on an expired
        budget, refuses backoffs that don't fit the remaining budget, and
        charges backoff waits to unclocked (charge-driven) deadlines.
        """
        from repro.obs import resolve

        metrics = resolve(obs if obs is not None else self.obs).metrics
        attempts_total = metrics.counter("retry.attempts", scope=self.scope)
        state = state if state is not None else RetryState()
        started_at = clock() if clock is not None else 0.0
        while True:
            if deadline is not None:
                # Never launch an attempt whose result nobody can wait for.
                deadline.check(f"retry[{self.scope}]")
            state.attempts += 1
            attempts_total.inc()
            try:
                result = fn()
            except BaseException as error:  # noqa: BLE001 - filtered below
                state.last_error = error
                if not self._is_retryable(error):
                    metrics.counter(
                        "retry.giveups", scope=self.scope, reason="permanent"
                    ).inc()
                    raise
                if state.attempts >= self.max_attempts:
                    metrics.counter(
                        "retry.giveups", scope=self.scope, reason="exhausted"
                    ).inc()
                    raise RetryExhausted(
                        f"gave up after {state.attempts} attempts: {error}",
                        attempts=state.attempts,
                        last_error=error,
                    ) from error
                delay = self.backoff_s(state.retries + 1, rng)
                if self.deadline_s is not None:
                    # With a clock, attempts count against the deadline too;
                    # without one, only cumulative backoff does (legacy).
                    elapsed = (
                        clock() - started_at if clock is not None
                        else state.waited_s
                    )
                    if elapsed + delay > self.deadline_s:
                        metrics.counter(
                            "retry.giveups", scope=self.scope, reason="deadline"
                        ).inc()
                        raise TimeoutExceeded(
                            f"retry deadline {self.deadline_s}s exceeded after "
                            f"{state.attempts} attempts: {error}"
                        ) from error
                if deadline is not None and not deadline.allows(delay):
                    metrics.counter(
                        "retry.giveups", scope=self.scope, reason="deadline"
                    ).inc()
                    raise TimeoutExceeded(
                        f"deadline for {deadline.label} leaves no room for a "
                        f"{delay:.6g}s backoff after {state.attempts} "
                        f"attempts: {error}"
                    ) from error
                state.retries += 1
                state.waited_s += delay
                metrics.counter("retry.retries", scope=self.scope).inc()
                metrics.histogram("retry.backoff_s", scope=self.scope).observe(
                    delay
                )
                if deadline is not None and not deadline.clocked:
                    # Charge-driven deadlines don't see sleeps; bill them.
                    deadline.charge(delay)
                if sleep is not None:
                    sleep(delay)
            else:
                if state.retries:
                    metrics.counter("retry.recoveries", scope=self.scope).inc()
                return result
