"""Per-query resource governance for both SPARQL engines (experiment E23).

The E21 gateway enforces deadlines only at admission and settlement: once a
query enters the interpreted evaluator or the E22 vector engine, nothing can
stop it — one adversarial cross-product monopolizes memory and its WFQ slot
while expired followers queue behind it. This package closes that gap with
the discipline production SPARQL endpoints treat as table stakes: per-query
timeouts, memory caps and kill switches, enforced *inside* the engines.

A :class:`QueryBudget` travels with one execution (via
``CompileOptions(budget=...)``) and bundles three controls:

* **deadline** — the existing dual-mode
  :class:`~repro.resilience.Deadline` (clocked, or charge-driven: each
  checkpoint can charge a modelled per-operator cost, and
  :class:`~repro.faults.SlowOperator` faults inject extra sim-clock charge);
* **memory caps** — ``max_rows``/``max_bytes`` bound the *resident*
  intermediate state: batch-level accounting in the vector engine (operator
  results charge, consumed children release), solution-count accounting in
  the interpreted one. The vector join pre-admits its output size *before*
  allocating the pair arrays, so a cross-product dies at the checkpoint,
  not in the allocator. Bytes are modelled (8 per binding cell — the id
  width) rather than measured, keeping the accounting deterministic;
* **cancellation** — a :class:`CancelToken` the gateway (or any owner) can
  flip; the engine notices at its next checkpoint and unwinds cleanly.

Checkpoints raise the typed, non-leaking errors
:class:`~repro.errors.QueryCancelled` (cancel observed),
:class:`~repro.errors.TimeoutExceeded` (deadline gone) and
:class:`~repro.errors.QueryBudgetExceeded` (cap hit) — the gateway
translates all of them into per-tenant :class:`~repro.errors.Shed` /
timeout errors, exactly like the E18 ``Overloaded``/``CircuitOpen``
translation.

``budget=None`` (the default everywhere) keeps the disabled path
byte-identical to pre-governor code, pinned by the parity suite, matching
the E17–E22 convention.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import QueryBudgetExceeded, QueryCancelled, SPARQLError

#: Modelled bytes per resident binding cell (the vector engine's id width).
BYTES_PER_CELL = 8


class CancelToken:
    """A cooperative kill switch shared between an owner and one execution.

    The owner calls :meth:`cancel`; the engine polls :attr:`cancelled` at
    every :meth:`QueryBudget.checkpoint` and raises
    :class:`~repro.errors.QueryCancelled`. Idempotent — the first reason
    wins, later cancels are no-ops.
    """

    __slots__ = ("_cancelled", "reason")

    def __init__(self) -> None:
        self._cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        if not self._cancelled:
            self._cancelled = True
            self.reason = reason

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self._cancelled else "live"
        return f"CancelToken({state})"


class QueryBudget:
    """One query's resource envelope plus its enforcement counters.

    Engines call :meth:`checkpoint` at operator boundaries and inside their
    tight loops (join build/probe, correlated fallback rows, aggregate
    groups), :meth:`admit_rows` *before* a sized allocation, and
    :meth:`charge_rows`/:meth:`release_to` around operator results so
    ``resident_rows``/``resident_bytes`` track live intermediate state and
    ``peak_rows``/``peak_bytes`` record the high-water mark.

    ``checkpoint_charge_s`` and ``row_charge_s`` turn checkpoints and
    produced rows into charge-driven deadline consumption — the soak's
    deterministic service-time model, and the only way a charge-driven
    deadline can expire inside an engine. A
    :class:`~repro.faults.FaultInjector` adds :class:`SlowOperator` charge
    on top, keyed by the operator name the checkpoint reports.
    """

    __slots__ = (
        "deadline", "max_rows", "max_bytes", "cancel", "label", "injector",
        "checkpoint_charge_s", "row_charge_s", "checkpoints",
        "rows_produced", "resident_rows", "resident_bytes", "peak_rows",
        "peak_bytes", "charged_s",
    )

    def __init__(
        self,
        deadline=None,
        max_rows: Optional[int] = None,
        max_bytes: Optional[int] = None,
        cancel: Optional[CancelToken] = None,
        label: str = "query",
        injector=None,
        checkpoint_charge_s: float = 0.0,
        row_charge_s: float = 0.0,
    ):
        if max_rows is not None and max_rows < 1:
            raise SPARQLError(f"max_rows must be >= 1, got {max_rows}")
        if max_bytes is not None and max_bytes < 1:
            raise SPARQLError(f"max_bytes must be >= 1, got {max_bytes}")
        if checkpoint_charge_s < 0 or row_charge_s < 0:
            raise SPARQLError("budget charges must be >= 0")
        self.deadline = deadline
        self.max_rows = max_rows
        self.max_bytes = max_bytes
        self.cancel = cancel if cancel is not None else CancelToken()
        self.label = label
        self.injector = injector
        self.checkpoint_charge_s = checkpoint_charge_s
        self.row_charge_s = row_charge_s
        self.checkpoints = 0
        self.rows_produced = 0
        self.resident_rows = 0
        self.resident_bytes = 0
        self.peak_rows = 0
        self.peak_bytes = 0
        self.charged_s = 0.0

    # ------------------------------------------------------------------
    # Checkpoints: cancellation, injected slowness, deadline
    # ------------------------------------------------------------------

    def checkpoint(self, where: str = "") -> None:
        """One cooperative enforcement point; engines call this before a
        unit of work. Order matters: a kill is honoured even when the
        deadline also ran out, so the owner's reason survives."""
        self.checkpoints += 1
        if self.cancel.cancelled:
            raise QueryCancelled(
                f"query {self.label!r} cancelled at {where or 'checkpoint'}: "
                f"{self.cancel.reason}",
                reason=self.cancel.reason,
            )
        charge = self.checkpoint_charge_s
        if self.injector is not None:
            charge += self.injector.operator_charge(where)
        if charge:
            self.charge_cost(charge)
        if self.deadline is not None:
            self.deadline.check(where or self.label)

    def charge_cost(self, seconds: float) -> None:
        """Consume modelled execution time (and the deadline, if any)."""
        self.charged_s += seconds
        if self.deadline is not None:
            self.deadline.charge(seconds)

    def produced(self, rows: int) -> None:
        """Account rows an operator produced (a work counter, not memory)."""
        self.rows_produced += rows

    # ------------------------------------------------------------------
    # Resident-memory accounting
    # ------------------------------------------------------------------

    def admit_rows(self, rows: int, columns: int = 1, where: str = "") -> None:
        """Refuse an allocation of ``rows x columns`` cells that would
        exceed a cap — called *before* the memory exists, so the peak
        counters can never read past the configured limit."""
        if self.max_rows is not None and self.resident_rows + rows > self.max_rows:
            raise QueryBudgetExceeded(
                f"query {self.label!r} would hold "
                f"{self.resident_rows + rows} rows at "
                f"{where or 'admit'} (cap {self.max_rows})",
                resource="rows",
                observed=self.resident_rows + rows,
                limit=self.max_rows,
            )
        if self.max_bytes is not None:
            projected = self.resident_bytes + rows * columns * BYTES_PER_CELL
            if projected > self.max_bytes:
                raise QueryBudgetExceeded(
                    f"query {self.label!r} would hold {projected} bytes at "
                    f"{where or 'admit'} (cap {self.max_bytes})",
                    resource="bytes",
                    observed=projected,
                    limit=self.max_bytes,
                )

    def charge_rows(self, rows: int, columns: int = 1, where: str = "") -> None:
        """Admit, then account ``rows`` as produced *and* resident."""
        self.admit_rows(rows, columns, where)
        self.rows_produced += rows
        self.resident_rows += rows
        self.resident_bytes += rows * columns * BYTES_PER_CELL
        if self.resident_rows > self.peak_rows:
            self.peak_rows = self.resident_rows
        if self.resident_bytes > self.peak_bytes:
            self.peak_bytes = self.resident_bytes
        if self.row_charge_s:
            self.charge_cost(rows * self.row_charge_s)

    def mark(self) -> Tuple[int, int]:
        """Snapshot of resident state, for :meth:`release_to`."""
        return (self.resident_rows, self.resident_bytes)

    def release_to(self, mark: Tuple[int, int]) -> None:
        """Roll resident accounting back to a :meth:`mark` — an operator's
        inputs are garbage once its output batch exists. Peaks keep the
        high-water mark."""
        self.resident_rows, self.resident_bytes = mark

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def record(self, obs, outcome: str = "ok") -> None:
        """Emit the ``governor.*`` metrics for one finished execution."""
        metrics = obs.metrics
        metrics.counter("governor.queries", outcome=outcome).inc()
        metrics.counter("governor.checkpoints").inc(self.checkpoints)
        metrics.histogram("governor.peak_rows").observe(float(self.peak_rows))

    def __repr__(self) -> str:
        caps = []
        if self.max_rows is not None:
            caps.append(f"max_rows={self.max_rows}")
        if self.max_bytes is not None:
            caps.append(f"max_bytes={self.max_bytes}")
        if self.deadline is not None:
            caps.append(f"deadline={self.deadline!r}")
        return (
            f"QueryBudget({self.label!r}, {', '.join(caps) or 'unlimited'}, "
            f"checkpoints={self.checkpoints}, peak_rows={self.peak_rows})"
        )


@dataclass(frozen=True)
class BudgetPolicy:
    """The gateway's recipe for deriving one :class:`QueryBudget` per
    execution (see :meth:`repro.serving.Gateway.budget_for`).

    ``max_seconds`` caps the execution deadline: the member's own deadline
    is narrowed via :meth:`~repro.resilience.Deadline.derive` (never
    widened), and an execution with no member deadline gets a fresh
    charge-driven one. ``checkpoint_charge_s``/``row_charge_s`` make that
    deadline consume modelled engine work, so a time cap binds even on a
    simulated clock that does not advance mid-execution.
    """

    max_rows: Optional[int] = None
    max_bytes: Optional[int] = None
    max_seconds: Optional[float] = None
    checkpoint_charge_s: float = 0.0
    row_charge_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_rows is not None and self.max_rows < 1:
            raise SPARQLError(f"max_rows must be >= 1, got {self.max_rows}")
        if self.max_bytes is not None and self.max_bytes < 1:
            raise SPARQLError(f"max_bytes must be >= 1, got {self.max_bytes}")

    @property
    def enabled(self) -> bool:
        return (
            self.max_rows is not None
            or self.max_bytes is not None
            or self.max_seconds is not None
            or self.checkpoint_charge_s > 0
            or self.row_charge_s > 0
        )


def with_budget(options, budget: Optional[QueryBudget]):
    """Return ``options`` with *budget* attached (None options get fresh
    defaults). The budget field never participates in plan-cache or
    coalescing keys (see ``CompileOptions.cache_key``), so attaching one is
    invisible to both caches."""
    from repro.sparql.algebra import CompileOptions

    if budget is None:
        return options
    if options is None:
        return CompileOptions(budget=budget)
    return replace(options, budget=budget)


__all__ = [
    "BYTES_PER_CELL",
    "BudgetPolicy",
    "CancelToken",
    "QueryBudget",
    "with_budget",
]
