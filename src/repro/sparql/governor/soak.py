"""The E23 governor soak: runaway cross-products vs everyone, governed and not.

A seeded open-loop workload of cheap tenant queries (alternating between the
interpreted and vector engines, half of them exercising the LIMIT
short-circuit) is mixed with an adversary tenant whose every query is a
textual variant of a two-pattern cross product — the classic runaway that,
pre-E23, monopolized a server for its full blow-up. The same traffic is
played three times against the same :class:`~repro.geosparql.store.GeoStore`
on the same discrete-event clock:

* **baseline** — governed, no adversary: the well-behaved p99 reference;
* **governed** — adversary present, gateway configured with a
  :class:`~repro.sparql.governor.BudgetPolicy`: every runaway must die at
  an engine checkpoint with a typed error (:class:`~repro.errors.Shed`
  with ``reason="query_budget"``, or a deadline timeout), its peak
  resident rows must never exceed the cap, and the well-behaved p99 must
  stay within 2x the no-adversary baseline;
* **ungoverned** — adversary present, no policy: executions carry a
  *metering-only* budget (no caps, no deadline, no cancel) so the soak can
  observe what enforcement would have seen — peak resident rows far past
  the cap, service times inflated by the full cross-product, unbounded
  failure for everyone behind the adversary.

Service time is modelled from the budget's own charge stream
(``base + charged_s``, with ``checkpoint_charge_s``/``row_charge_s`` as the
work model), so a query's simulated cost is exactly the work the governor
accounted — the run is a pure function of the seed.

``python -m repro.sparql.governor.soak --smoke`` runs a short three-way
comparison, verifies every invariant above (plus the E21 drain/ticket
audit), and writes a ``BENCH_E23.json`` snapshot for the CI gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.simclock import Simulation
from repro.errors import QuotaExceeded, ServingError, Shed, TimeoutExceeded
from repro.obs import Observability, resolve
from repro.rdf.term import IRI, Literal
from repro.resilience.deadline import Deadline
from repro.serving.backends import StoreBackend
from repro.serving.gateway import EXPIRED, FAILED, Gateway, GatewayRequest, OK
from repro.serving.tenant import TenantConfig
from repro.sparql.algebra import CompileOptions
from repro.sparql.governor import BudgetPolicy, QueryBudget

WELL_BEHAVED = "well_behaved"
RUNAWAY = "runaway"


@dataclass(frozen=True)
class GovernorSoakConfig:
    """One three-way soak. Defaults: ~40% utilization from honest traffic,
    one adversary whose cross products offer several times the pool's
    capacity when left ungoverned."""

    seed: int = 23
    requests: int = 4000
    tenants: int = 4  #: well-behaved tenants (the adversary is extra)
    adversary_every: int = 40  #: every Nth arrival is a runaway (0 = none)
    runaway_variants: int = 8  #: distinct runaway texts (defeats coalescing)
    servers: int = 4
    base_service_s: float = 0.002
    deadline_s: float = 2.0
    rate: float = 800.0  #: aggregate offered requests/s
    cross_entities: int = 96  #: rows per runaway scan (cross = n^2)
    pool_predicates: int = 8  #: well-behaved query pool size
    pool_rows: int = 40  #: triples behind each well-behaved predicate
    max_rows: int = 2048  #: governed resident-row cap
    max_seconds: float = 0.05  #: governed per-execution (charged) time cap
    checkpoint_charge_s: float = 2e-5
    row_charge_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.servers < 1 or self.tenants < 1:
            raise ServingError("soak needs >= 1 server and >= 1 tenant")
        if self.base_service_s <= 0 or self.deadline_s <= 0:
            raise ServingError("soak times must be positive")
        if self.cross_entities * self.cross_entities <= self.max_rows:
            raise ServingError("runaway cross product must exceed max_rows")

    def policy(self) -> BudgetPolicy:
        return BudgetPolicy(
            max_rows=self.max_rows,
            max_seconds=self.max_seconds,
            checkpoint_charge_s=self.checkpoint_charge_s,
            row_charge_s=self.row_charge_s,
        )


def build_store(config: GovernorSoakConfig):
    """The shared dataset: dense cross-product bait plus the honest pool."""
    from repro.geosparql.store import GeoStore

    store = GeoStore()
    for side in ("a", "b"):
        predicate = IRI(f"urn:cross:{side}")
        for index in range(config.cross_entities):
            store.add(
                IRI(f"urn:e:{side}{index}"), predicate, Literal(str(index))
            )
    for pool in range(config.pool_predicates):
        predicate = IRI(f"urn:pool:{pool}")
        for index in range(config.pool_rows):
            store.add(
                IRI(f"urn:s:{pool}:{index}"), predicate, Literal(str(index))
            )
    return store


def runaway_text(variant: int) -> str:
    """One cross-product variant; distinct variable names keep the texts —
    and so their coalescing keys — distinct."""
    return (
        f"SELECT ?x{variant} ?y{variant} WHERE {{ "
        f"?x{variant} <urn:cross:a> ?v{variant} . "
        f"?y{variant} <urn:cross:b> ?w{variant} }}"
    )


def pool_text(pool: int, limited: bool) -> str:
    suffix = " LIMIT 10" if limited else ""
    return f"SELECT ?s ?o WHERE {{ ?s <urn:pool:{pool}> ?o }}{suffix}"


@dataclass
class ClassOutcome:
    """One traffic class's ledger (honest traffic vs runaways)."""

    arrivals: int = 0
    ok: int = 0
    failed: int = 0  #: settled with a typed error
    expired: int = 0  #: deadline ran out while queued/coalesced
    coalesced: int = 0

    @property
    def accounted(self) -> int:
        return self.ok + self.failed + self.expired


@dataclass
class GovernorSoakReport:
    """Outcome of one soak run (one mode)."""

    governed: bool
    adversary: bool
    classes: Dict[str, ClassOutcome] = field(default_factory=dict)
    latencies_s: Dict[str, List[float]] = field(default_factory=dict)
    executions: int = 0
    runaway_executions: int = 0
    #: executions whose peak resident rows exceeded the configured cap
    overruns: int = 0
    peak_rows_max: int = 0
    checkpoints: int = 0
    #: typed-error reasons runaway members settled with, by reason label
    runaway_errors: Dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    events_processed: int = 0
    residual: Dict[str, int] = field(default_factory=dict)

    def outcome(self, klass: str) -> ClassOutcome:
        return self.classes.setdefault(klass, ClassOutcome())

    def p99_s(self, klass: str = WELL_BEHAVED) -> float:
        samples = self.latencies_s.get(klass, [])
        if not samples:
            return 0.0
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def verify(self) -> None:
        """Per-run accounting: every arrival in exactly one bucket, drained."""
        for klass, outcome in self.classes.items():
            if outcome.accounted != outcome.arrivals:
                raise ServingError(
                    f"{klass} accounting leak: {outcome.arrivals} arrivals, "
                    f"{outcome.accounted} outcomes"
                )
        for name, value in self.residual.items():
            if value != 0:
                raise ServingError(f"soak did not drain: {name}={value}")

    def summary(self) -> Dict[str, float]:
        honest = self.outcome(WELL_BEHAVED)
        runaway = self.outcome(RUNAWAY)
        return {
            "governed": float(self.governed),
            "adversary": float(self.adversary),
            "arrivals": float(honest.arrivals + runaway.arrivals),
            "ok": float(honest.ok + runaway.ok),
            "failed": float(honest.failed + runaway.failed),
            "expired": float(honest.expired + runaway.expired),
            "runaway_arrivals": float(runaway.arrivals),
            "runaway_ok": float(runaway.ok),
            "executions": float(self.executions),
            "overruns": float(self.overruns),
            "peak_rows_max": float(self.peak_rows_max),
            "p99_well_behaved_s": self.p99_s(WELL_BEHAVED),
            "duration_s": self.duration_s,
        }


class _GovernorSoak:
    """One mode on the sim clock: arrivals -> gateway -> simulated servers."""

    def __init__(
        self,
        config: GovernorSoakConfig,
        governed: bool,
        adversary: bool,
        obs: Optional[Observability] = None,
    ):
        self.config = config
        self.governed = governed
        self.adversary = adversary
        self.sim = Simulation()
        self.obs = resolve(obs)
        store = build_store(config)
        self.gateway = Gateway(
            StoreBackend(store),
            clock=lambda: self.sim.now,
            obs=obs,
            budget_policy=config.policy() if governed else None,
        )
        for name in self._tenant_names():
            self.gateway.register_tenant(
                TenantConfig(name=name, api_key=f"key-{name}")
            )
        self.free_servers = config.servers
        self.report = GovernorSoakReport(governed=governed, adversary=adversary)
        self.runaway_texts = {
            runaway_text(v) for v in range(config.runaway_variants)
        }

    def _tenant_names(self) -> List[str]:
        return [f"tenant-{i}" for i in range(self.config.tenants)] + ["mallory"]

    # -- workload ------------------------------------------------------

    def _arrivals(self):
        """(at_s, tenant, query text, engine) — a pure function of the seed."""
        config = self.config
        rng = random.Random(config.seed)
        now = 0.0
        for index in range(config.requests):
            now += rng.expovariate(config.rate)
            adversarial = (
                self.adversary
                and config.adversary_every > 0
                and index % config.adversary_every == config.adversary_every - 1
            )
            engine = "vector" if index % 2 == 0 else "interpreted"
            if adversarial:
                variant = rng.randrange(config.runaway_variants)
                yield now, "mallory", runaway_text(variant), engine
            else:
                tenant = f"tenant-{rng.randrange(config.tenants)}"
                pool = rng.randrange(config.pool_predicates)
                yield now, tenant, pool_text(pool, limited=pool % 2 == 0), engine

    def run(self) -> GovernorSoakReport:
        for at_s, tenant, text, engine in self._arrivals():
            self.sim.schedule_at(
                at_s,
                lambda tenant=tenant, text=text, engine=engine: (
                    self._arrive(tenant, text, engine)
                ),
            )
        self.sim.run()
        gateway = self.gateway
        gateway.assert_drained()  # E21 drain/ticket audit, hard fail
        report = self.report
        report.executions = gateway.executions
        report.duration_s = self.sim.now
        report.events_processed = self.sim.events_processed
        report.residual["queued"] = len(gateway.queue)
        report.residual["coalesce_in_flight"] = gateway.coalescer.in_flight
        report.residual["ticket_leak"] = (
            gateway.tickets_issued - gateway.tickets_released
        )
        report.residual["busy_servers"] = (
            self.config.servers - self.free_servers
        )
        return report

    def _classify(self, text: str) -> str:
        return RUNAWAY if text in self.runaway_texts else WELL_BEHAVED

    def _arrive(self, tenant: str, text: str, engine: str) -> None:
        self.report.outcome(self._classify(text)).arrivals += 1
        request = GatewayRequest(
            api_key=f"key-{tenant}",
            query=text,
            kind="sparql",
            options=CompileOptions(engine=engine),
            deadline=Deadline(
                self.config.deadline_s,
                clock=lambda: self.sim.now,
                label=tenant,
            ),
        )
        try:
            self.gateway.submit(request)
        except (QuotaExceeded, Shed):  # pragma: no cover - quotas unlimited
            raise ServingError("soak tenants must never be rejected at intake")
        if request.follower:
            self.report.outcome(self._classify(text)).coalesced += 1
        self._pump()

    # -- simulated execution -------------------------------------------

    def _pump(self) -> None:
        while self.free_servers > 0:
            entry = self.gateway.next_dispatch()
            if entry is None:
                break
            self.free_servers -= 1
            result, error, budget = self._execute(entry)
            service_s = self.config.base_service_s + budget.charged_s
            self.sim.schedule(
                service_s,
                lambda entry=entry, result=result, error=error, budget=budget: (
                    self._finish(entry, result, error, budget)
                ),
            )
        self._settle_scan()

    def _execute(self, entry):
        """Run the leader's query now; the outcome lands at service-finish.

        Governed mode takes the gateway's own derived budget; ungoverned
        mode attaches a metering-only budget (no caps, no deadline) so both
        modes report the same counters from the same accounting code.
        """
        gateway = self.gateway
        budget = gateway.budget_for(entry)
        if budget is None:
            budget = QueryBudget(
                label="metered",
                checkpoint_charge_s=self.config.checkpoint_charge_s,
                row_charge_s=self.config.row_charge_s,
            )
        backend = gateway.backend(entry.key[0])
        leader = entry.leader
        try:
            result = backend.execute(
                leader.query, options=leader.options, budget=budget
            )
        except Exception as exc:
            return None, exc, budget
        return result, None, budget

    def _finish(self, entry, result, error, budget) -> None:
        self.free_servers += 1
        report = self.report
        klass = self._classify(entry.leader.query)
        if klass == RUNAWAY:
            report.runaway_executions += 1
            if budget.peak_rows > self.config.max_rows:
                report.overruns += 1
        report.peak_rows_max = max(report.peak_rows_max, budget.peak_rows)
        report.checkpoints += budget.checkpoints
        if self.governed:
            self.gateway._record_budget(budget, error)
        settled = self.gateway.complete(entry, result=result, error=error)
        now = self.sim.now
        for member in settled:
            outcome = report.outcome(self._classify(member.query))
            if member.category == OK:
                outcome.ok += 1
                report.latencies_s.setdefault(
                    self._classify(member.query), []
                ).append(now - member.submitted_at)
            elif member.category == EXPIRED:
                outcome.expired += 1
            else:
                outcome.failed += 1
                if self._classify(member.query) == RUNAWAY:
                    reason = getattr(member.error, "reason", None) or type(
                        member.error
                    ).__name__
                    report.runaway_errors[reason] = (
                        report.runaway_errors.get(reason, 0) + 1
                    )
        self._pump()

    def _settle_scan(self) -> None:
        """No-op hook kept for symmetry with the E21 soak's pump loop."""


def run_governor_soak(
    config: GovernorSoakConfig,
    governed: bool = True,
    adversary: bool = True,
    obs: Optional[Observability] = None,
) -> GovernorSoakReport:
    """Run one deterministic soak; the report is verify()-able."""
    return _GovernorSoak(config, governed, adversary, obs=obs).run()


def run_comparison(
    config: GovernorSoakConfig, obs: Optional[Observability] = None
):
    """(baseline, governed, ungoverned); each verified, invariants checked."""
    baseline = run_governor_soak(config, governed=True, adversary=False)
    governed = run_governor_soak(config, governed=True, adversary=True, obs=obs)
    ungoverned = run_governor_soak(config, governed=False, adversary=True)
    for report in (baseline, governed, ungoverned):
        report.verify()
    verify_comparison(baseline, governed, ungoverned, config)
    return baseline, governed, ungoverned


def verify_comparison(
    baseline: GovernorSoakReport,
    governed: GovernorSoakReport,
    ungoverned: GovernorSoakReport,
    config: GovernorSoakConfig,
) -> None:
    """The E23 acceptance invariants; any violation fails the soak."""
    runaway = governed.outcome(RUNAWAY)
    if runaway.arrivals == 0:
        raise ServingError("governed run saw no runaways")
    if runaway.ok != 0:
        raise ServingError(f"{runaway.ok} runaways completed under governance")
    if governed.overruns != 0:
        raise ServingError(
            f"governed run had {governed.overruns} resident-row overruns"
        )
    if governed.peak_rows_max > config.max_rows:
        raise ServingError(
            f"governed peak {governed.peak_rows_max} exceeds cap "
            f"{config.max_rows}"
        )
    typed = {"rows", "bytes", "deadline", "TimeoutExceeded", "Shed"}
    # Every runaway that reached execution must have died with a typed
    # error whose reason names the enforcement that killed it.
    for reason in governed.runaway_errors:
        if reason not in typed and not reason.startswith("query"):
            raise ServingError(f"untyped runaway error reason {reason!r}")
    if ungoverned.overruns == 0:
        raise ServingError("ungoverned run never overran the cap")
    if ungoverned.peak_rows_max <= config.max_rows:
        raise ServingError("ungoverned peak stayed under the cap")
    base_p99 = baseline.p99_s(WELL_BEHAVED)
    governed_p99 = governed.p99_s(WELL_BEHAVED)
    if base_p99 > 0 and governed_p99 > 2.0 * base_p99:
        raise ServingError(
            f"governed well-behaved p99 {governed_p99:.6g}s exceeds 2x "
            f"no-adversary baseline {base_p99:.6g}s"
        )
    hurt = (
        ungoverned.p99_s(WELL_BEHAVED) > governed_p99
        or ungoverned.outcome(WELL_BEHAVED).expired
        > governed.outcome(WELL_BEHAVED).expired
    )
    if not hurt:
        raise ServingError(
            "ungoverned run shows no well-behaved degradation — the "
            "adversary is not adversarial enough to gate on"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sparql.governor.soak [--smoke] [--seed N]``"""
    import argparse

    parser = argparse.ArgumentParser(
        description="E23 query-governor soak: governed vs ungoverned runaways"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="short CI-sized run")
    parser.add_argument("--seed", type=int, default=23)
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args(argv)
    requests = args.requests
    if requests is None:
        requests = 1200 if args.smoke else 4000
    config = GovernorSoakConfig(
        seed=args.seed,
        requests=requests,
        adversary_every=25 if args.smoke else 40,
    )
    obs = Observability(clock=lambda: 0.0)
    baseline, governed, ungoverned = run_comparison(config, obs=obs)
    for label, report in (
        ("baseline", baseline),
        ("governed", governed),
        ("ungoverned", ungoverned),
    ):
        print(f"[{label}] " + " ".join(
            f"{key}={value:.5g}" for key, value in report.summary().items()
            if key not in ("governed", "adversary")
        ))
    from repro.obs import bench_snapshot_path, write_snapshot

    path = write_snapshot(
        bench_snapshot_path("E23"),
        obs,
        meta={
            "experiment": "E23",
            "seed": config.seed,
            "requests": config.requests,
            "cap_rows": config.max_rows,
            "runaway_arrivals": governed.outcome(RUNAWAY).arrivals,
            "runaway_ok_governed": governed.outcome(RUNAWAY).ok,
            "overruns_governed": governed.overruns,
            "overruns_ungoverned": ungoverned.overruns,
            "peak_rows_governed": governed.peak_rows_max,
            "peak_rows_ungoverned": ungoverned.peak_rows_max,
            "p99_baseline_s": baseline.p99_s(WELL_BEHAVED),
            "p99_governed_s": governed.p99_s(WELL_BEHAVED),
            "p99_ungoverned_s": ungoverned.p99_s(WELL_BEHAVED),
            "checkpoints_governed": governed.checkpoints,
        },
    )
    print(f"[obs] snapshot written: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
