"""Cost-based join ordering fed by O(1) index cardinality statistics.

The interpreted algebra orders BGP patterns with a shape-rank heuristic
(bound-position shapes, plus one predicate-count probe). With the E22 count
fix, :meth:`repro.rdf.graph.Graph.count` answers *every* pattern shape from
index bucket sizes, so the vector engine can replace the heuristic with real
cardinalities:

* the base cost of a pattern is its **exact** extent (count with variables
  wildcarded);
* a variable position already bound upstream divides the estimate by the
  number of distinct terms in that position (classic independence
  assumption), modelling the hash join's selectivity;
* ordering is greedy smallest-estimate-first among patterns connected to
  what has been joined, with the original pattern index as the deterministic
  tie-break.

The rewrite only touches pure scan/join/filter regions — exactly the shape
:func:`repro.sparql.algebra.compile_group` emits for a BGP with pushed
filters — and re-pushes the filters afterwards; OPTIONAL/UNION/BIND
boundaries and custom operators (e.g. the GeoStore's spatial candidate scan)
are left untouched and recursed into.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.rdf.graph import Graph
from repro.sparql.algebra import (
    AlgebraOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    JoinOp,
    LeftJoinOp,
    ScanOp,
    UnionOp,
    _push_filter,
)
from repro.sparql.ast import Expression, TriplePattern, Variable


def pattern_extent(pattern: TriplePattern, graph: Graph) -> int:
    """Exact number of triples matching the pattern's constant shape (O(1))."""
    query = tuple(
        None if isinstance(position, Variable) else position
        for position in (pattern.subject, pattern.predicate, pattern.object)
    )
    return graph.count(query)  # type: ignore[arg-type]


def estimated_rows(
    pattern: TriplePattern, graph: Graph, bound: Set[Variable]
) -> float:
    """Estimated output rows per upstream row, given already-bound variables."""
    estimate = float(pattern_extent(pattern, graph))
    divisors = (
        (pattern.subject, graph.distinct_subjects()),
        (pattern.predicate, graph.distinct_predicates()),
        (pattern.object, graph.distinct_objects()),
    )
    for position, distinct in divisors:
        if isinstance(position, Variable) and position in bound:
            estimate /= max(distinct, 1)
    return estimate


def order_patterns_by_cost(
    patterns: Sequence[TriplePattern],
    graph: Graph,
    bound_vars: Optional[Set[Variable]] = None,
) -> List[TriplePattern]:
    """Greedy cheapest-first join order, preferring connected patterns."""
    remaining = list(enumerate(patterns))
    ordered: List[TriplePattern] = []
    bound: Set[Variable] = set(bound_vars or ())
    while remaining:
        def score(item: Tuple[int, TriplePattern]) -> Tuple[int, float, int]:
            index, pattern = item
            connected = any(v in bound for v in pattern.variables())
            return (
                0 if connected or not bound else 1,
                estimated_rows(pattern, graph, bound),
                index,
            )

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best[1])
        bound.update(best[1].variables())
    return ordered


# ---------------------------------------------------------------------------
# Plan rewrite
# ---------------------------------------------------------------------------

def _collect_region(
    op: AlgebraOp, scans: List[ScanOp], filters: List[Expression]
) -> bool:
    """Collect a pure scan/join/filter region; False if anything else occurs."""
    if isinstance(op, ScanOp):
        scans.append(op)
        return True
    if isinstance(op, JoinOp):
        return _collect_region(op.left, scans, filters) and _collect_region(
            op.right, scans, filters
        )
    if isinstance(op, FilterOp):
        filters.append(op.expression)
        return _collect_region(op.operand, scans, filters)
    return False


def apply_cost_order(op: AlgebraOp, graph: Graph) -> AlgebraOp:
    """Reorder every pure scan/join/filter region by estimated cardinality."""
    if isinstance(op, (JoinOp, FilterOp)):
        scans: List[ScanOp] = []
        filters: List[Expression] = []
        if _collect_region(op, scans, filters) and len(scans) > 1:
            ordered = order_patterns_by_cost([s.pattern for s in scans], graph)
            tree: AlgebraOp = ScanOp(ordered[0])
            for pattern in ordered[1:]:
                tree = JoinOp(tree, ScanOp(pattern))
            for expression in filters:
                tree = _push_filter(tree, expression)
            return tree
    if isinstance(op, JoinOp):
        return JoinOp(
            apply_cost_order(op.left, graph), apply_cost_order(op.right, graph)
        )
    if isinstance(op, LeftJoinOp):
        return LeftJoinOp(
            apply_cost_order(op.left, graph), apply_cost_order(op.right, graph)
        )
    if isinstance(op, UnionOp):
        return UnionOp([apply_cost_order(o, graph) for o in op.operands])
    if isinstance(op, FilterOp):
        return FilterOp(op.expression, apply_cost_order(op.operand, graph))
    if isinstance(op, ExtendOp):
        return ExtendOp(
            apply_cost_order(op.operand, graph), op.variable, op.expression
        )
    return op


def free_expression_variables(op: AlgebraOp) -> frozenset:
    """Variables referenced by expressions that the operator's own subtree
    may not bind — a conservative correlation signal.

    When the right side of a join has free expression variables that the
    left side binds, substitution semantics (the interpreted engine
    propagates left bindings into the right operand's expressions) diverge
    from independent bottom-up evaluation, so the vector engine must fall
    back to correlated interpreted evaluation for that join.
    """
    from repro.sparql.algebra import expression_variables, operator_variables

    if isinstance(op, FilterOp):
        own = expression_variables(op.expression) - operator_variables(op.operand)
        return frozenset(own) | free_expression_variables(op.operand)
    if isinstance(op, ExtendOp):
        # The BIND target variable itself is correlation-sensitive too: if an
        # outer operand binds it, the interpreted engine raises a rebind
        # error that bottom-up evaluation would never see.
        own = (
            expression_variables(op.expression) | {op.variable}
        ) - operator_variables(op.operand)
        return frozenset(own) | free_expression_variables(op.operand)
    if isinstance(op, (JoinOp, LeftJoinOp)):
        return free_expression_variables(op.left) | free_expression_variables(
            op.right
        )
    if isinstance(op, UnionOp):
        result: frozenset = frozenset()
        for operand in op.operands:
            result |= free_expression_variables(operand)
        return result
    if isinstance(op, (ScanOp, EmptyOp)):
        return frozenset()
    return frozenset()


def optional_blind_variables(op: AlgebraOp) -> frozenset:
    """Variables bound only on the *right* (optional) side of some LeftJoin
    inside ``op`` — the non-well-designed-pattern signal.

    When such a variable is also bound by the other operand of an enclosing
    join, substitution semantics diverge from bottom-up evaluation: the
    interpreted engine constrains the optional part with the outer binding
    (so a mismatch falls back to the bare left row), while an independent
    hash join would first extend with the unconstrained match and then drop
    the row. The vector engine treats these like expression correlation and
    falls back to interpreted evaluation for the enclosing join.
    """
    from repro.sparql.algebra import operator_variables

    if isinstance(op, LeftJoinOp):
        blind = operator_variables(op.right) - operator_variables(op.left)
        return (
            frozenset(blind)
            | optional_blind_variables(op.left)
            | optional_blind_variables(op.right)
        )
    if isinstance(op, JoinOp):
        return optional_blind_variables(op.left) | optional_blind_variables(
            op.right
        )
    if isinstance(op, UnionOp):
        result: frozenset = frozenset()
        for operand in op.operands:
            result |= optional_blind_variables(operand)
        return result
    if isinstance(op, (FilterOp, ExtendOp)):
        return optional_blind_variables(op.operand)
    return frozenset()
