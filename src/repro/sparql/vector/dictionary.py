"""Term encoding and id-indexed decode tables for the vector engine.

Two pieces:

* :class:`TermEncoder` — per-execution term <-> id mapping. Graph terms keep
  their dictionary ids (:meth:`repro.rdf.graph.Graph.term_id`); terms a query
  produces itself (BIND results, VALUES constants the graph has never seen)
  get *ephemeral* ids starting at ``graph.term_count``, deduplicated by term
  value so id-equality remains value-equality within the execution.

* :class:`ColumnCodec` — numpy decode tables indexed by graph term id,
  giving vectorized access to the three value views expression evaluation
  needs: the *strict* numeric view (``to_python`` numbers/booleans — what
  SPARQL ordered comparison accepts), the *lenient* numeric view (the
  ``_numeric`` coercion arithmetic uses, which also parses plain literals),
  and the effective-boolean-value view. The graph's term dictionary is
  append-only, so the tables are extended incrementally on
  :meth:`ColumnCodec.sync` and never invalidated. Table rows are filled
  **lazily**: :meth:`ColumnCodec.sync` only allocates, and consumers call
  :meth:`ColumnCodec.ensure` with the id columns they are about to index,
  so the Python-level term coercion runs once per *distinct id a query
  actually touches* — not once per dictionary entry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.rdf.graph import Graph
from repro.rdf.term import Literal, Term
from repro.sparql.functions import (
    EvaluationError,
    _numeric,
    effective_boolean_value,
)
from repro.sparql.vector.batch import UNBOUND


class TermEncoder:
    """Term <-> id mapping for one query execution.

    The graph never mutates during an evaluation, so ``graph.term_count`` is
    a stable base: ids below it decode through the graph dictionary, ids at
    or above it through the local overflow table.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.base = graph.term_count
        self._local_ids: Dict[Term, int] = {}
        self._local_terms: List[Term] = []

    def encode(self, term: Term) -> int:
        term_id = self.graph.term_id(term)
        if term_id is not None:
            return term_id
        local = self._local_ids.get(term)
        if local is None:
            local = self.base + len(self._local_terms)
            self._local_ids[term] = local
            self._local_terms.append(term)
        return local

    def decode(self, term_id: int) -> Term:
        if term_id < self.base:
            return self.graph.term_for_id(term_id)
        return self._local_terms[term_id - self.base]

    def decode_column(self, ids: np.ndarray) -> List[Optional[Term]]:
        """Python-side decode of a column; UNBOUND rows decode to None."""
        base = self.base
        lookup = self.graph.term_for_id
        local = self._local_terms
        out: List[Optional[Term]] = []
        append = out.append
        # ids.tolist() iterates native ints — much faster than numpy scalars.
        for i in ids.tolist():
            if i == UNBOUND:
                append(None)
            elif i < base:
                append(lookup(i))
            else:
                append(local[i - base])
        return out


def _strict_number(term: Term):
    """The number ordered comparison sees for a term, or None.

    Mirrors :func:`repro.sparql.functions._comparable`: only typed literals
    whose ``to_python`` is an int/float/bool are numerically comparable —
    a plain ``"5"`` stays a string and must take the generic path.
    """
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
    return None


class ColumnCodec:
    """Id-indexed decode tables over a graph's (append-only) term dictionary."""

    def __init__(self, graph: Graph):
        self.graph = graph
        self.size = 0
        empty_f = np.empty(0, dtype=np.float64)
        empty_b = np.empty(0, dtype=bool)
        self.cmp_values = empty_f   # strict numeric view (ordered comparison)
        self.cmp_valid = empty_b
        self.arith_values = empty_f  # lenient numeric view (_numeric coercion)
        self.arith_valid = empty_b
        self.arith_is_int = empty_b
        self.ebv_values = empty_b    # effective boolean value
        self.ebv_valid = empty_b
        self.computed = empty_b      # rows filled in by ensure()

    def sync(self) -> None:
        """Extend the tables to cover every id the graph has assigned.

        Allocation only — new rows start uncomputed and are filled by
        :meth:`ensure` when a consumer first indexes them.
        """
        count = self.graph.term_count
        if count <= self.size:
            return
        new = count - self.size
        grow_f = np.zeros(new, dtype=np.float64)
        grow_b = np.zeros(new, dtype=bool)
        self.cmp_values = np.concatenate([self.cmp_values, grow_f])
        self.cmp_valid = np.concatenate([self.cmp_valid, grow_b])
        self.arith_values = np.concatenate([self.arith_values, grow_f])
        self.arith_valid = np.concatenate([self.arith_valid, grow_b])
        self.arith_is_int = np.concatenate([self.arith_is_int, grow_b])
        self.ebv_values = np.concatenate([self.ebv_values, grow_b])
        self.ebv_valid = np.concatenate([self.ebv_valid, grow_b])
        self.computed = np.concatenate([self.computed, grow_b])
        self.size = count

    def ensure(self, ids: np.ndarray) -> None:
        """Fill table rows for the given in-range ids (idempotent).

        The Python-level coercions run once per distinct uncomputed id, so
        a filter over a 100k-row column whose values draw from a few
        thousand literals costs a few thousand coercions, not 100k.
        """
        if len(ids) == 0:
            return
        pending = ids[~self.computed[ids]]
        if len(pending) == 0:
            return
        term_for_id = self.graph.term_for_id
        for term_id in map(int, np.unique(pending)):
            term = term_for_id(term_id)
            strict = _strict_number(term)
            if strict is not None:
                self.cmp_values[term_id] = strict
                self.cmp_valid[term_id] = True
            try:
                value = _numeric(term)
            except EvaluationError:
                pass
            else:
                self.arith_values[term_id] = value
                self.arith_valid[term_id] = True
                self.arith_is_int[term_id] = isinstance(
                    value, int
                ) and not isinstance(value, bool)
            try:
                ebv = effective_boolean_value(term)
            except EvaluationError:
                pass
            else:
                self.ebv_values[term_id] = ebv
                self.ebv_valid[term_id] = True
            self.computed[term_id] = True
