"""Columnar (vectorized) SPARQL execution engine — E22.

Selected per query via ``CompileOptions(engine="vector")``; see
:mod:`repro.sparql.vector.engine` for the execution model and the
per-operator fallback rules that keep its semantics identical to the
interpreted evaluator.
"""

from repro.sparql.vector.batch import UNBOUND, Batch
from repro.sparql.vector.cost import (
    apply_cost_order,
    estimated_rows,
    free_expression_variables,
    optional_blind_variables,
    order_patterns_by_cost,
    pattern_extent,
)
from repro.sparql.vector.dictionary import ColumnCodec, TermEncoder
from repro.sparql.vector.engine import (
    compile_vector_plan,
    evaluate_vector_query,
    execute_tree,
    finish_select,
)
from repro.sparql.vector.ops import distinct_rows, hash_join, scan_batch

__all__ = [
    "UNBOUND",
    "Batch",
    "ColumnCodec",
    "TermEncoder",
    "apply_cost_order",
    "compile_vector_plan",
    "distinct_rows",
    "estimated_rows",
    "evaluate_vector_query",
    "execute_tree",
    "finish_select",
    "free_expression_variables",
    "hash_join",
    "optional_blind_variables",
    "order_patterns_by_cost",
    "pattern_extent",
    "scan_batch",
]
