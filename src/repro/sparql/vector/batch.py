"""Columnar solution batches.

A :class:`Batch` is the vector engine's unit of data flow: a set of solutions
represented as one ``int64`` numpy array of term ids per variable, instead of
one ``{Variable: Term}`` dict per solution. The sentinel :data:`UNBOUND`
(``-1``) marks rows where a variable carries no binding — the columnar
equivalent of the variable being absent from the solution dict (OPTIONAL
misses, ``VALUES`` UNDEF cells, errored BINDs).

Term ids come from the owning :class:`~repro.rdf.graph.Graph`'s append-only
term dictionary, extended per-execution with ephemeral ids for terms a query
computes itself (see :mod:`repro.sparql.vector.dictionary`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.sparql.ast import Variable

#: Column sentinel for "this variable is not bound in this row".
UNBOUND = -1

_EMPTY_IDS = np.empty(0, dtype=np.int64)


class Batch:
    """A block of solutions: one int64 id-column per (possibly) bound variable."""

    __slots__ = ("columns", "nrows")

    def __init__(self, columns: Dict[Variable, np.ndarray], nrows: int):
        self.columns = columns
        self.nrows = nrows

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def unit() -> "Batch":
        """The single empty solution (join identity): one row, no columns."""
        return Batch({}, 1)

    @staticmethod
    def empty(variables: Iterable[Variable] = ()) -> "Batch":
        """Zero solutions over the given column set."""
        return Batch({v: _EMPTY_IDS for v in variables}, 0)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def column(self, variable: Variable) -> np.ndarray:
        """The id column for *variable*; all-UNBOUND if it has no column."""
        col = self.columns.get(variable)
        if col is None:
            return np.full(self.nrows, UNBOUND, dtype=np.int64)
        return col

    def variables(self) -> List[Variable]:
        return list(self.columns)

    # ------------------------------------------------------------------
    # Row operations
    # ------------------------------------------------------------------

    def take(self, indices: np.ndarray) -> "Batch":
        """Row subset/reorder by integer indices (numpy fancy indexing)."""
        return Batch(
            {v: col[indices] for v, col in self.columns.items()}, len(indices)
        )

    def mask(self, keep: np.ndarray) -> "Batch":
        """Row subset by boolean mask."""
        return Batch(
            {v: col[keep] for v, col in self.columns.items()},
            int(np.count_nonzero(keep)),
        )

    def slice(self, offset: int, limit) -> "Batch":
        stop = None if limit is None else offset + limit
        window = slice(offset, stop)
        nrows = len(range(*window.indices(self.nrows)))
        return Batch({v: col[window] for v, col in self.columns.items()}, nrows)

    def select(self, variables: Sequence[Variable]) -> "Batch":
        """Keep only the given columns (projection)."""
        return Batch(
            {v: self.columns[v] for v in variables if v in self.columns},
            self.nrows,
        )

    def with_column(self, variable: Variable, column: np.ndarray) -> "Batch":
        columns = dict(self.columns)
        columns[variable] = column
        return Batch(columns, self.nrows)

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------

    @staticmethod
    def concat(batches: Sequence["Batch"]) -> "Batch":
        """Stack batches, aligning columns; missing columns fill UNBOUND."""
        batches = [b for b in batches]
        if not batches:
            return Batch.empty()
        variables: List[Variable] = []
        for batch in batches:
            for variable in batch.columns:
                if variable not in variables:
                    variables.append(variable)
        nrows = sum(b.nrows for b in batches)
        columns = {
            v: np.concatenate([b.column(v) for b in batches]) if nrows else _EMPTY_IDS
            for v in variables
        }
        return Batch(columns, nrows)

    def key_matrix(self, variables: Sequence[Variable]) -> np.ndarray:
        """Rows-by-variables id matrix (used for joins, DISTINCT, grouping)."""
        if not variables:
            return np.empty((self.nrows, 0), dtype=np.int64)
        return np.column_stack([self.column(v) for v in variables])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(f"?{v.name}" for v in self.columns)
        return f"Batch({self.nrows} rows; [{names}])"
