"""Columnar physical operators: scans, hash joins, union, distinct.

Joins are vectorized hash joins over term-id columns. SPARQL solution
compatibility must tolerate *unbound* cells (OPTIONAL misses, VALUES UNDEF):
two rows are compatible on a shared variable when either side is unbound or
both ids are equal. The join therefore partitions each side by its
bound-mask over the shared variables (one bitmask per row — in practice one
or two distinct masks) and runs a plain equi-join per mask pair on the
columns both sides actually bind; surviving unbound cells take the other
side's value.

The equi-join itself packs the key columns into a single ``int64`` (mixed
radix over the id range) and uses a sort + ``searchsorted`` probe, so the
whole pipeline stays inside numpy. If packing would overflow 63 bits (it
cannot for realistic dictionaries), a Python dict join takes over.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING
from weakref import WeakKeyDictionary

import numpy as np

from repro.rdf.graph import Graph
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.vector.batch import UNBOUND, Batch
from repro.sparql.vector.dictionary import TermEncoder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparql.governor import QueryBudget


# ---------------------------------------------------------------------------
# Scans
# ---------------------------------------------------------------------------

#: Per-graph numpy snapshot of Graph.id_columns(), keyed on graph version.
_TABLES: "WeakKeyDictionary[Graph, Tuple[int, Tuple[np.ndarray, ...]]]" = (
    WeakKeyDictionary()
)


def _id_table(graph: Graph) -> Tuple[np.ndarray, ...]:
    """The graph's id-row table as int64 arrays (cached per version)."""
    entry = _TABLES.get(graph)
    if entry is None or entry[0] != graph.version:
        # array('q') exposes the buffer protocol: the snapshot is a memcpy.
        arrays = tuple(
            np.frombuffer(column, dtype=np.int64).copy()
            if len(column)
            else np.empty(0, dtype=np.int64)
            for column in graph.id_columns()
        )
        entry = (graph.version, arrays)
        _TABLES[graph] = entry
    return entry[1]


def scan_batch(
    graph: Graph, encoder: TermEncoder, pattern: TriplePattern
) -> Batch:
    """Materialize the full extent of a triple pattern as id columns.

    Bound positions become equality masks over the graph's id-row table —
    pure numpy, no per-triple Python iteration. Row order is whatever the
    table holds (scans feed multiset operators; ORDER BY sorts later).
    """
    positions = (pattern.subject, pattern.predicate, pattern.object)
    constant_ids: List[Optional[int]] = []
    for position in positions:
        if isinstance(position, Variable):
            constant_ids.append(None)
            continue
        term_id = graph.term_id(position)
        if term_id is None:
            # A constant the graph never interned cannot match anything.
            return Batch.empty(pattern.variables())
        constant_ids.append(term_id)

    var_slots: List[Tuple[int, Variable]] = [
        (i, p) for i, p in enumerate(positions) if isinstance(p, Variable)
    ]
    if not var_slots:
        query = tuple(positions)
        matched = any(True for _ in graph.triples(query))  # type: ignore[arg-type]
        return Batch.unit() if matched else Batch.empty()

    table = _id_table(graph)
    mask: Optional[np.ndarray] = None
    for slot, constant_id in enumerate(constant_ids):
        if constant_id is None:
            continue
        hits = table[slot] == constant_id
        mask = hits if mask is None else (mask & hits)
    rows = None if mask is None else np.flatnonzero(mask)

    columns = {}
    keep: Optional[np.ndarray] = None
    for slot, variable in var_slots:
        column = table[slot] if rows is None else table[slot][rows]
        if variable in columns:
            # Repeated variable in one pattern (?x :p ?x): keep equal rows.
            equal = columns[variable] == column
            keep = equal if keep is None else keep & equal
        else:
            columns[variable] = column
    nrows = len(table[0]) if rows is None else len(rows)
    batch = Batch(columns, nrows)
    if keep is not None:
        batch = batch.mask(keep)
    return batch


# ---------------------------------------------------------------------------
# Equi-join core
# ---------------------------------------------------------------------------

def _pack_keys(
    left: np.ndarray, right: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Pack (n, k) id matrices into single int64 keys; None on overflow."""
    k = left.shape[1]
    if k == 1:
        return left[:, 0], right[:, 0]
    high = 0
    for column in range(k):
        top = 0
        if len(left):
            top = max(top, int(left[:, column].max()))
        if len(right):
            top = max(top, int(right[:, column].max()))
        high = max(high, top)
    radix = high + 2  # ids are >= 0 here; +2 keeps radix >= 2
    if radix**k >= 2**62:
        return None
    lkeys = np.zeros(len(left), dtype=np.int64)
    rkeys = np.zeros(len(right), dtype=np.int64)
    for column in range(k):
        lkeys = lkeys * radix + left[:, column]
        rkeys = rkeys * radix + right[:, column]
    return lkeys, rkeys


def _equi_join_pairs(
    lkeys_matrix: np.ndarray,
    rkeys_matrix: np.ndarray,
    budget: Optional["QueryBudget"] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """All (left_row, right_row) index pairs with equal key rows.

    With a *budget*, the output size is admitted **before** the pair arrays
    are allocated — the exact point where an adversarial cross-product
    would otherwise blow up memory — so a cap violation raises
    :class:`~repro.errors.QueryBudgetExceeded` while the only cost paid so
    far is the counts vector.
    """
    ln, rn = len(lkeys_matrix), len(rkeys_matrix)
    if ln == 0 or rn == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if lkeys_matrix.shape[1] == 0:  # no key columns: cartesian product
        if budget is not None:
            budget.admit_rows(ln * rn, 2, "hash_join.cartesian")
        return (
            np.repeat(np.arange(ln, dtype=np.int64), rn),
            np.tile(np.arange(rn, dtype=np.int64), ln),
        )
    packed = _pack_keys(lkeys_matrix, rkeys_matrix)
    if packed is None:  # pragma: no cover - needs absurd dictionary sizes
        return _dict_join_pairs(lkeys_matrix, rkeys_matrix, budget)
    lkeys, rkeys = packed
    order = np.argsort(rkeys, kind="stable")
    sorted_rkeys = rkeys[order]
    lo = np.searchsorted(sorted_rkeys, lkeys, side="left")
    hi = np.searchsorted(sorted_rkeys, lkeys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if budget is not None:
        budget.admit_rows(total, 2, "hash_join.pairs")
    li = np.repeat(np.arange(ln, dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    # Within-match offsets: 0..count-1 per left row, built from one cumsum.
    boundaries = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - boundaries
    ri = order[starts + within]
    return li, ri


def _dict_join_pairs(
    lkeys_matrix: np.ndarray,
    rkeys_matrix: np.ndarray,
    budget: Optional["QueryBudget"] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fallback pair enumeration through a Python dict (overflow-safe)."""
    buckets = {}
    for index, row in enumerate(map(tuple, rkeys_matrix)):
        buckets.setdefault(row, []).append(index)
    li: List[int] = []
    ri: List[int] = []
    for index, row in enumerate(map(tuple, lkeys_matrix)):
        if budget is not None:
            budget.checkpoint("hash_join.probe")
        for match in buckets.get(row, ()):
            li.append(index)
            ri.append(match)
        if budget is not None:
            budget.admit_rows(len(li), 2, "hash_join.probe")
    return np.array(li, dtype=np.int64), np.array(ri, dtype=np.int64)


# ---------------------------------------------------------------------------
# Solution-compatibility hash join
# ---------------------------------------------------------------------------

def hash_join(
    left: Batch,
    right: Batch,
    outer: bool = False,
    budget: Optional["QueryBudget"] = None,
) -> Batch:
    """Join two batches on their shared variables (inner or left-outer).

    With a *budget*: one checkpoint per (left mask, right mask) equi-join —
    the build/probe loop — and the accumulated match count is admitted
    against the resident-row cap as it grows, with the per-sub-join output
    pre-admitted before its pair arrays are allocated.
    """
    shared = [v for v in left.columns if v in right.columns]
    out_vars = list(left.columns) + [
        v for v in right.columns if v not in left.columns
    ]
    if left.nrows == 0:
        return Batch.empty(out_vars)
    if right.nrows == 0:
        if not outer:
            return Batch.empty(out_vars)
        li = np.arange(left.nrows, dtype=np.int64)
        return _assemble(left, right, li, None, out_vars, shared)

    left_keys = left.key_matrix(shared)
    right_keys = right.key_matrix(shared)
    left_bound = left_keys != UNBOUND
    right_bound = right_keys != UNBOUND

    left_masks = _mask_codes(left_bound)
    right_masks = _mask_codes(right_bound)
    li_parts: List[np.ndarray] = []
    ri_parts: List[np.ndarray] = []
    matched_rows = 0
    for lcode in np.unique(left_masks):
        lrows = np.nonzero(left_masks == lcode)[0]
        lbits = left_bound[lrows[0]]
        for rcode in np.unique(right_masks):
            if budget is not None:
                budget.checkpoint("hash_join")
            rrows = np.nonzero(right_masks == rcode)[0]
            rbits = right_bound[rrows[0]]
            key_columns = np.nonzero(lbits & rbits)[0]
            li_sub, ri_sub = _equi_join_pairs(
                left_keys[np.ix_(lrows, key_columns)],
                right_keys[np.ix_(rrows, key_columns)],
                budget,
            )
            if len(li_sub):
                li_parts.append(lrows[li_sub])
                ri_parts.append(rrows[ri_sub])
                matched_rows += len(li_sub)
                if budget is not None:
                    budget.admit_rows(
                        matched_rows, max(1, len(out_vars)), "hash_join"
                    )
    if li_parts:
        li = np.concatenate(li_parts)
        ri = np.concatenate(ri_parts)
    else:
        li = np.empty(0, dtype=np.int64)
        ri = np.empty(0, dtype=np.int64)

    joined = _assemble(left, right, li, ri, out_vars, shared)
    if not outer:
        return joined
    matched = np.zeros(left.nrows, dtype=bool)
    matched[li] = True
    if matched.all():
        return joined
    rest = np.nonzero(~matched)[0]
    bare = _assemble(left, right, rest, None, out_vars, shared)
    return Batch.concat([joined, bare])


def _mask_codes(bound: np.ndarray) -> np.ndarray:
    """Per-row bitmask codes over the shared-variable bound flags."""
    if bound.shape[1] == 0:
        return np.zeros(len(bound), dtype=np.int64)
    weights = (1 << np.arange(bound.shape[1], dtype=np.int64))
    return bound.astype(np.int64) @ weights


def _assemble(
    left: Batch,
    right: Batch,
    li: np.ndarray,
    ri: Optional[np.ndarray],
    out_vars: Sequence[Variable],
    shared: Sequence[Variable],
) -> Batch:
    """Build the output batch from matched row-index pairs.

    ``ri is None`` means "no right match" (outer-join padding): right-only
    columns fill UNBOUND and shared columns keep the left value.
    """
    shared_set = set(shared)
    columns = {}
    for variable in out_vars:
        if variable in left.columns:
            values = left.columns[variable][li]
            if ri is not None and variable in shared_set:
                right_values = right.columns[variable][ri]
                values = np.where(values != UNBOUND, values, right_values)
            columns[variable] = values
        elif ri is not None:
            columns[variable] = right.columns[variable][ri]
        else:
            columns[variable] = np.full(len(li), UNBOUND, dtype=np.int64)
    return Batch(columns, len(li))


# ---------------------------------------------------------------------------
# Distinct
# ---------------------------------------------------------------------------

def distinct_rows(batch: Batch) -> Batch:
    """Drop duplicate rows, keeping the first occurrence of each."""
    if batch.nrows == 0 or not batch.columns:
        return batch.slice(0, 1) if batch.nrows else batch
    matrix = batch.key_matrix(list(batch.columns))
    _, first = np.unique(matrix, axis=0, return_index=True)
    return batch.take(np.sort(first))
