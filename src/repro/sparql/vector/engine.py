"""The columnar executor: algebra tree -> batches -> solutions.

Executes the same :mod:`repro.sparql.algebra` operator tree the interpreted
evaluator runs, but bottom-up over :class:`~repro.sparql.vector.batch.Batch`
columns: scans materialize id arrays, joins are vectorized hash joins,
FILTER/BIND run through :mod:`repro.sparql.vector.expr`, and DISTINCT /
ORDER BY / slicing happen on arrays before terms are ever decoded.

Per-operator fallback keeps semantics exact where vectorization cannot:

* operators with an ``evaluate_custom`` hook (the GeoStore's spatial
  candidate scan) and unknown operator types run through the interpreted
  ``_op_iter`` and are re-encoded into a batch;
* a join whose right side carries *free expression variables* that the left
  side binds (OPTIONAL/FILTER correlation, where substitution semantics
  differ from bottom-up evaluation) falls back to correlated interpreted
  evaluation of the right side, row by row.

Aggregation groups on id columns (``np.unique``) with vectorized COUNT /
SUM / AVG / COUNT(DISTINCT *) fast paths; every other aggregate decodes the
group's members and reuses the interpreted, spec-fixed
``_apply_aggregate`` — so both engines share one aggregate semantics.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import SPARQLError
from repro.obs import Observability
from repro.rdf.graph import Graph
from repro.rdf.term import Term
from repro.sparql.algebra import (
    AlgebraOp,
    CompileOptions,
    EmptyOp,
    ExtendOp,
    FilterOp,
    JoinOp,
    LeftJoinOp,
    ScanOp,
    TableOp,
    UnionOp,
    compile_group,
    operator_variables,
)
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    SelectQuery,
    Variable,
    VarExpr,
)
from repro.sparql.functions import EvaluationError, to_term
from repro.sparql.vector.batch import UNBOUND, Batch
from repro.sparql.vector.cost import (
    apply_cost_order,
    free_expression_variables,
    optional_blind_variables,
)
from repro.sparql.vector.dictionary import ColumnCodec, TermEncoder
from repro.sparql.vector.expr import ExprContext, bind_column, filter_keep_mask
from repro.sparql.vector.ops import distinct_rows, hash_join, scan_batch

Bindings = Dict[Variable, Term]

#: One codec per graph, shared across executions; decode tables are
#: append-only (the term dictionary never recycles ids) so they survive
#: graph mutations and only ever extend.
_CODECS: "weakref.WeakKeyDictionary[Graph, ColumnCodec]" = (
    weakref.WeakKeyDictionary()
)


def _codec_for(graph: Graph) -> ColumnCodec:
    codec = _CODECS.get(graph)
    if codec is None:
        codec = ColumnCodec(graph)
        _CODECS[graph] = codec
    codec.sync()
    return codec


def compile_vector_plan(
    where, graph: Graph, options: Optional[CompileOptions]
) -> AlgebraOp:
    """Compile a WHERE group into a cost-ordered tree for vector execution."""
    options = options or CompileOptions()
    tree = compile_group(where, graph, options)
    if options.reorder_patterns:
        tree = apply_cost_order(tree, graph)
    return tree


class _Exec:
    """Per-execution state: encoder, codec, registry, observability, budget."""

    def __init__(
        self,
        graph: Graph,
        registry,
        obs: Optional[Observability],
        budget=None,
    ):
        self.graph = graph
        self.registry = registry
        self.encoder = TermEncoder(graph)
        self.codec = _codec_for(graph)
        self.obs = obs if obs is not None and obs.enabled else None
        self.budget = budget
        self.fallback_ops = 0

    def expr_ctx(self) -> ExprContext:
        return ExprContext(self.encoder, self.codec, self.registry)

    def note_fallback(self, op: AlgebraOp) -> None:
        self.fallback_ops += 1
        if self.obs is not None:
            self.obs.metrics.counter(
                "sparql.vector.fallback_ops", op=type(op).__name__
            ).inc()


# ---------------------------------------------------------------------------
# Operator execution
# ---------------------------------------------------------------------------

def _encode_solutions(
    solutions: List[Bindings], variables, ctx: _Exec
) -> Batch:
    encode = ctx.encoder.encode
    variables = list(variables)
    nrows = len(solutions)
    columns = {}
    for variable in variables:
        columns[variable] = np.fromiter(
            (
                encode(sol[variable]) if variable in sol else UNBOUND
                for sol in solutions
            ),
            dtype=np.int64,
            count=nrows,
        )
    return Batch(columns, nrows)


def _fallback_batch(op: AlgebraOp, ctx: _Exec) -> Batch:
    """Run an operator through the interpreted iterator, re-encode columns.

    Routed through ``_evaluate_op`` so a budget's per-solution checkpoints
    (the interpreted engine's own governance) apply inside the fallback —
    identical to the old ``_op_iter`` path when no budget is set.
    """
    from repro.sparql.evaluator import _evaluate_op

    ctx.note_fallback(op)
    solutions = list(
        _evaluate_op(op, ctx.graph, {}, ctx.registry, None, ctx.budget)
    )
    return _encode_solutions(solutions, operator_variables(op), ctx)


def _correlated_join(
    right: AlgebraOp, left_batch: Batch, ctx: _Exec, outer: bool
) -> Batch:
    """Interpreted right side, evaluated once per left row (substitution
    semantics) — the exact nested-loop the interpreted engine runs."""
    from repro.sparql.evaluator import _evaluate_op

    ctx.note_fallback(right)
    budget = ctx.budget
    decoded = {
        v: ctx.encoder.decode_column(col)
        for v, col in left_batch.columns.items()
    }
    width = max(
        1,
        len(left_batch.columns)
        + len(operator_variables(right) - set(left_batch.columns)),
    )
    out: List[Bindings] = []
    for row in range(left_batch.nrows):
        if budget is not None:
            budget.checkpoint("CorrelatedJoin")
        bindings = {}
        for variable, terms in decoded.items():
            term = terms[row]
            if term is not None:
                bindings[variable] = term
        matched = False
        for solution in _evaluate_op(
            right, ctx.graph, bindings, ctx.registry, None, budget
        ):
            matched = True
            out.append(solution)
        if outer and not matched:
            out.append(bindings)
        if budget is not None:
            budget.admit_rows(len(out), width, "CorrelatedJoin")
    variables = list(left_batch.columns) + [
        v
        for v in operator_variables(right)
        if v not in left_batch.columns
    ]
    return _encode_solutions(out, variables, ctx)


def _execute(op: AlgebraOp, ctx: _Exec) -> Batch:
    """Run one operator, with E23 governance when a budget rides along.

    The checkpoint fires *before* the operator runs (cancellation and
    deadlines are honoured between operators); the output batch is charged
    as resident state after releasing the children's share — inputs are
    garbage once the output exists, but the peak counters capture the
    moment both were live.
    """
    budget = ctx.budget
    if budget is None:
        return _execute_op(op, ctx)
    op_name = type(op).__name__
    budget.checkpoint(op_name)
    mark = budget.mark()
    batch = _execute_op(op, ctx)
    budget.release_to(mark)
    budget.charge_rows(batch.nrows, max(1, len(batch.columns)), op_name)
    return batch


def _execute_op(op: AlgebraOp, ctx: _Exec) -> Batch:
    custom = getattr(op, "evaluate_custom", None)
    if custom is not None:
        ctx.note_fallback(op)
        solutions = list(custom(ctx.graph, {}, ctx.registry))
        return _encode_solutions(solutions, operator_variables(op), ctx)
    if isinstance(op, EmptyOp):
        return Batch.unit()
    if isinstance(op, ScanOp):
        return scan_batch(ctx.graph, ctx.encoder, op.pattern)
    if isinstance(op, (JoinOp, LeftJoinOp)):
        outer = isinstance(op, LeftJoinOp)
        left = _execute(op.left, ctx)
        sensitive = free_expression_variables(op.right) | optional_blind_variables(
            op.right
        )
        if sensitive & operator_variables(op.left):
            return _correlated_join(op.right, left, ctx, outer)
        right = _execute(op.right, ctx)
        return hash_join(left, right, outer=outer, budget=ctx.budget)
    if isinstance(op, UnionOp):
        return Batch.concat([_execute(operand, ctx) for operand in op.operands])
    if isinstance(op, FilterOp):
        batch = _execute(op.operand, ctx)
        if batch.nrows == 0:
            return batch
        keep = filter_keep_mask(op.expression, batch, ctx.expr_ctx())
        return batch.mask(keep)
    if isinstance(op, ExtendOp):
        batch = _execute(op.operand, ctx)
        existing = batch.columns.get(op.variable)
        if existing is not None and (existing != UNBOUND).any():
            raise SPARQLError(
                f"BIND would rebind already-bound variable {op.variable}"
            )
        if batch.nrows == 0:
            return batch.with_column(
                op.variable, np.empty(0, dtype=np.int64)
            )
        column = bind_column(op.expression, batch, ctx.expr_ctx())
        return batch.with_column(op.variable, column)
    if isinstance(op, TableOp):
        encode = ctx.encoder.encode
        columns = {}
        for index, variable in enumerate(op.variables):
            columns[variable] = np.fromiter(
                (
                    UNBOUND if row[index] is None else encode(row[index])
                    for row in op.rows
                ),
                dtype=np.int64,
                count=len(op.rows),
            )
        return Batch(columns, len(op.rows))
    return _fallback_batch(op, ctx)


# ---------------------------------------------------------------------------
# Solution modifiers on arrays
# ---------------------------------------------------------------------------

def _batch_solutions(batch: Batch, ctx: _Exec) -> List[Bindings]:
    decoded = {
        v: ctx.encoder.decode_column(col) for v, col in batch.columns.items()
    }
    solutions: List[Bindings] = []
    for row in range(batch.nrows):
        solution: Bindings = {}
        for variable, terms in decoded.items():
            term = terms[row]
            if term is not None:
                solution[variable] = term
        solutions.append(solution)
    return solutions


def _order_indices(
    query: SelectQuery, batch: Batch, ctx: _Exec
) -> np.ndarray:
    """Stable multi-condition sort on arrays; mirrors the interpreted
    reversed-stable-sorts pipeline (including the unbound-first rank)."""
    from repro.sparql.evaluator import _order_key

    indices = np.arange(batch.nrows, dtype=np.int64)
    lazy_solutions: Optional[List[Bindings]] = None
    for condition in reversed(query.order_by):
        fast = None
        if isinstance(condition.expression, VarExpr):
            ids = batch.column(condition.expression.variable)
            codec = ctx.codec
            in_range = (ids >= 0) & (ids < codec.size)
            codec.ensure(ids[in_range])
            numeric = np.zeros(len(ids), dtype=bool)
            numeric[in_range] = codec.cmp_valid[ids[in_range]]
            # Vector path only when every row is unbound or numeric; strings
            # and exotic terms take the python _order_key path.
            if bool(((ids == UNBOUND) | numeric).all()):
                rank = numeric.astype(np.float64)  # unbound=0, numeric=1
                value = np.zeros(len(ids), dtype=np.float64)
                value[numeric] = codec.cmp_values[ids[numeric]]
                fast = (rank, value)
        if fast is not None:
            rank, value = fast
            if condition.descending:
                order = np.lexsort((-value[indices], -rank[indices]))
            else:
                order = np.lexsort((value[indices], rank[indices]))
            indices = indices[order]
        else:
            if lazy_solutions is None:
                lazy_solutions = _batch_solutions(batch, ctx)
            keys = [
                _order_key(
                    condition.expression, lazy_solutions[i], ctx.registry
                )
                for i in range(batch.nrows)
            ]
            indices = np.array(
                sorted(indices, key=lambda i: keys[i], reverse=condition.descending),
                dtype=np.int64,
            )
    return indices


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _group_structure(query: SelectQuery, batch: Batch):
    """(group key rows or None, inverse group index per row, ngroups)."""
    if query.group_by:
        keys = batch.key_matrix(query.group_by)
        if batch.nrows == 0:
            return None, np.empty(0, dtype=np.int64), 0
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        return uniq, inverse.astype(np.int64), len(uniq)
    # No GROUP BY: one group, even over zero solutions.
    return None, np.zeros(batch.nrows, dtype=np.int64), 1


def _fast_aggregate(
    aggregate: Aggregate,
    batch: Batch,
    inverse: np.ndarray,
    ngroups: int,
    ctx: _Exec,
):
    """Vectorized COUNT/SUM/AVG paths; None when the shape isn't covered.

    Returns a list of per-group python values, with EvaluationError sentinels
    represented as the ``_AGG_ERROR`` marker.
    """
    if aggregate.argument is None:
        if aggregate.function != "COUNT":
            return None
        if aggregate.distinct:  # COUNT(DISTINCT *): distinct full rows
            matrix = np.column_stack(
                [inverse]
                + [batch.column(v) for v in batch.columns]
            )
            uniq = np.unique(matrix, axis=0)
            counts = np.bincount(uniq[:, 0], minlength=ngroups)
            return [int(c) for c in counts]
        counts = np.bincount(inverse, minlength=ngroups)
        return [int(c) for c in counts]
    if aggregate.distinct or not isinstance(aggregate.argument, VarExpr):
        return None
    ids = batch.column(aggregate.argument.variable)
    bound = ids != UNBOUND
    if aggregate.function == "COUNT":
        counts = np.bincount(inverse, weights=bound, minlength=ngroups)
        return [int(c) for c in counts]
    if aggregate.function not in ("SUM", "AVG"):
        return None
    codec = ctx.codec
    in_range = (ids >= 0) & (ids < codec.size)
    if not bool((bound == in_range).all()):
        return None  # overflow ids: generic path
    values = np.zeros(len(ids), dtype=np.float64)
    valid = np.zeros(len(ids), dtype=bool)
    is_int = np.zeros(len(ids), dtype=bool)
    codec.ensure(ids[in_range])
    values[in_range] = codec.arith_values[ids[in_range]]
    valid[in_range] = codec.arith_valid[ids[in_range]]
    is_int[in_range] = codec.arith_is_int[ids[in_range]]
    poisoned = np.bincount(inverse, weights=bound & ~valid, minlength=ngroups)
    totals = np.bincount(
        inverse, weights=np.where(valid, values, 0.0), minlength=ngroups
    )
    counts = np.bincount(inverse, weights=valid, minlength=ngroups)
    floats = np.bincount(
        inverse, weights=valid & ~is_int, minlength=ngroups
    )
    results = []
    for group in range(ngroups):
        if poisoned[group]:
            results.append(_AGG_ERROR)  # non-numeric value: aggregate errors
        elif aggregate.function == "SUM":
            if counts[group] == 0:
                results.append(0)  # Sum({}) = 0
            elif floats[group] == 0:
                results.append(int(round(totals[group])))
            else:
                results.append(float(totals[group]))
        else:  # AVG
            if counts[group] == 0:
                results.append(0)  # Avg({}) = 0
            else:
                results.append(float(totals[group] / counts[group]))
    return results


_AGG_ERROR = object()


def _aggregate_vector(
    query: SelectQuery, batch: Batch, ctx: _Exec
) -> List[Bindings]:
    from repro.sparql.evaluator import _apply_aggregate

    uniq, inverse, ngroups = _group_structure(query, batch)
    if ngroups == 0:
        return []

    # Fast paths first; remember which aggregates still need members.
    per_aggregate: Dict[int, list] = {}
    need_members = []
    for position, aggregate in enumerate(query.aggregates):
        fast = _fast_aggregate(aggregate, batch, inverse, ngroups, ctx)
        if fast is not None:
            per_aggregate[position] = fast
        else:
            need_members.append(position)

    members_by_group: Optional[List[List[Bindings]]] = None
    if need_members:
        solutions = _batch_solutions(batch, ctx)
        members_by_group = [[] for _ in range(ngroups)]
        for row, group in enumerate(inverse):
            members_by_group[group].append(solutions[row])

    results: List[Bindings] = []
    budget = ctx.budget
    for group in range(ngroups):
        if budget is not None and group % 256 == 0:
            budget.checkpoint("Aggregate")
        row: Bindings = {}
        if uniq is not None:
            for index, variable in enumerate(query.group_by):
                term_id = int(uniq[group, index])
                if term_id != UNBOUND:
                    row[variable] = ctx.encoder.decode(term_id)
        for position, aggregate in enumerate(query.aggregates):
            if position in per_aggregate:
                value = per_aggregate[position][group]
                if value is _AGG_ERROR:
                    continue
                row[aggregate.alias] = to_term(value)
            else:
                assert members_by_group is not None
                try:
                    row[aggregate.alias] = to_term(
                        _apply_aggregate(
                            aggregate, members_by_group[group], ctx.registry
                        )
                    )
                except EvaluationError:
                    pass  # aggregate error: alias stays unbound
        results.append(row)
    return results


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def evaluate_vector_query(
    graph: Graph,
    query: Union[SelectQuery, AskQuery],
    registry,
    options: Optional[CompileOptions],
    obs: Optional[Observability] = None,
    cache=None,
    text: Optional[str] = None,
) -> Union[List[Bindings], bool]:
    """Evaluate a parsed query with the columnar engine.

    Semantics match the interpreted evaluator: same solution multisets, same
    modifier pipeline, same aggregate rules (shared code). Plans — including
    the cost-based join order, which is a pure function of the graph version
    — are memoised through the shared :class:`~repro.cache.PlanCache` for
    string queries.
    """
    if cache is not None and text is not None:
        tree = cache.plan(
            graph,
            text,
            options,
            graph.version,
            lambda: compile_vector_plan(query.where, graph, options),
        )
    else:
        tree = compile_vector_plan(query.where, graph, options)
    budget = options.budget if options is not None else None
    ctx = _Exec(graph, registry, obs, budget)
    batch = _execute(tree, ctx)
    if ctx.obs is not None:
        ctx.obs.metrics.counter("sparql.vector.result_rows").inc(batch.nrows)
    if isinstance(query, AskQuery):
        return batch.nrows > 0
    return finish_select(query, batch, ctx)


def execute_tree(
    tree: AlgebraOp,
    graph: Graph,
    registry,
    obs: Optional[Observability] = None,
    budget=None,
) -> "tuple[Batch, _Exec]":
    """Execute a pre-built operator tree (the GeoStore wiring entry)."""
    ctx = _Exec(graph, registry, obs, budget)
    return _execute(tree, ctx), ctx


def finish_select(
    query: SelectQuery, batch: Batch, ctx: _Exec
) -> List[Bindings]:
    """Aggregation and solution modifiers, on arrays, in the spec order."""
    from repro.sparql.evaluator import _distinct, _order_key

    if query.is_aggregate:
        # Aggregate output is one row per group — small; the remaining
        # modifiers run on decoded rows through the shared helpers.
        solutions = _aggregate_vector(query, batch, ctx)
        if query.order_by:
            for condition in reversed(query.order_by):
                solutions.sort(
                    key=lambda s, c=condition: _order_key(
                        c.expression, s, ctx.registry
                    ),
                    reverse=condition.descending,
                )
        if query.distinct:
            solutions = _distinct(solutions)
        if query.offset:
            solutions = solutions[query.offset:]
        if query.limit is not None:
            solutions = solutions[: query.limit]
        return solutions

    if query.order_by:
        batch = batch.take(_order_indices(query, batch, ctx))
    if query.variables:
        batch = batch.select(query.variables)
    if query.distinct:
        batch = distinct_rows(batch)
    if query.offset or query.limit is not None:
        batch = batch.slice(query.offset, query.limit)
    return _batch_solutions(batch, ctx)
