"""Batched expression evaluation with per-row error masks.

FILTER and BIND expressions are evaluated over whole batches. Hot shapes are
vectorized — ordered comparisons and equality between numeric columns,
arithmetic with int/float result-type tracking, and the three-valued
``&&``/``||``/``!`` logic — while everything else (string builtins, REGEX,
extension functions, lazy BOUND/IF/COALESCE) falls back to the interpreted
:func:`~repro.sparql.evaluator.evaluate_expression` *per row that needs it*,
so a partially-vectorizable filter still does most of its work in numpy.

Errors never raise: every column carries a boolean error mask, and the
SPARQL rules (error -> filter false, error -> BIND leaves unbound, Kleene
logic for &&/||) are applied mask-wise.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.rdf.term import Literal, XSD_DOUBLE, XSD_INTEGER
from repro.sparql.ast import (
    BinaryOp,
    Expression,
    TermExpr,
    UnaryOp,
    Variable,
    VarExpr,
)
from repro.sparql.functions import (
    EvaluationError,
    _numeric,
    effective_boolean_value,
)
from repro.sparql.vector.batch import UNBOUND, Batch
from repro.sparql.vector.dictionary import (
    ColumnCodec,
    TermEncoder,
    _strict_number,
)

_ORDERED = {"<": np.less, "<=": np.less_equal, ">": np.greater, ">=": np.greater_equal}
_ARITH = {"+", "-", "*", "/"}


class ExprContext:
    """Everything expression evaluation needs besides the batch itself."""

    def __init__(self, encoder: TermEncoder, codec: ColumnCodec, registry):
        self.encoder = encoder
        self.codec = codec
        self.registry = registry
        self._decoded: Dict[Variable, list] = {}

    def decoded(self, batch: Batch, variable: Variable) -> list:
        """Term list for a column, memoised per batch-evaluation pass."""
        terms = self._decoded.get(variable)
        if terms is None:
            terms = self.encoder.decode_column(batch.column(variable))
            self._decoded[variable] = terms
        return terms


class BoolCol:
    __slots__ = ("values", "err")

    def __init__(self, values: np.ndarray, err: np.ndarray):
        self.values = values
        self.err = err


class NumCol:
    """Numeric column: float64 values + int-ness + validity (valid = no error)."""

    __slots__ = ("values", "is_int", "valid")

    def __init__(self, values: np.ndarray, is_int: np.ndarray, valid: np.ndarray):
        self.values = values
        self.is_int = is_int
        self.valid = valid


# ---------------------------------------------------------------------------
# Per-row interpreted fallback
# ---------------------------------------------------------------------------

def _row_eval(
    expression: Expression,
    batch: Batch,
    ctx: ExprContext,
    rows: np.ndarray,
) -> Tuple[list, np.ndarray]:
    """Interpreted evaluation of *expression* for the given row indices.

    Returns (values aligned with ``rows``, error mask aligned with ``rows``).
    """
    from repro.sparql.algebra import expression_variables
    from repro.sparql.evaluator import evaluate_expression

    needed = [v for v in expression_variables(expression) if v in batch.columns]
    decoded = {v: ctx.decoded(batch, v) for v in needed}
    values: list = []
    err = np.zeros(len(rows), dtype=bool)
    for out, row in enumerate(rows):
        bindings = {}
        for variable, terms in decoded.items():
            term = terms[row]
            if term is not None:
                bindings[variable] = term
        try:
            values.append(evaluate_expression(expression, bindings, ctx.registry))
        except EvaluationError:
            values.append(None)
            err[out] = True
    return values, err


# ---------------------------------------------------------------------------
# Numeric views
# ---------------------------------------------------------------------------

def _num_from_var(
    batch: Batch, ctx: ExprContext, variable: Variable, lenient: bool
) -> NumCol:
    ids = batch.column(variable)
    n = len(ids)
    codec = ctx.codec
    values = np.zeros(n, dtype=np.float64)
    is_int = np.zeros(n, dtype=bool)
    valid = np.zeros(n, dtype=bool)
    in_range = (ids >= 0) & (ids < codec.size)
    if in_range.any():
        idx = ids[in_range]
        codec.ensure(idx)
        if lenient:
            values[in_range] = codec.arith_values[idx]
            is_int[in_range] = codec.arith_is_int[idx]
            valid[in_range] = codec.arith_valid[idx]
        else:
            values[in_range] = codec.cmp_values[idx]
            valid[in_range] = codec.cmp_valid[idx]
    overflow = ids >= codec.size
    if overflow.any():
        decode = ctx.encoder.decode
        for row in np.nonzero(overflow)[0]:
            term = decode(int(ids[row]))
            if lenient:
                try:
                    value = _numeric(term)
                except EvaluationError:
                    continue
                values[row] = value
                is_int[row] = isinstance(value, int) and not isinstance(value, bool)
                valid[row] = True
            else:
                strict = _strict_number(term)
                if strict is not None:
                    values[row] = strict
                    valid[row] = True
    return NumCol(values, is_int, valid)


def _num_const(n: int, value, lenient_ok: bool) -> NumCol:
    if value is None:
        zeros = np.zeros(n, dtype=np.float64)
        return NumCol(zeros, np.zeros(n, dtype=bool), np.zeros(n, dtype=bool))
    return NumCol(
        np.full(n, float(value), dtype=np.float64),
        np.full(n, isinstance(value, int) and not isinstance(value, bool), dtype=bool),
        np.ones(n, dtype=bool),
    )


def eval_num(
    expression: Expression, batch: Batch, ctx: ExprContext, lenient: bool = True
) -> NumCol:
    """Numeric view of an expression over the batch.

    ``lenient`` selects the coercion: arithmetic's ``_numeric`` (parses plain
    literals) vs ordered comparison's strict ``to_python`` view. Rows where
    the expression is not numeric under that coercion are ``~valid``.
    """
    n = batch.nrows
    if isinstance(expression, VarExpr):
        return _num_from_var(batch, ctx, expression.variable, lenient)
    if isinstance(expression, TermExpr):
        term = expression.term
        if lenient:
            try:
                value = _numeric(term)
            except EvaluationError:
                value = None
        else:
            value = _strict_number(term)
        return _num_const(n, value, lenient)
    if isinstance(expression, UnaryOp) and expression.operator == "-":
        inner = eval_num(expression.operand, batch, ctx, lenient=True)
        return NumCol(-inner.values, inner.is_int, inner.valid)
    if isinstance(expression, BinaryOp) and expression.operator in _ARITH:
        left = eval_num(expression.left, batch, ctx, lenient=True)
        right = eval_num(expression.right, batch, ctx, lenient=True)
        valid = left.valid & right.valid
        operator = expression.operator
        with np.errstate(divide="ignore", invalid="ignore"):
            if operator == "+":
                values = left.values + right.values
            elif operator == "-":
                values = left.values - right.values
            elif operator == "*":
                values = left.values * right.values
            else:
                valid = valid & (right.values != 0)
                values = np.where(
                    right.values != 0, left.values / np.where(right.values, right.values, 1), 0.0
                )
        is_int = left.is_int & right.is_int & (operator != "/")
        return NumCol(values, is_int, valid)
    # Anything else (function calls, comparisons, logicals): interpreted
    # per-row, then coerced under the requested view.
    rows = np.arange(n, dtype=np.int64)
    raw, err = _row_eval(expression, batch, ctx, rows)
    values = np.zeros(n, dtype=np.float64)
    is_int = np.zeros(n, dtype=bool)
    valid = np.zeros(n, dtype=bool)
    for row, value in enumerate(raw):
        if err[row]:
            continue
        if lenient:
            try:
                number = _numeric(value)
            except EvaluationError:
                continue
        else:
            # Strict view mirrors _comparable: raw numbers/bools count,
            # literals only through their typed to_python value.
            if isinstance(value, (int, float)):
                number = float(value)
            else:
                strict = _strict_number(value) if not isinstance(value, str) else None
                if strict is None:
                    continue
                number = strict
        values[row] = number
        is_int[row] = isinstance(number, int) and not isinstance(number, bool)
        valid[row] = True
    return NumCol(values, is_int, valid)


# ---------------------------------------------------------------------------
# Boolean view (EBV) and comparisons
# ---------------------------------------------------------------------------

def eval_bool(expression: Expression, batch: Batch, ctx: ExprContext) -> BoolCol:
    """Effective-boolean-value view of an expression, with error mask."""
    n = batch.nrows
    if isinstance(expression, UnaryOp) and expression.operator == "!":
        inner = eval_bool(expression.operand, batch, ctx)
        return BoolCol(~inner.values & ~inner.err, inner.err)
    if isinstance(expression, BinaryOp):
        operator = expression.operator
        if operator in ("&&", "||"):
            left = eval_bool(expression.left, batch, ctx)
            right = eval_bool(expression.right, batch, ctx)
            if operator == "&&":
                # Kleene: false dominates error.
                false_out = (~left.values & ~left.err) | (~right.values & ~right.err)
                true_out = (left.values & ~left.err) & (right.values & ~right.err)
                err = ~false_out & ~true_out
                return BoolCol(true_out, err)
            true_out = (left.values & ~left.err) | (right.values & ~right.err)
            false_out = (~left.values & ~left.err) & (~right.values & ~right.err)
            err = ~false_out & ~true_out
            return BoolCol(true_out, err)
        if operator in _ORDERED:
            return _compare_ordered(expression, batch, ctx)
        if operator in ("=", "!="):
            return _compare_equality(expression, batch, ctx)
    if isinstance(expression, VarExpr):
        return _ebv_from_var(batch, ctx, expression.variable)
    if isinstance(expression, TermExpr):
        try:
            value = effective_boolean_value(expression.term)
            return BoolCol(
                np.full(n, value, dtype=bool), np.zeros(n, dtype=bool)
            )
        except EvaluationError:
            return BoolCol(np.zeros(n, dtype=bool), np.ones(n, dtype=bool))
    # Function calls and the rest: interpreted per-row + EBV.
    rows = np.arange(n, dtype=np.int64)
    raw, err = _row_eval(expression, batch, ctx, rows)
    values = np.zeros(n, dtype=bool)
    for row, value in enumerate(raw):
        if err[row]:
            continue
        try:
            values[row] = effective_boolean_value(value)
        except EvaluationError:
            err[row] = True
    return BoolCol(values, err)


def _ebv_from_var(batch: Batch, ctx: ExprContext, variable: Variable) -> BoolCol:
    ids = batch.column(variable)
    n = len(ids)
    codec = ctx.codec
    values = np.zeros(n, dtype=bool)
    err = np.ones(n, dtype=bool)  # unbound rows error
    in_range = (ids >= 0) & (ids < codec.size)
    if in_range.any():
        idx = ids[in_range]
        codec.ensure(idx)
        values[in_range] = codec.ebv_values[idx]
        err[in_range] = ~codec.ebv_valid[idx]
    overflow = ids >= codec.size
    for row in np.nonzero(overflow)[0]:
        term = ctx.encoder.decode(int(ids[row]))
        try:
            values[row] = effective_boolean_value(term)
            err[row] = False
        except EvaluationError:
            err[row] = True
    return BoolCol(values, err)


def _compare_ordered(
    expression: BinaryOp, batch: Batch, ctx: ExprContext
) -> BoolCol:
    left = eval_num(expression.left, batch, ctx, lenient=False)
    right = eval_num(expression.right, batch, ctx, lenient=False)
    fast = left.valid & right.valid
    values = np.zeros(batch.nrows, dtype=bool)
    err = np.zeros(batch.nrows, dtype=bool)
    values[fast] = _ORDERED[expression.operator](
        left.values[fast], right.values[fast]
    )
    slow = np.nonzero(~fast)[0]
    if len(slow):
        raw, row_err = _row_eval(expression, batch, ctx, slow)
        for out, row in enumerate(slow):
            if row_err[out]:
                err[row] = True
            else:
                values[row] = bool(raw[out])
    return BoolCol(values, err)


def _compare_equality(
    expression: BinaryOp, batch: Batch, ctx: ExprContext
) -> BoolCol:
    left = eval_num(expression.left, batch, ctx, lenient=False)
    right = eval_num(expression.right, batch, ctx, lenient=False)
    fast = left.valid & right.valid
    equal = np.zeros(batch.nrows, dtype=bool)
    err = np.zeros(batch.nrows, dtype=bool)
    equal[fast] = left.values[fast] == right.values[fast]
    slow = np.nonzero(~fast)[0]
    if len(slow):
        # _row_eval evaluates the full (in)equality on slow rows, so only the
        # fast rows still need the != flip below.
        raw, row_err = _row_eval(expression, batch, ctx, slow)
        for out, row in enumerate(slow):
            if row_err[out]:
                err[row] = True
            else:
                equal[row] = bool(raw[out])
    values = equal
    if expression.operator == "!=":
        values = equal.copy()
        values[fast] = ~equal[fast]
    return BoolCol(values & ~err, err)


# ---------------------------------------------------------------------------
# FILTER / BIND entry points
# ---------------------------------------------------------------------------

def filter_keep_mask(
    expression: Expression, batch: Batch, ctx: ExprContext
) -> np.ndarray:
    """Rows whose filter expression is true (errors count as false)."""
    col = eval_bool(expression, batch, ctx)
    return col.values & ~col.err


def bind_column(
    expression: Expression, batch: Batch, ctx: ExprContext
) -> np.ndarray:
    """Evaluate a BIND expression to an id column; errors yield UNBOUND."""
    n = batch.nrows
    if isinstance(expression, VarExpr):
        return batch.column(expression.variable).copy()
    if isinstance(expression, TermExpr):
        return np.full(n, ctx.encoder.encode(expression.term), dtype=np.int64)
    if (
        isinstance(expression, BinaryOp) and expression.operator in _ARITH
    ) or (isinstance(expression, UnaryOp) and expression.operator == "-"):
        numbers = eval_num(expression, batch, ctx, lenient=True)
        ids = np.full(n, UNBOUND, dtype=np.int64)
        encode = ctx.encoder.encode
        memo: Dict[Tuple[float, bool], int] = {}
        for row in np.nonzero(numbers.valid)[0]:
            value = float(numbers.values[row])
            key = (value, bool(numbers.is_int[row]))
            term_id = memo.get(key)
            if term_id is None:
                if key[1]:
                    term = Literal(str(int(value)), datatype=XSD_INTEGER)
                else:
                    term = Literal(repr(value), datatype=XSD_DOUBLE)
                term_id = encode(term)
                memo[key] = term_id
            ids[row] = term_id
        return ids
    # Generic path: interpreted per-row, to_term, encode.
    from repro.sparql.functions import to_term

    rows = np.arange(n, dtype=np.int64)
    raw, err = _row_eval(expression, batch, ctx, rows)
    ids = np.full(n, UNBOUND, dtype=np.int64)
    encode = ctx.encoder.encode
    for row, value in enumerate(raw):
        if err[row]:
            continue
        try:
            ids[row] = encode(to_term(value))
        except EvaluationError:
            continue
    return ids
