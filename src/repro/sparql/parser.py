"""Recursive-descent parser for the SPARQL subset.

Grammar (informally):

.. code-block:: text

    Query      := Prologue (SelectQuery | AskQuery)
    Prologue   := (PREFIX pname: <iri>)*
    Select     := SELECT [DISTINCT] (Var | AggAlias)+ | '*'
                  WHERE? Group (GROUP BY Var+)? (ORDER BY OrderCond+)?
                  (LIMIT n)? (OFFSET n)?
    Group      := '{' (TriplesBlock | Filter | Optional | GroupOrUnion)* '}'
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.errors import SPARQLSyntaxError
from repro.rdf.term import IRI, Literal, Term
from repro.rdf.term import XSD_BOOLEAN, XSD_DECIMAL, XSD_INTEGER
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryOp,
    BindPattern,
    Expression,
    FilterPattern,
    FunctionCall,
    GroupPattern,
    OptionalPattern,
    OrderCondition,
    SelectQuery,
    TermExpr,
    TermOrVar,
    TriplePattern,
    UnaryOp,
    UnionPattern,
    ValuesPattern,
    Variable,
    VarExpr,
)
from repro.sparql.tokenizer import Token, tokenize

_RDF_TYPE = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG"}
_BUILTIN_FUNCTIONS = {
    "BOUND", "STR", "LANG", "DATATYPE", "REGEX", "ABS", "CEIL", "FLOOR",
    "ROUND", "STRLEN", "UCASE", "LCASE", "CONTAINS", "STRSTARTS", "STRENDS",
    "ISIRI", "ISLITERAL", "ISNUMERIC", "IF", "COALESCE", "NOT",
}


class _Parser:
    def __init__(self, query: str):
        self._tokens = tokenize(query)
        self._index = 0
        self._prefixes: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _peek_keyword(self) -> Optional[str]:
        token = self._peek()
        if token is not None and token.kind == "keyword":
            return token.text.upper()
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SPARQLSyntaxError("unexpected end of query")
        self._index += 1
        return token

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise SPARQLSyntaxError(f"expected {char!r}, got {token.text!r}")

    def _expect_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "keyword" or token.text.upper() != word:
            raise SPARQLSyntaxError(f"expected {word}, got {token.text!r}")

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "punct" and token.text == char:
            self._index += 1
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self._peek_keyword() == word:
            self._index += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def parse(self) -> Union[SelectQuery, AskQuery]:
        while self._peek_keyword() == "PREFIX":
            self._parse_prefix()
        keyword = self._peek_keyword()
        if keyword == "SELECT":
            query = self._parse_select()
        elif keyword == "ASK":
            query = self._parse_ask()
        else:
            raise SPARQLSyntaxError(f"expected SELECT or ASK, got {keyword!r}")
        if self._peek() is not None:
            raise SPARQLSyntaxError(f"trailing input: {self._peek().text!r}")
        return query

    def _parse_prefix(self) -> None:
        self._expect_keyword("PREFIX")
        token = self._next()
        if token.kind != "pname" or not token.text.endswith(":"):
            raise SPARQLSyntaxError(f"expected prefix declaration, got {token.text!r}")
        prefix = token.text[:-1]
        iri_token = self._next()
        if iri_token.kind != "iri":
            raise SPARQLSyntaxError("expected IRI in PREFIX declaration")
        self._prefixes[prefix] = iri_token.text[1:-1]

    # ------------------------------------------------------------------
    # SELECT / ASK
    # ------------------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        variables: List[Variable] = []
        aggregates: List[Aggregate] = []
        star = False
        while True:
            token = self._peek()
            if token is None:
                raise SPARQLSyntaxError("unexpected end in SELECT clause")
            if token.kind == "var":
                variables.append(Variable(self._next().text[1:]))
                continue
            if token.kind == "op" and token.text == "*":
                self._next()
                star = True
                continue
            if token.kind == "punct" and token.text == "(":
                aggregates.append(self._parse_aggregate_alias())
                continue
            break
        if not variables and not aggregates and not star:
            raise SPARQLSyntaxError("SELECT clause selects nothing")

        self._accept_keyword("WHERE")
        where = self._parse_group()

        group_by: List[Variable] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while self._peek() is not None and self._peek().kind == "var":
                group_by.append(Variable(self._next().text[1:]))
            if not group_by:
                raise SPARQLSyntaxError("GROUP BY requires at least one variable")

        order_by: List[OrderCondition] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_conditions()

        limit: Optional[int] = None
        offset = 0
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self._accept_keyword("LIMIT"):
                limit = self._parse_nonnegative_int("LIMIT")
            elif self._accept_keyword("OFFSET"):
                offset = self._parse_nonnegative_int("OFFSET")

        return SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
            aggregates=aggregates,
            group_by=group_by,
        )

    def _parse_ask(self) -> AskQuery:
        self._expect_keyword("ASK")
        self._accept_keyword("WHERE")
        return AskQuery(where=self._parse_group())

    def _parse_aggregate_alias(self) -> Aggregate:
        self._expect_punct("(")
        token = self._next()
        if token.kind != "keyword" or token.text.upper() not in _AGGREGATES:
            raise SPARQLSyntaxError(f"expected aggregate function, got {token.text!r}")
        function = token.text.upper()
        self._expect_punct("(")
        distinct = self._accept_keyword("DISTINCT")
        argument: Optional[Expression]
        star_token = self._peek()
        if star_token is not None and star_token.kind == "op" and star_token.text == "*":
            self._next()
            argument = None
        else:
            argument = self._parse_expression()
        self._expect_punct(")")
        self._expect_keyword("AS")
        var_token = self._next()
        if var_token.kind != "var":
            raise SPARQLSyntaxError("expected variable after AS")
        alias = Variable(var_token.text[1:])
        self._expect_punct(")")
        return Aggregate(function=function, argument=argument, alias=alias, distinct=distinct)

    def _parse_order_conditions(self) -> List[OrderCondition]:
        conditions: List[OrderCondition] = []
        while True:
            token = self._peek()
            if token is None:
                break
            if token.kind == "keyword" and token.text.upper() in ("ASC", "DESC"):
                descending = self._next().text.upper() == "DESC"
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_punct(")")
                conditions.append(OrderCondition(expression, descending))
                continue
            if token.kind == "var":
                conditions.append(
                    OrderCondition(VarExpr(Variable(self._next().text[1:])))
                )
                continue
            break
        if not conditions:
            raise SPARQLSyntaxError("ORDER BY requires at least one condition")
        return conditions

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._next()
        if token.kind != "number" or not token.text.isdigit():
            raise SPARQLSyntaxError(f"{clause} requires a non-negative integer")
        return int(token.text)

    # ------------------------------------------------------------------
    # Graph patterns
    # ------------------------------------------------------------------

    def _parse_group(self) -> GroupPattern:
        self._expect_punct("{")
        group = GroupPattern()
        current_bgp: Optional[BGP] = None

        def flush() -> None:
            nonlocal current_bgp
            if current_bgp is not None and current_bgp.patterns:
                group.children.append(current_bgp)
            current_bgp = None

        while True:
            token = self._peek()
            if token is None:
                raise SPARQLSyntaxError("unterminated group pattern")
            if token.kind == "punct" and token.text == "}":
                self._next()
                flush()
                return group
            if token.kind == "keyword" and token.text.upper() == "FILTER":
                self._next()
                flush()
                group.children.append(FilterPattern(self._parse_filter_expression()))
                continue
            if token.kind == "keyword" and token.text.upper() == "OPTIONAL":
                self._next()
                flush()
                group.children.append(OptionalPattern(self._parse_group()))
                continue
            if token.kind == "keyword" and token.text.upper() == "BIND":
                self._next()
                flush()
                group.children.append(self._parse_bind())
                continue
            if token.kind == "keyword" and token.text.upper() == "VALUES":
                self._next()
                flush()
                group.children.append(self._parse_values())
                continue
            if token.kind == "punct" and token.text == "{":
                flush()
                group.children.append(self._parse_group_or_union())
                continue
            # Otherwise it must be a triples block entry.
            if current_bgp is None:
                current_bgp = BGP()
            self._parse_triples_same_subject(current_bgp)
            self._accept_punct(".")

    def _parse_bind(self) -> BindPattern:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_keyword("AS")
        token = self._next()
        if token.kind != "var":
            raise SPARQLSyntaxError("BIND requires a variable after AS")
        self._expect_punct(")")
        return BindPattern(Variable(token.text[1:]), expression)

    def _parse_values(self) -> ValuesPattern:
        token = self._peek()
        variables: List[Variable] = []
        single = False
        if token is not None and token.kind == "var":
            variables.append(Variable(self._next().text[1:]))
            single = True
        else:
            self._expect_punct("(")
            while True:
                token = self._next()
                if token.kind == "punct" and token.text == ")":
                    break
                if token.kind != "var":
                    raise SPARQLSyntaxError("VALUES expects variables")
                variables.append(Variable(token.text[1:]))
            if not variables:
                raise SPARQLSyntaxError("VALUES requires at least one variable")
        self._expect_punct("{")
        rows: List[List] = []
        while not self._accept_punct("}"):
            if single:
                rows.append([self._parse_values_term()])
            else:
                self._expect_punct("(")
                row = []
                while not self._accept_punct(")"):
                    row.append(self._parse_values_term())
                if len(row) != len(variables):
                    raise SPARQLSyntaxError(
                        f"VALUES row has {len(row)} terms for "
                        f"{len(variables)} variables"
                    )
                rows.append(row)
        return ValuesPattern(variables, rows)

    def _parse_values_term(self):
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.text.upper() == "UNDEF":
            self._next()
            return None
        term = self._parse_term_or_var(position="VALUES")
        if isinstance(term, Variable):
            raise SPARQLSyntaxError("VALUES rows may not contain variables")
        return term

    def _parse_group_or_union(self) -> GraphPatternUnion:
        first = self._parse_group()
        alternatives = [first]
        while self._accept_keyword("UNION"):
            alternatives.append(self._parse_group())
        if len(alternatives) == 1:
            return first
        return UnionPattern(alternatives)

    def _parse_triples_same_subject(self, bgp: BGP) -> None:
        subject = self._parse_term_or_var(position="subject")
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term_or_var(position="object")
                bgp.patterns.append(TriplePattern(subject, predicate, obj))
                if self._accept_punct(","):
                    continue
                break
            if self._accept_punct(";"):
                token = self._peek()
                # Allow trailing ';' before '.' or '}'.
                if token is not None and token.kind == "punct" and token.text in (".", "}"):
                    return
                continue
            return

    def _parse_verb(self) -> TermOrVar:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.text == "a":
            self._next()
            return _RDF_TYPE
        return self._parse_term_or_var(position="predicate")

    def _parse_term_or_var(self, position: str) -> TermOrVar:
        token = self._next()
        if token.kind == "var":
            return Variable(token.text[1:])
        if token.kind == "iri":
            return IRI(token.text[1:-1])
        if token.kind == "pname":
            return self._resolve_pname(token.text)
        if token.kind == "string":
            return self._parse_literal_from(token)
        if token.kind == "number":
            return _number_literal(token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            return Literal(token.text, datatype=XSD_BOOLEAN)
        raise SPARQLSyntaxError(
            f"unexpected token {token.text!r} in triple {position}"
        )

    def _resolve_pname(self, pname: str) -> IRI:
        prefix, _, local = pname.partition(":")
        if prefix not in self._prefixes:
            raise SPARQLSyntaxError(f"undeclared prefix {prefix!r}")
        return IRI(self._prefixes[prefix] + local)

    def _parse_literal_from(self, token: Token) -> Literal:
        lexical = _unescape_string(token.text[1:-1])
        nxt = self._peek()
        if nxt is not None and nxt.kind == "dtype":
            self._next()
            dt_token = self._next()
            if dt_token.kind == "iri":
                return Literal(lexical, datatype=dt_token.text[1:-1])
            if dt_token.kind == "pname":
                return Literal(lexical, datatype=self._resolve_pname(dt_token.text).value)
            raise SPARQLSyntaxError("expected datatype IRI after ^^")
        if nxt is not None and nxt.kind == "lang":
            self._next()
            return Literal(lexical, language=nxt.text[1:])
        return Literal(lexical)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_filter_expression(self) -> Expression:
        self._expect_punct("(")
        expression = self._parse_expression()
        self._expect_punct(")")
        return expression

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._peek_op("||"):
            self._next()
            left = BinaryOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_relational()
        while self._peek_op("&&"):
            self._next()
            left = BinaryOp("&&", left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token is not None and token.kind == "op" and token.text in (
            "=", "!=", "<", "<=", ">", ">=",
        ):
            operator = self._next().text
            return BinaryOp(operator, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.text in ("+", "-"):
                operator = self._next().text
                left = BinaryOp(operator, left, self._parse_multiplicative())
                continue
            return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.text in ("*", "/"):
                operator = self._next().text
                left = BinaryOp(operator, left, self._parse_unary())
                continue
            return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text in ("!", "-"):
            self._next()
            return UnaryOp(token.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._next()
        if token.kind == "punct" and token.text == "(":
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "var":
            return VarExpr(Variable(token.text[1:]))
        if token.kind == "string":
            return TermExpr(self._parse_literal_from(token))
        if token.kind == "number":
            return TermExpr(_number_literal(token.text))
        if token.kind == "iri":
            iri = IRI(token.text[1:-1])
            if self._accept_punct("("):
                return self._parse_call(iri.value)
            return TermExpr(iri)
        if token.kind == "pname":
            iri = self._resolve_pname(token.text)
            if self._accept_punct("("):
                return self._parse_call(iri.value)
            return TermExpr(iri)
        if token.kind == "keyword":
            word = token.text.upper()
            if word in ("TRUE", "FALSE"):
                return TermExpr(Literal(word.lower(), datatype=XSD_BOOLEAN))
            if word in _BUILTIN_FUNCTIONS:
                self._expect_punct("(")
                return self._parse_call(word)
            raise SPARQLSyntaxError(f"unknown function or keyword {token.text!r}")
        raise SPARQLSyntaxError(f"unexpected token in expression: {token.text!r}")

    def _parse_call(self, name: str) -> FunctionCall:
        args: List[Expression] = []
        if not self._accept_punct(")"):
            args.append(self._parse_expression())
            while self._accept_punct(","):
                args.append(self._parse_expression())
            self._expect_punct(")")
        return FunctionCall(name, tuple(args))

    def _peek_op(self, op: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "op" and token.text == op


# Type alias used above for readability.
GraphPatternUnion = Union[GroupPattern, UnionPattern]


def _number_literal(text: str) -> Literal:
    if "." in text or "e" in text or "E" in text:
        return Literal(text, datatype=XSD_DECIMAL)
    return Literal(text, datatype=XSD_INTEGER)


def _unescape_string(text: str) -> str:
    return (
        text.replace("\\n", "\n")
        .replace("\\r", "\r")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\'", "'")
        .replace("\\\\", "\\")
    )


def parse_query(query: str) -> Union[SelectQuery, AskQuery]:
    """Parse SPARQL text into a :class:`SelectQuery` or :class:`AskQuery`."""
    return _Parser(query).parse()
