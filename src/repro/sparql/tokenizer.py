"""Tokenizer for the SPARQL subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import SPARQLSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"\s]*>)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<number>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)
  | (?P<dtype>\^\^)
  | (?P<lang>@[A-Za-z]+(?:-[A-Za-z0-9]+)*)
  | (?P<op>&&|\|\||!=|<=|>=|[=<>!+\-*/])
  | (?P<pname>[A-Za-z_][\w-]*:[\w.#/-]*|:[\w.#/-]+)
  | (?P<keyword>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>[{}().,;\[\]])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    position: int


def tokenize(query: str) -> List[Token]:
    """Split query text into tokens; raises on unrecognised input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise SPARQLSyntaxError(
                f"unexpected character at offset {pos}: {query[pos:pos+20]!r}"
            )
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, match.group(), pos))
        pos = match.end()
    return tokens
