"""SPARQL-subset query engine.

Implements the portion of SPARQL 1.1 the ExtremeEarth stack needs:

* ``SELECT [DISTINCT] ... WHERE { ... }`` with basic graph patterns
* ``FILTER`` with comparison, arithmetic, boolean operators and function calls
  (including the GeoSPARQL ``geof:`` functions registered by
  :mod:`repro.geosparql`)
* ``OPTIONAL`` (left join), ``UNION``
* ``PREFIX`` declarations, ``ORDER BY``, ``LIMIT``, ``OFFSET``
* aggregate queries: ``COUNT`` (with ``GROUP BY``)

The engine compiles queries to a small logical algebra
(:mod:`repro.sparql.algebra`), applies filter pushdown and
selectivity-ordered joins, and evaluates with an iterator model over
:class:`repro.rdf.Graph`. Passing ``CompileOptions(engine="vector")`` to
:func:`evaluate` selects the columnar engine (:mod:`repro.sparql.vector`)
instead: numpy id-column execution with cost-based join ordering, identical
solution multisets.

``CompileOptions(budget=QueryBudget(...))`` attaches the E23 resource
governor (:mod:`repro.sparql.governor`): a per-query deadline, resident
row/byte caps and a cooperative :class:`~repro.sparql.governor.CancelToken`,
enforced at checkpoints inside both engines.

``CompileOptions(engine="dist", dist=DistRuntime(graph, ...))`` runs the
vector plans distributed over a range-partitioned, replicated simulated
cluster with crash recovery, speculation and replica failover
(:mod:`repro.sparql.dist`, experiment E25) — same multisets again, or a
typed retryable :class:`~repro.errors.PartitionUnavailable`.
"""

from repro.sparql.algebra import CompileOptions
from repro.sparql.ast import SelectQuery, Variable
from repro.sparql.governor import (
    BudgetPolicy,
    CancelToken,
    QueryBudget,
    with_budget,
)
from repro.sparql.parser import parse_query
from repro.sparql.evaluator import (
    Bindings,
    FunctionRegistry,
    apply_solution_modifiers,
    evaluate,
    materialize_select,
)

__all__ = [
    "Bindings",
    "BudgetPolicy",
    "CancelToken",
    "CompileOptions",
    "FunctionRegistry",
    "QueryBudget",
    "SelectQuery",
    "Variable",
    "apply_solution_modifiers",
    "evaluate",
    "materialize_select",
    "parse_query",
    "with_budget",
]
