"""Abstract syntax tree for the SPARQL subset.

The parser produces these nodes; :mod:`repro.sparql.algebra` compiles them to
executable operators. Expressions form their own small tree evaluated per
solution by the evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.rdf.term import Term


@dataclass(frozen=True)
class Variable:
    """A SPARQL variable, e.g. ``?name``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


TermOrVar = Union[Term, Variable]


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern whose positions may be variables."""

    subject: TermOrVar
    predicate: TermOrVar
    object: TermOrVar

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(
            t for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Variable)
        )


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression:
    """Base class for filter/select expressions."""


@dataclass(frozen=True)
class TermExpr(Expression):
    """A constant RDF term used in an expression."""

    term: Term


@dataclass(frozen=True)
class VarExpr(Expression):
    """A variable reference in an expression."""

    variable: Variable


@dataclass(frozen=True)
class UnaryOp(Expression):
    """``!expr`` or ``-expr``."""

    operator: str
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Comparison, arithmetic, or logical binary operation."""

    operator: str  # one of = != < <= > >= + - * / && ||
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A built-in (by name) or extension (by IRI) function call."""

    name: str  # builtin name (upper case) or absolute function IRI
    args: Tuple[Expression, ...]


# ---------------------------------------------------------------------------
# Graph patterns
# ---------------------------------------------------------------------------

class GraphPattern:
    """Base class for WHERE-clause patterns."""


@dataclass
class BGP(GraphPattern):
    """A basic graph pattern: a conjunction of triple patterns."""

    patterns: List[TriplePattern] = field(default_factory=list)


@dataclass
class FilterPattern(GraphPattern):
    """``FILTER (expr)`` applied to the group it appears in."""

    expression: Expression


@dataclass
class OptionalPattern(GraphPattern):
    """``OPTIONAL { ... }``."""

    pattern: "GroupPattern"


@dataclass
class UnionPattern(GraphPattern):
    """``{ ... } UNION { ... }``."""

    alternatives: List["GroupPattern"]


@dataclass
class BindPattern(GraphPattern):
    """``BIND (expr AS ?var)`` — extends solutions with a computed value."""

    variable: Variable
    expression: Expression


@dataclass
class ValuesPattern(GraphPattern):
    """``VALUES (?a ?b) { (t1 t2) ... }`` — an inline solution table.

    ``rows`` holds one Optional[Term] per variable; None encodes UNDEF.
    """

    variables: List[Variable]
    rows: List[List[Optional[Term]]]


@dataclass
class GroupPattern(GraphPattern):
    """A braced group: an ordered sequence of child patterns."""

    children: List[GraphPattern] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Query forms
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class Aggregate:
    """An aggregate in the SELECT clause, e.g. ``(COUNT(?x) AS ?n)``."""

    function: str  # COUNT, SUM, MIN, MAX, AVG
    argument: Optional[Expression]  # None for COUNT(*)
    alias: Variable
    distinct: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT query."""

    variables: List[Variable]  # empty means SELECT *
    where: GroupPattern
    distinct: bool = False
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    aggregates: List[Aggregate] = field(default_factory=list)
    group_by: List[Variable] = field(default_factory=list)

    @property
    def is_aggregate(self) -> bool:
        return bool(self.aggregates)


@dataclass
class AskQuery:
    """A parsed ASK query."""

    where: GroupPattern
