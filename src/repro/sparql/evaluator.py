"""Iterator-model evaluator for the SPARQL algebra.

Solutions are immutable-ish dicts mapping :class:`Variable` to RDF terms.
Joins propagate bindings into the right operand's scans (index nested-loop
join), so selectivity ordering from the algebra layer directly controls work.

Extension functions (the GeoSPARQL ``geof:`` family) are supplied through a
:class:`FunctionRegistry`; the evaluator itself knows nothing about geometry.

Operator-level observability: pass an :class:`~repro.obs.Observability`
bundle to :func:`evaluate` and every algebra operator reports how long its
iterator ran and how many solutions it produced — the ``sparql.op_seconds``
histogram and ``sparql.op_solutions`` counter, labelled by operator type.
Timing is inclusive of children (a join's total contains its scans) and
excludes consumer time between pulls. With no bundle the evaluator takes
the raw, unwrapped path.

Governance (E23): a :class:`~repro.sparql.governor.QueryBudget` on
``CompileOptions.budget`` wraps every operator the same way — one
checkpoint per pulled solution (cancellation, injected operator slowness,
deadline) plus resident-row accounting at the root materialization. With
no budget the evaluator takes the raw path, byte-identical to pre-E23
code.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.errors import SPARQLError
from repro.obs import Observability, resolve as resolve_obs
from repro.rdf.graph import Graph
from repro.rdf.term import Term
from repro.sparql.algebra import (
    AlgebraOp,
    CompileOptions,
    EmptyOp,
    ExtendOp,
    FilterOp,
    JoinOp,
    LeftJoinOp,
    ScanOp,
    TableOp,
    UnionOp,
    compile_group,
)
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BinaryOp,
    Expression,
    FunctionCall,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnaryOp,
    Variable,
    VarExpr,
)
from repro.sparql.functions import (
    BUILTINS,
    EvaluationError,
    Value,
    arithmetic,
    compare,
    effective_boolean_value,
    to_term,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.plan import PlanCache
    from repro.sparql.governor import QueryBudget

Bindings = Dict[Variable, Term]
ExtensionFunction = Callable[[List[Value]], Value]


class FunctionRegistry:
    """Maps extension-function IRIs to Python callables."""

    def __init__(self):
        self._functions: Dict[str, ExtensionFunction] = {}

    def register(self, iri: str, function: ExtensionFunction) -> None:
        self._functions[iri] = function

    def get(self, iri: str) -> Optional[ExtensionFunction]:
        return self._functions.get(iri)

    def copy(self) -> "FunctionRegistry":
        registry = FunctionRegistry()
        registry._functions.update(self._functions)
        return registry


_EMPTY_REGISTRY = FunctionRegistry()


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

def evaluate_expression(
    expression: Expression,
    bindings: Bindings,
    registry: FunctionRegistry = _EMPTY_REGISTRY,
) -> Value:
    """Evaluate an expression against one solution; raises EvaluationError."""
    if isinstance(expression, TermExpr):
        return expression.term
    if isinstance(expression, VarExpr):
        if expression.variable not in bindings:
            raise EvaluationError(f"unbound variable {expression.variable}")
        return bindings[expression.variable]
    if isinstance(expression, UnaryOp):
        if expression.operator == "!":
            return not effective_boolean_value(
                evaluate_expression(expression.operand, bindings, registry)
            )
        if expression.operator == "-":
            value = evaluate_expression(expression.operand, bindings, registry)
            return -_as_number(value)
        raise EvaluationError(f"unknown unary operator {expression.operator!r}")
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, bindings, registry)
    if isinstance(expression, FunctionCall):
        return _evaluate_call(expression, bindings, registry)
    raise SPARQLError(f"unknown expression node {type(expression).__name__}")


def _as_number(value: Value) -> Union[int, float]:
    from repro.sparql.functions import _numeric

    return _numeric(value)


def _evaluate_binary(
    expression: BinaryOp, bindings: Bindings, registry: FunctionRegistry
) -> Value:
    operator = expression.operator
    if operator == "&&":
        # SPARQL logical-and: false dominates errors.
        left_error = None
        try:
            if not effective_boolean_value(
                evaluate_expression(expression.left, bindings, registry)
            ):
                return False
        except EvaluationError as exc:
            left_error = exc
        right = effective_boolean_value(
            evaluate_expression(expression.right, bindings, registry)
        )
        if not right:
            return False
        if left_error is not None:
            raise left_error
        return True
    if operator == "||":
        left_error = None
        try:
            if effective_boolean_value(
                evaluate_expression(expression.left, bindings, registry)
            ):
                return True
        except EvaluationError as exc:
            left_error = exc
        right = effective_boolean_value(
            evaluate_expression(expression.right, bindings, registry)
        )
        if right:
            return True
        if left_error is not None:
            raise left_error
        return False

    left = evaluate_expression(expression.left, bindings, registry)
    right = evaluate_expression(expression.right, bindings, registry)
    if operator in ("=", "!=", "<", "<=", ">", ">="):
        return compare(operator, left, right)
    if operator in ("+", "-", "*", "/"):
        return arithmetic(operator, left, right)
    raise EvaluationError(f"unknown operator {operator!r}")


def _evaluate_call(
    expression: FunctionCall, bindings: Bindings, registry: FunctionRegistry
) -> Value:
    name = expression.name
    # Lazy builtins.
    if name == "BOUND":
        if len(expression.args) != 1 or not isinstance(expression.args[0], VarExpr):
            raise EvaluationError("BOUND requires a single variable argument")
        return expression.args[0].variable in bindings
    if name == "IF":
        if len(expression.args) != 3:
            raise EvaluationError("IF takes 3 arguments")
        condition = effective_boolean_value(
            evaluate_expression(expression.args[0], bindings, registry)
        )
        chosen = expression.args[1] if condition else expression.args[2]
        return evaluate_expression(chosen, bindings, registry)
    if name == "COALESCE":
        for arg in expression.args:
            try:
                return evaluate_expression(arg, bindings, registry)
            except EvaluationError:
                continue
        raise EvaluationError("COALESCE: all arguments errored")

    args = [evaluate_expression(arg, bindings, registry) for arg in expression.args]
    builtin = BUILTINS.get(name)
    if builtin is not None:
        return builtin(args)
    extension = registry.get(name)
    if extension is not None:
        return extension(args)
    raise EvaluationError(f"unknown function {name!r}")


# ---------------------------------------------------------------------------
# Operator evaluation
# ---------------------------------------------------------------------------

def _substitute(pattern: TriplePattern, bindings: Bindings) -> TriplePattern:
    def resolve(position):
        if isinstance(position, Variable) and position in bindings:
            return bindings[position]
        return position

    return TriplePattern(
        resolve(pattern.subject), resolve(pattern.predicate), resolve(pattern.object)
    )


def _scan(
    graph: Graph, pattern: TriplePattern, bindings: Bindings
) -> Iterator[Bindings]:
    concrete = _substitute(pattern, bindings)
    query = tuple(
        None if isinstance(position, Variable) else position
        for position in (concrete.subject, concrete.predicate, concrete.object)
    )
    for triple in graph.triples(query):  # type: ignore[arg-type]
        new_bindings = dict(bindings)
        consistent = True
        for position, term in zip(
            (concrete.subject, concrete.predicate, concrete.object), triple
        ):
            if isinstance(position, Variable):
                existing = new_bindings.get(position)
                if existing is None:
                    new_bindings[position] = term
                elif existing != term:
                    consistent = False
                    break
        if consistent:
            yield new_bindings


def _evaluate_op(
    op: AlgebraOp,
    graph: Graph,
    bindings: Bindings,
    registry: FunctionRegistry,
    obs: Optional[Observability] = None,
    budget: Optional["QueryBudget"] = None,
) -> Iterator[Bindings]:
    """Dispatch: raw operator iterator, optionally wrapped for governance
    (budget checkpoints per pulled solution) and observability (timing)."""
    iterator = _op_iter(op, graph, bindings, registry, obs, budget)
    if budget is not None:
        iterator = _governed_iter(iterator, type(op).__name__, budget)
    if obs is None or not obs.enabled:
        return iterator
    return _timed_iter(iterator, type(op).__name__, obs)


def _governed_iter(
    iterator: Iterator[Bindings], op_name: str, budget: "QueryBudget"
) -> Iterator[Bindings]:
    """Budget checkpoint before every pull: cancellation, injected operator
    slowness and the deadline are all observed between solutions, so a
    runaway operator can be stopped mid-stream (cooperatively)."""
    while True:
        budget.checkpoint(op_name)
        try:
            solution = next(iterator)
        except StopIteration:
            return
        budget.produced(1)
        yield solution


def _timed_iter(
    iterator: Iterator[Bindings], op_name: str, obs: Observability
) -> Iterator[Bindings]:
    """Account an operator's iterator time + cardinality to ``sparql.*``."""
    clock = obs.tracer.now
    elapsed = 0.0
    produced = 0
    try:
        while True:
            started = clock()
            try:
                solution = next(iterator)
            except StopIteration:
                return
            finally:
                elapsed += clock() - started
            produced += 1
            yield solution
    finally:
        obs.metrics.histogram("sparql.op_seconds", op=op_name).observe(elapsed)
        obs.metrics.counter("sparql.op_solutions", op=op_name).inc(produced)


def _op_iter(
    op: AlgebraOp,
    graph: Graph,
    bindings: Bindings,
    registry: FunctionRegistry,
    obs: Optional[Observability] = None,
    budget: Optional["QueryBudget"] = None,
) -> Iterator[Bindings]:
    custom = getattr(op, "evaluate_custom", None)
    if custom is not None:
        yield from custom(graph, bindings, registry)
        return
    if isinstance(op, EmptyOp):
        yield dict(bindings)
        return
    if isinstance(op, ScanOp):
        yield from _scan(graph, op.pattern, bindings)
        return
    if isinstance(op, JoinOp):
        for left_solution in _evaluate_op(
            op.left, graph, bindings, registry, obs, budget
        ):
            yield from _evaluate_op(
                op.right, graph, left_solution, registry, obs, budget
            )
        return
    if isinstance(op, LeftJoinOp):
        for left_solution in _evaluate_op(
            op.left, graph, bindings, registry, obs, budget
        ):
            extended = False
            for joined in _evaluate_op(
                op.right, graph, left_solution, registry, obs, budget
            ):
                extended = True
                yield joined
            if not extended:
                yield left_solution
        return
    if isinstance(op, UnionOp):
        for operand in op.operands:
            yield from _evaluate_op(
                operand, graph, bindings, registry, obs, budget
            )
        return
    if isinstance(op, FilterOp):
        for solution in _evaluate_op(
            op.operand, graph, bindings, registry, obs, budget
        ):
            try:
                keep = effective_boolean_value(
                    evaluate_expression(op.expression, solution, registry)
                )
            except EvaluationError:
                keep = False
            if keep:
                yield solution
        return
    if isinstance(op, ExtendOp):
        for solution in _evaluate_op(
            op.operand, graph, bindings, registry, obs, budget
        ):
            if op.variable in solution:
                raise SPARQLError(
                    f"BIND would rebind already-bound variable {op.variable}"
                )
            extended = dict(solution)
            try:
                extended[op.variable] = to_term(
                    evaluate_expression(op.expression, solution, registry)
                )
            except EvaluationError:
                pass  # expression error: the variable stays unbound
            yield extended
        return
    if isinstance(op, TableOp):
        for row in op.rows:
            candidate = dict(bindings)
            compatible = True
            for variable, term in zip(op.variables, row):
                if term is None:
                    continue  # UNDEF constrains nothing
                existing = candidate.get(variable)
                if existing is None:
                    candidate[variable] = term
                elif existing != term:
                    compatible = False
                    break
            if compatible:
                yield candidate
        return
    raise SPARQLError(f"unknown operator {type(op).__name__}")


# ---------------------------------------------------------------------------
# Query evaluation (solution modifiers, aggregation, projection)
# ---------------------------------------------------------------------------

def evaluate(
    graph: Graph,
    query: Union[SelectQuery, AskQuery, str],
    registry: FunctionRegistry = _EMPTY_REGISTRY,
    options: Optional[CompileOptions] = None,
    obs: Optional[Observability] = None,
    cache: Optional["PlanCache"] = None,
) -> Union[List[Bindings], bool]:
    """Evaluate a query (text or AST) against *graph*.

    SELECT returns a list of solutions ({Variable: Term}); ASK returns bool.
    ``CompileOptions(engine="vector")`` routes execution through the
    columnar engine (:mod:`repro.sparql.vector`) — same solution multisets,
    batch-at-a-time execution with cost-based join ordering.
    With ``obs``, per-operator timing and cardinality are recorded (see the
    module docstring) and the whole call runs in a ``sparql.query`` span.
    With a :class:`~repro.cache.PlanCache`, *string* queries skip parsing
    and compilation when the text was seen before against the same graph
    content (keyed on ``graph.version``, so any mutation recompiles); AST
    queries always take the uncached path.
    """
    text: Optional[str] = None
    if isinstance(query, str):
        text = query
        if cache is not None:
            query = cache.parse(text)
        else:
            from repro.sparql.parser import parse_query

            query = parse_query(text)
    observability = resolve_obs(obs)
    with observability.tracer.span(
        "sparql.query", form="ask" if isinstance(query, AskQuery) else "select"
    ):
        return _evaluate_query(graph, query, registry, options, obs, cache, text)


def _compile(
    where,
    graph: Graph,
    options: Optional[CompileOptions],
    cache: Optional["PlanCache"],
    text: Optional[str],
) -> AlgebraOp:
    """Compile a WHERE group, through the plan cache when one applies."""
    if cache is None or text is None:
        return compile_group(where, graph, options)
    return cache.plan(
        graph,
        text,
        options,
        graph.version,
        lambda: compile_group(where, graph, options),
    )


def _evaluate_query(
    graph: Graph,
    query: Union[SelectQuery, AskQuery],
    registry: FunctionRegistry,
    options: Optional[CompileOptions],
    obs: Optional[Observability],
    cache: Optional["PlanCache"] = None,
    text: Optional[str] = None,
) -> Union[List[Bindings], bool]:
    if options is not None and options.engine == "vector":
        from repro.sparql.vector import evaluate_vector_query

        return evaluate_vector_query(
            graph, query, registry, options, obs, cache, text
        )
    if options is not None and options.engine == "dist":
        from repro.sparql.dist import evaluate_dist_query

        return evaluate_dist_query(
            graph, query, registry, options, obs, cache, text
        )
    budget = options.budget if options is not None else None
    if isinstance(query, AskQuery):
        tree = _compile(query.where, graph, options, cache, text)
        for _ in _evaluate_op(tree, graph, {}, registry, obs, budget):
            return True
        return False

    tree = _compile(query.where, graph, options, cache, text)
    iterator = _evaluate_op(tree, graph, {}, registry, obs, budget)
    return materialize_select(query, iterator, registry, budget)


def materialize_select(
    query: SelectQuery,
    iterator: Iterable[Bindings],
    registry: FunctionRegistry = _EMPTY_REGISTRY,
    budget: Optional["QueryBudget"] = None,
) -> List[Bindings]:
    """Materialize a SELECT's root iterator and apply solution modifiers.

    The general path pulls everything, then runs
    :func:`apply_solution_modifiers`. LIMIT-without-ORDER-BY queries
    short-circuit instead: projection and (incremental) DISTINCT run
    per-solution and the pull stops as soon as ``OFFSET + LIMIT`` results
    exist, so ``LIMIT 10`` over a huge pattern does bounded work. The
    incremental pipeline keeps first occurrences in stream order — exactly
    what project-then-dedupe-then-slice over the full list returns — so
    results are byte-identical to the unbounded path.

    With a *budget*, every retained solution charges resident-row
    accounting (the root materialization is the interpreted engine's one
    unbounded buffer).
    """
    if (
        not query.is_aggregate
        and not query.order_by
        and query.limit is not None
    ):
        needed = query.offset + query.limit
        results: List[Bindings] = []
        seen = set() if query.distinct else None
        if needed > 0:
            for solution in iterator:
                if query.variables:
                    solution = {
                        v: solution[v] for v in query.variables if v in solution
                    }
                if seen is not None:
                    key = frozenset(solution.items())
                    if key in seen:
                        continue
                    seen.add(key)
                if budget is not None:
                    budget.charge_rows(
                        1, max(1, len(solution)), "materialize"
                    )
                results.append(solution)
                if len(results) >= needed:
                    break
        return results[query.offset:]

    solutions: List[Bindings] = []
    for solution in iterator:
        if budget is not None:
            budget.charge_rows(1, max(1, len(solution)), "materialize")
        solutions.append(solution)
    return apply_solution_modifiers(query, solutions, registry)


def apply_solution_modifiers(
    query: SelectQuery,
    solutions: List[Bindings],
    registry: FunctionRegistry = _EMPTY_REGISTRY,
) -> List[Bindings]:
    """Aggregation and solution modifiers, in the SPARQL-algebra order.

    Per SPARQL 1.1 (18.2.4-18.2.5) the pipeline is: aggregate, ORDER BY,
    projection, DISTINCT, then the OFFSET/LIMIT slice. ORDER BY runs
    *before* projection so it can sort by variables the SELECT clause drops
    — projecting first silently degraded every such sort key to the unbound
    sentinel. Both local stores (the core evaluator and ``GeoStore``) feed
    their raw solution lists through this one pipeline.
    """
    solutions = list(solutions)
    if query.is_aggregate:
        solutions = _aggregate(query, solutions, registry)
    if query.order_by:
        for condition in reversed(query.order_by):
            solutions.sort(
                key=lambda s, c=condition: _order_key(c.expression, s, registry),
                reverse=condition.descending,
            )
    if not query.is_aggregate:
        solutions = _project(query.variables, solutions)
    if query.distinct:
        solutions = _distinct(solutions)
    if query.offset:
        solutions = solutions[query.offset:]
    if query.limit is not None:
        solutions = solutions[: query.limit]
    return solutions


def _project(variables: List[Variable], solutions: List[Bindings]) -> List[Bindings]:
    if not variables:  # SELECT *
        return solutions
    return [
        {v: s[v] for v in variables if v in s}
        for s in solutions
    ]


def _distinct(solutions: List[Bindings]) -> List[Bindings]:
    seen = set()
    unique: List[Bindings] = []
    for solution in solutions:
        key = frozenset(solution.items())
        if key not in seen:
            seen.add(key)
            unique.append(solution)
    return unique


def _order_key(
    expression: Expression, solution: Bindings, registry: FunctionRegistry
) -> Tuple[int, object]:
    try:
        value = evaluate_expression(expression, solution, registry)
    except EvaluationError:
        return (0, 0.0)  # unbound sorts first
    from repro.sparql.functions import _comparable

    try:
        comparable = _comparable(value)
    except EvaluationError:
        return (0, 0.0)
    if isinstance(comparable, bool):
        comparable = int(comparable)
    if isinstance(comparable, str):
        return (2, comparable)
    return (1, comparable)


def _aggregate(
    query: SelectQuery, solutions: List[Bindings], registry: FunctionRegistry
) -> List[Bindings]:
    groups: Dict[Tuple, List[Bindings]] = {}
    for solution in solutions:
        key = tuple(solution.get(v) for v in query.group_by)
        groups.setdefault(key, []).append(solution)
    if not groups and not query.group_by:
        groups[()] = []

    results: List[Bindings] = []
    for key, members in groups.items():
        row: Bindings = {
            v: term for v, term in zip(query.group_by, key) if term is not None
        }
        for aggregate in query.aggregates:
            try:
                row[aggregate.alias] = to_term(
                    _apply_aggregate(aggregate, members, registry)
                )
            except EvaluationError:
                # Aggregate evaluation error (e.g. MIN over incomparable
                # values, or MIN/MAX of an empty group): per SPARQL 1.1 the
                # aggregate's variable is simply unbound in the result row.
                pass
        results.append(row)
    return results


def _apply_aggregate(
    aggregate: Aggregate, members: List[Bindings], registry: FunctionRegistry
) -> Value:
    """One aggregate over one group's solutions, per SPARQL 1.1 section 18.5.

    Raises :class:`EvaluationError` when the aggregate itself errors; the
    caller leaves the alias unbound in that row.
    """
    if aggregate.argument is None:  # COUNT(*)
        if aggregate.function != "COUNT":
            raise SPARQLError(f"{aggregate.function}(*) is not valid")
        if aggregate.distinct:  # COUNT(DISTINCT *): distinct full solutions
            return len({frozenset(member.items()) for member in members})
        return len(members)

    values: List[Value] = []
    for member in members:
        try:
            values.append(
                evaluate_expression(aggregate.argument, member, registry)
            )
        except EvaluationError:
            continue
    if aggregate.distinct:
        seen = set()
        unique = []
        for value in values:
            marker = to_term(value)
            if marker not in seen:
                seen.add(marker)
                unique.append(value)
        values = unique

    if aggregate.function == "COUNT":
        return len(values)
    if aggregate.function in ("MIN", "MAX"):
        # Per SPARQL 1.1, Min/Max use the general "<" ordering (compare), not
        # numeric coercion — MIN over strings is the lexicographic minimum.
        # Empty group or incomparable values error -> alias unbound.
        if not values:
            raise EvaluationError(f"{aggregate.function} over empty group")
        operator = "<" if aggregate.function == "MIN" else ">"
        best = values[0]
        for value in values[1:]:
            if compare(operator, value, best):
                best = value
        return best

    from repro.sparql.functions import _numeric

    numbers = [_numeric(v) for v in values]
    if aggregate.function == "SUM":
        # Sum({}) = 0 per the spec (a typed xsd:integer zero).
        return sum(numbers) if numbers else 0
    if aggregate.function == "AVG":
        # Avg({}) = 0 per the spec.
        return sum(numbers) / len(numbers) if numbers else 0
    raise SPARQLError(f"unknown aggregate {aggregate.function}")
