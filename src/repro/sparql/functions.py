"""Built-in SPARQL filter functions and operator semantics.

Implements the effective-boolean-value rules, operator dispatch over typed
literals, and the scalar builtins the parser recognises. Errors during filter
evaluation are signalled with :class:`EvaluationError`, which the evaluator
treats as *false* for filters (per the SPARQL spec).
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Union

from repro.rdf.term import (
    BNode,
    IRI,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
)


class EvaluationError(Exception):
    """Type error or unbound variable during expression evaluation."""


Value = Union[Term, bool, int, float, str]


def effective_boolean_value(value: Value) -> bool:
    """SPARQL EBV: booleans as-is, numbers vs 0, strings vs empty."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and not (isinstance(value, float) and math.isnan(value))
    if isinstance(value, str):
        return len(value) > 0
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            return python_value
        if isinstance(python_value, (int, float)):
            return effective_boolean_value(python_value)
        return len(value.lexical) > 0
    raise EvaluationError(f"no effective boolean value for {value!r}")


def _numeric(value: Value) -> float:
    if isinstance(value, bool):
        raise EvaluationError("boolean is not numeric")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            raise EvaluationError("boolean literal is not numeric")
        if isinstance(python_value, (int, float)):
            return python_value
        # Plain literals holding numbers are accepted leniently.
        try:
            return float(value.lexical)
        except ValueError as exc:
            raise EvaluationError(f"not numeric: {value.lexical!r}") from exc
    raise EvaluationError(f"not numeric: {value!r}")


def _comparable(value: Value):
    """Reduce a value to something ordered comparisons understand."""
    if isinstance(value, Literal):
        return value.to_python()
    if isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, IRI):
        return value.value
    raise EvaluationError(f"not comparable: {value!r}")


def compare(operator: str, left: Value, right: Value) -> bool:
    """Evaluate a comparison operator with SPARQL-ish semantics."""
    if operator in ("=", "!="):
        equal = _equal(left, right)
        return equal if operator == "=" else not equal
    left_cmp, right_cmp = _comparable(left), _comparable(right)
    if isinstance(left_cmp, str) != isinstance(right_cmp, str):
        raise EvaluationError(
            f"cannot order {type(left_cmp).__name__} against {type(right_cmp).__name__}"
        )
    if operator == "<":
        return left_cmp < right_cmp
    if operator == "<=":
        return left_cmp <= right_cmp
    if operator == ">":
        return left_cmp > right_cmp
    if operator == ">=":
        return left_cmp >= right_cmp
    raise EvaluationError(f"unknown comparison {operator!r}")


def _equal(left: Value, right: Value) -> bool:
    if isinstance(left, (IRI, BNode)) or isinstance(right, (IRI, BNode)):
        return left == right
    try:
        left_cmp, right_cmp = _comparable(left), _comparable(right)
    except EvaluationError:
        return left == right
    if isinstance(left_cmp, str) != isinstance(right_cmp, str):
        return False
    return left_cmp == right_cmp


def arithmetic(operator: str, left: Value, right: Value) -> Value:
    a, b = _numeric(left), _numeric(right)
    if operator == "+":
        return a + b
    if operator == "-":
        return a - b
    if operator == "*":
        return a * b
    if operator == "/":
        if b == 0:
            raise EvaluationError("division by zero")
        return a / b
    raise EvaluationError(f"unknown arithmetic operator {operator!r}")


def _string_value(value: Value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, IRI):
        return value.value
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    raise EvaluationError(f"no string value for {value!r}")


# ---------------------------------------------------------------------------
# Builtin registry. Each builtin takes already-evaluated argument values.
# BOUND/IF/COALESCE are special-cased in the evaluator (lazy semantics).
# ---------------------------------------------------------------------------

def _builtin_str(args: List[Value]) -> str:
    _require_arity("STR", args, 1)
    return _string_value(args[0])


def _builtin_lang(args: List[Value]) -> str:
    _require_arity("LANG", args, 1)
    if isinstance(args[0], Literal):
        return args[0].language or ""
    raise EvaluationError("LANG requires a literal")


def _builtin_datatype(args: List[Value]) -> IRI:
    _require_arity("DATATYPE", args, 1)
    value = args[0]
    if isinstance(value, Literal):
        return IRI(value.datatype or "http://www.w3.org/2001/XMLSchema#string")
    raise EvaluationError("DATATYPE requires a literal")


def _builtin_regex(args: List[Value]) -> bool:
    if len(args) not in (2, 3):
        raise EvaluationError("REGEX takes 2 or 3 arguments")
    text = _string_value(args[0])
    pattern = _string_value(args[1])
    flags = 0
    if len(args) == 3 and "i" in _string_value(args[2]):
        flags |= re.IGNORECASE
    try:
        return re.search(pattern, text, flags) is not None
    except re.error as exc:
        raise EvaluationError(f"bad regex: {exc}") from exc


def _require_arity(name: str, args: List[Value], count: int) -> None:
    if len(args) != count:
        raise EvaluationError(f"{name} takes {count} argument(s), got {len(args)}")


def _numeric_unary(name: str, func: Callable[[float], float]):
    def builtin(args: List[Value]) -> float:
        _require_arity(name, args, 1)
        return func(_numeric(args[0]))

    return builtin


def _string_unary(name: str, func: Callable[[str], Value]):
    def builtin(args: List[Value]) -> Value:
        _require_arity(name, args, 1)
        return func(_string_value(args[0]))

    return builtin


def _string_binary(name: str, func: Callable[[str, str], Value]):
    def builtin(args: List[Value]) -> Value:
        _require_arity(name, args, 2)
        return func(_string_value(args[0]), _string_value(args[1]))

    return builtin


BUILTINS: Dict[str, Callable[[List[Value]], Value]] = {
    "STR": _builtin_str,
    "LANG": _builtin_lang,
    "DATATYPE": _builtin_datatype,
    "REGEX": _builtin_regex,
    "ABS": _numeric_unary("ABS", abs),
    "CEIL": _numeric_unary("CEIL", math.ceil),
    "FLOOR": _numeric_unary("FLOOR", math.floor),
    "ROUND": _numeric_unary("ROUND", round),
    "STRLEN": _string_unary("STRLEN", len),
    "UCASE": _string_unary("UCASE", str.upper),
    "LCASE": _string_unary("LCASE", str.lower),
    "CONTAINS": _string_binary("CONTAINS", lambda a, b: b in a),
    "STRSTARTS": _string_binary("STRSTARTS", lambda a, b: a.startswith(b)),
    "STRENDS": _string_binary("STRENDS", lambda a, b: a.endswith(b)),
    "ISIRI": lambda args: isinstance(args[0], IRI),
    "ISLITERAL": lambda args: isinstance(args[0], Literal),
    "ISNUMERIC": lambda args: isinstance(args[0], Literal) and args[0].is_numeric,
    "NOT": lambda args: not effective_boolean_value(args[0]),
}


def to_term(value: Value) -> Term:
    """Convert an evaluated expression value back to an RDF term."""
    if isinstance(value, (IRI, BNode, Literal)):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, str):
        return Literal(value)
    raise EvaluationError(f"cannot convert {value!r} to RDF term")
