"""Range partitioning of the id-row table over simulated cluster nodes.

The distributed engine's storage layout (experiment E25): the graph's E22
id-row table is split into ``partitions`` contiguous ranges of the *subject*
term-id space, each replicated ``replication`` ways onto cluster nodes via
the existing :meth:`repro.cluster.resources.ClusterSpec.place_partitions`
round-robin. Every triple lives in exactly one partition (the one owning its
subject id), which is the invariant that makes partition-local scans a true
disjoint cover of any pattern's extent — union of fragments == the
single-process scan, as a multiset.

The snapshot is keyed on ``graph.version`` like the vector engine's
``_id_table`` cache: mutations invalidate it, and within one version the
partition arrays are immutable, so replicas are by construction identical
and a failed-over read returns byte-identical rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.resources import ClusterSpec, Node
from repro.errors import SPARQLError
from repro.rdf.graph import Graph
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.vector.batch import Batch

#: Modelled storage width of one triple row: three int64 id cells.
BYTES_PER_ROW = 24


class RangePartitioner:
    """Equal-width ranges over ``[0, term_count)`` of subject term ids."""

    def __init__(self, term_count: int, partitions: int):
        if partitions < 1:
            raise SPARQLError(f"partitions must be >= 1, got {partitions}")
        self.partitions = partitions
        self.span = max(1, term_count)

    def partition_of(self, subject_id: int) -> int:
        """The partition owning *subject_id* (clamped: ids past the snapshot
        span — never produced by a same-version scan — fold into the last
        range rather than indexing out of bounds)."""
        if subject_id < 0:
            return 0
        pid = subject_id * self.partitions // self.span
        return min(pid, self.partitions - 1)

    def partition_column(self, subject_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`partition_of` over an id column."""
        pids = subject_ids * self.partitions // self.span
        return np.clip(pids, 0, self.partitions - 1)


class PartitionedTripleStore:
    """The graph's id rows, range-partitioned and replicated.

    ``sync()`` (re)builds the partition arrays when the graph version moved;
    ``place(nodes)`` computes the replica placement for one scheduler's node
    set through ``ClusterSpec.place_partitions`` (marking ``local_data`` so
    the locality machinery sees real partition residency).
    """

    def __init__(
        self,
        graph: Graph,
        spec: ClusterSpec,
        partitions: int = 4,
        replication: int = 2,
    ):
        if replication < 1:
            raise SPARQLError(f"replication must be >= 1, got {replication}")
        if replication > spec.node_count:
            raise SPARQLError(
                f"replication {replication} exceeds cluster size "
                f"{spec.node_count}"
            )
        self.graph = graph
        self.spec = spec
        self.partitions = partitions
        self.replication = replication
        self.partitioner = RangePartitioner(graph.term_count, partitions)
        self._version: Optional[int] = None
        self._columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.sync()

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Rebuild the per-partition arrays if the graph mutated."""
        if self._version == self.graph.version:
            return
        self.partitioner = RangePartitioner(
            self.graph.term_count, self.partitions
        )
        raw = self.graph.id_columns()
        table = tuple(
            np.frombuffer(column, dtype=np.int64).copy()
            if len(column)
            else np.empty(0, dtype=np.int64)
            for column in raw
        )
        subjects = table[0]
        pids = (
            self.partitioner.partition_column(subjects)
            if len(subjects)
            else np.empty(0, dtype=np.int64)
        )
        self._columns = []
        for pid in range(self.partitions):
            rows = np.flatnonzero(pids == pid)
            self._columns.append(
                (table[0][rows], table[1][rows], table[2][rows])
            )
        self._version = self.graph.version

    def place(self, nodes: List[Node]) -> Dict[int, List[int]]:
        """Replica placement for one execution's node set: pid -> node ids."""
        ids = [f"sparql:{pid}" for pid in range(self.partitions)]
        raw = self.spec.place_partitions(ids, nodes, copies=self.replication)
        return {
            pid: raw[f"sparql:{pid}"] for pid in range(self.partitions)
        }

    # ------------------------------------------------------------------
    # Partition access
    # ------------------------------------------------------------------

    def partition_rows(self, pid: int) -> int:
        return len(self._columns[pid][0])

    def partition_bytes(self, pid: int) -> int:
        return self.partition_rows(pid) * BYTES_PER_ROW

    def relevant_partitions(self, pattern: TriplePattern) -> List[int]:
        """Partitions that can hold matches: a constant, interned subject
        pins the scan to one range; a variable (or uninterned) subject scans
        them all (uninterned constants yield no partitions at all)."""
        subject = pattern.subject
        if isinstance(subject, Variable):
            return list(range(self.partitions))
        subject_id = self.graph.term_id(subject)
        if subject_id is None:
            return []
        return [self.partitioner.partition_of(subject_id)]

    def scan_partition(self, pid: int, pattern: TriplePattern) -> Batch:
        """The pattern's extent *within* one partition, as id columns.

        Same masking semantics as the single-process
        :func:`repro.sparql.vector.ops.scan_batch`, restricted to the
        partition's rows; the union over partitions is the full scan.
        """
        positions = (pattern.subject, pattern.predicate, pattern.object)
        constant_ids: List[Optional[int]] = []
        for position in positions:
            if isinstance(position, Variable):
                constant_ids.append(None)
                continue
            term_id = self.graph.term_id(position)
            if term_id is None:
                return Batch.empty(pattern.variables())
            constant_ids.append(term_id)

        table = self._columns[pid]
        var_slots = [
            (i, p) for i, p in enumerate(positions) if isinstance(p, Variable)
        ]
        mask: Optional[np.ndarray] = None
        for slot, constant_id in enumerate(constant_ids):
            if constant_id is None:
                continue
            hits = table[slot] == constant_id
            mask = hits if mask is None else (mask & hits)

        if not var_slots:
            # All-constant pattern: the triple lives in exactly one
            # partition, so at most one fragment contributes the unit row.
            matched = bool(mask.any()) if mask is not None else len(table[0]) > 0
            return Batch.unit() if matched else Batch.empty()

        rows = None if mask is None else np.flatnonzero(mask)
        columns: Dict[Variable, np.ndarray] = {}
        keep: Optional[np.ndarray] = None
        for slot, variable in var_slots:
            column = table[slot] if rows is None else table[slot][rows]
            if variable in columns:
                equal = columns[variable] == column
                keep = equal if keep is None else keep & equal
            else:
                columns[variable] = column
        nrows = len(table[0]) if rows is None else len(rows)
        batch = Batch(columns, nrows)
        if keep is not None:
            batch = batch.mask(keep)
        return batch
