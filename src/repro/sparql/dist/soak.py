"""The E25 distributed-chaos soak: correctness and scaling under fire.

One seeded campaign over one graph produces three verdicts:

* **scaling** — a fixed query pool runs clean (no faults) on a single
  partition and again range-partitioned across the cluster; the summed
  simulated makespan must shrink by at least ``min_scaling_ratio``, or the
  distribution layer is pure overhead;
* **chaos correctness** — ``chaos_queries`` runs execute under per-query
  seeded fault campaigns (node crashes, permanent node losses, stragglers,
  injected task failures, network partitions — horizon sized to ~1.5x the
  query's clean makespan so faults strike *mid-flight*, not before or
  after). Every run that completes must match the single-process vector
  engine exactly (multiset). Typed, retryable aborts
  (:class:`~repro.errors.PartitionUnavailable` when a partition loses every
  replica, :class:`~repro.errors.ClusterError` when the whole cluster
  dies) are tolerated and counted; a silently wrong answer or an
  unflagged partial result fails the soak outright. Every run — completed
  or aborted — must release its admission tickets exactly once;
* **recovery overhead** — chaos-vs-clean makespan over the runs that
  completed: what the retries, failovers and speculative twins cost.

The work model is deliberately row-dominated (``row_cost_s`` well above
``task_overhead_s``) so parallel fragments, not per-task constants, set
the makespan — the regime where range partitioning is supposed to pay.

``python -m repro.sparql.dist.soak --smoke`` runs the CI-sized campaign,
verifies every invariant above, and writes a ``BENCH_E25.json`` snapshot
for the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.errors import ClusterError, PartitionUnavailable
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observability
from repro.rdf import Graph
from repro.rdf.term import IRI, Literal
from repro.resilience.admission import AdmissionController
from repro.sparql import CompileOptions, evaluate
from repro.sparql.dist import DistRuntime, PartialResult


@dataclass(frozen=True)
class DistSoakConfig:
    """One campaign. Defaults are the CI smoke shape: large enough that
    every robustness path fires, small enough to run in seconds."""

    seed: int = 25
    triples: int = 360
    subjects: int = 72
    chaos_queries: int = 160
    min_completed: int = 100  #: the E25 acceptance floor
    node_count: int = 8
    cpu_slots_per_node: int = 2
    scale_partitions: int = 8
    replication: int = 2
    min_scaling_ratio: float = 1.5
    min_locality_rate: float = 0.5
    #: Row-dominated work model: fragments, not task constants, set makespan.
    row_cost_s: float = 5e-5
    task_overhead_s: float = 2e-4
    data_retry_backoff_s: float = 2e-3
    #: Per-query chaos rates; the horizon is derived per query.
    node_crash_prob: float = 0.3
    node_loss_prob: float = 0.15
    straggler_prob: float = 0.3
    task_failure_rate: float = 0.15
    network_partition_prob: float = 0.2
    horizon_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.chaos_queries < self.min_completed:
            raise ClusterError("soak cannot complete more queries than it runs")
        if self.scale_partitions < 2:
            raise ClusterError("scaling needs >= 2 partitions")
        if self.replication < 2:
            raise ClusterError(
                "chaos with permanent node losses needs replication >= 2"
            )

    def spec(self) -> ClusterSpec:
        return ClusterSpec(
            node_count=self.node_count,
            cpu_slots_per_node=self.cpu_slots_per_node,
        )


def build_graph(config: DistSoakConfig) -> Graph:
    """The shared dataset: typed subjects, numeric values, a link cycle."""
    graph = Graph()
    for i in range(config.triples):
        s = IRI(f"http://ex/s{i % config.subjects}")
        graph.add(s, IRI("http://ex/p"), Literal(str(i)))
        graph.add(s, IRI("http://ex/type"), IRI(f"http://ex/C{i % 3}"))
        if i % 2 == 0:
            graph.add(
                s,
                IRI("http://ex/q"),
                IRI(f"http://ex/s{(i + 1) % config.subjects}"),
            )
    return graph


#: The pool covers every distributed operator: pruned and full scans,
#: broadcast and shuffle joins, OPTIONAL, UNION, BIND, FILTER, DISTINCT,
#: grouped aggregation, and ASK (whose partial results must be refused).
QUERY_POOL: Tuple[str, ...] = (
    "SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }",
    "SELECT ?o WHERE { <http://ex/s3> <http://ex/p> ?o }",
    "SELECT ?s ?o WHERE { ?s <http://ex/type> <http://ex/C1> . "
    "?s <http://ex/p> ?o }",
    "SELECT ?a ?b ?c WHERE { ?a <http://ex/q> ?b . "
    "?b <http://ex/type> ?c }",
    "SELECT ?a ?o WHERE { ?a <http://ex/q> ?b . ?b <http://ex/q> ?c . "
    "?c <http://ex/p> ?o }",
    "SELECT ?s ?b WHERE { ?s <http://ex/type> ?c "
    "OPTIONAL { ?s <http://ex/q> ?b } }",
    "SELECT ?x WHERE { { ?x <http://ex/type> <http://ex/C0> } UNION "
    "{ ?x <http://ex/type> <http://ex/C2> } }",
    "SELECT ?s ?v WHERE { ?s <http://ex/p> ?o . BIND(?o AS ?v) }",
    "SELECT ?s WHERE { ?s <http://ex/p> ?o . "
    "FILTER(?s != <http://ex/s0>) }",
    "SELECT DISTINCT ?s WHERE { ?s <http://ex/p> ?o }",
    "SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s <http://ex/type> ?c } "
    "GROUP BY ?c",
    "ASK { ?s <http://ex/q> ?o }",
)

#: Chaos runs cycle layouts so both join strategies and several partition
#: counts see faults: (partitions, broadcast_threshold_rows).
CHAOS_LAYOUTS: Tuple[Tuple[int, float], ...] = (
    (8, 64.0),
    (4, 1.0),
    (5, 64.0),
    (8, 1.0),
    (3, 64.0),
)


def canonical(result) -> object:
    """Order-free comparison key: ASK booleans stay booleans, SELECT rows
    become a sorted multiset of sorted (variable, term) pairs."""
    if isinstance(result, bool):
        return result
    return sorted(
        tuple(sorted((v.name, str(t)) for v, t in row.items()))
        for row in result
    )


@dataclass
class DistSoakReport:
    """The campaign ledger; :meth:`verify` is the E25 acceptance gate."""

    config: DistSoakConfig
    # scaling (clean runs over the whole pool)
    base_makespan_s: float = 0.0  #: single-partition total
    scaled_makespan_s: float = 0.0  #: scale_partitions total
    locality_rate: float = 0.0  #: mean clean locality at scale
    # chaos
    chaos_runs: int = 0
    completed: int = 0
    typed_aborts: int = 0  #: PartitionUnavailable (retryable, per-partition)
    stranded_aborts: int = 0  #: ClusterError (whole cluster died)
    wrong_answers: int = 0
    unflagged_partials: int = 0
    ticket_leaks: int = 0
    chaos_makespan_s: float = 0.0  #: completed chaos runs only
    chaos_reference_s: float = 0.0  #: same queries' clean makespans
    # fault/recovery evidence, summed over every chaos run
    fault_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def scaling_ratio(self) -> float:
        if self.scaled_makespan_s <= 0:
            return 0.0
        return self.base_makespan_s / self.scaled_makespan_s

    @property
    def recovery_overhead(self) -> float:
        """Chaos-vs-clean makespan on the runs that completed (>= 1.0-ish;
        speculation can occasionally win races and land below 1)."""
        if self.chaos_reference_s <= 0:
            return 0.0
        return self.chaos_makespan_s / self.chaos_reference_s

    def count(self, name: str, amount: float) -> None:
        if amount:
            self.fault_counters[name] = (
                self.fault_counters.get(name, 0) + amount
            )

    def verify(self) -> None:
        """Every E25 acceptance invariant; any violation fails the soak."""
        config = self.config
        if self.wrong_answers:
            raise ClusterError(
                f"{self.wrong_answers} chaos runs returned wrong answers"
            )
        if self.unflagged_partials:
            raise ClusterError(
                f"{self.unflagged_partials} partial results escaped without "
                "the caller opting in"
            )
        if self.ticket_leaks:
            raise ClusterError(
                f"{self.ticket_leaks} runs leaked or double-released "
                "admission tickets"
            )
        if self.completed < config.min_completed:
            raise ClusterError(
                f"only {self.completed} of {self.chaos_runs} chaos runs "
                f"completed; the floor is {config.min_completed}"
            )
        accounted = (
            self.completed + self.typed_aborts + self.stranded_aborts
        )
        if accounted != self.chaos_runs:
            raise ClusterError(
                f"accounting leak: {self.chaos_runs} runs, "
                f"{accounted} outcomes"
            )
        if self.scaling_ratio < config.min_scaling_ratio:
            raise ClusterError(
                f"scaling ratio {self.scaling_ratio:.3g} below the "
                f"{config.min_scaling_ratio} floor — partitioning is not "
                "paying for itself"
            )
        if self.locality_rate < config.min_locality_rate:
            raise ClusterError(
                f"clean locality rate {self.locality_rate:.3g} below "
                f"{config.min_locality_rate}"
            )
        # The chaos must demonstrably bite, or the correctness verdict
        # is vacuous: injected faults and exercised recovery paths.
        injected = sum(
            self.fault_counters.get(name, 0)
            for name in ("node_crashes", "task_failures")
        )
        if injected == 0:
            raise ClusterError("chaos campaign injected no faults")
        recovery = sum(
            self.fault_counters.get(name, 0)
            for name in (
                "dist.duplicate_publishes",
                "dist.recovered_outputs",
                "dist.replica_failovers",
                "dist.data_retries",
                "speculative_launches",
            )
        )
        if recovery == 0:
            raise ClusterError(
                "no recovery path fired — the campaign proves nothing"
            )

    def summary(self) -> Dict[str, float]:
        return {
            "chaos_runs": float(self.chaos_runs),
            "completed": float(self.completed),
            "typed_aborts": float(self.typed_aborts),
            "stranded_aborts": float(self.stranded_aborts),
            "wrong_answers": float(self.wrong_answers),
            "unflagged_partials": float(self.unflagged_partials),
            "ticket_leaks": float(self.ticket_leaks),
            "scaling_ratio": self.scaling_ratio,
            "locality_rate": self.locality_rate,
            "recovery_overhead": self.recovery_overhead,
            "base_makespan_s": self.base_makespan_s,
            "scaled_makespan_s": self.scaled_makespan_s,
        }


class _DistSoak:
    def __init__(
        self, config: DistSoakConfig, obs: Optional[Observability] = None
    ):
        self.config = config
        self.obs = obs
        self.graph = build_graph(config)
        self.report = DistSoakReport(config=config)
        self.expected = {
            text: canonical(
                evaluate(
                    self.graph,
                    text,
                    options=CompileOptions(engine="vector"),
                )
            )
            for text in QUERY_POOL
        }
        self.clean_makespans: Dict[str, float] = {}

    def _runtime(self, partitions: int, threshold: float = 64.0,
                 injector=None, admission=None) -> DistRuntime:
        config = self.config
        return DistRuntime(
            self.graph,
            spec=config.spec(),
            partitions=partitions,
            replication=config.replication,
            broadcast_threshold_rows=threshold,
            speculation=True,
            blacklist_after=3,
            row_cost_s=config.row_cost_s,
            task_overhead_s=config.task_overhead_s,
            data_retry_backoff_s=config.data_retry_backoff_s,
            injector=injector,
            admission=admission,
            obs=self.obs,
        )

    def _run(self, text: str, runtime: DistRuntime):
        result = evaluate(
            self.graph,
            text,
            options=CompileOptions(engine="dist", dist=runtime),
            obs=self.obs,
        )
        return result, runtime.last_report

    # -- phase 1: clean scaling ----------------------------------------

    def run_scaling(self) -> None:
        report = self.report
        locality: List[float] = []
        for text in QUERY_POOL:
            result, base = self._run(text, self._runtime(partitions=1))
            assert canonical(result) == self.expected[text], text
            report.base_makespan_s += base.makespan_s
            result, scaled = self._run(
                text, self._runtime(partitions=self.config.scale_partitions)
            )
            assert canonical(result) == self.expected[text], text
            report.scaled_makespan_s += scaled.makespan_s
            self.clean_makespans[text] = scaled.makespan_s
            locality.append(scaled.locality_rate)
        report.locality_rate = sum(locality) / len(locality)

    # -- phase 2: seeded chaos -----------------------------------------

    def _chaos_injector(self, index: int, horizon_s: float) -> FaultInjector:
        config = self.config
        plan = FaultPlan.chaos(
            seed=config.seed * 100003 + index,
            node_count=config.node_count,
            node_crash_prob=config.node_crash_prob,
            node_loss_prob=config.node_loss_prob,
            straggler_prob=config.straggler_prob,
            task_failure_rate=config.task_failure_rate,
            network_partition_prob=config.network_partition_prob,
            network_partition_duration_s=horizon_s / 4.0,
            horizon_s=horizon_s,
        )
        return FaultInjector(plan)

    def run_chaos(self) -> None:
        config = self.config
        report = self.report
        for index in range(config.chaos_queries):
            text = QUERY_POOL[index % len(QUERY_POOL)]
            partitions, threshold = CHAOS_LAYOUTS[index % len(CHAOS_LAYOUTS)]
            horizon = config.horizon_factor * self.clean_makespans[text]
            admission = AdmissionController(max_in_flight=256, max_queue=1024)
            runtime = self._runtime(
                partitions,
                threshold,
                injector=self._chaos_injector(index, horizon),
                admission=admission,
            )
            report.chaos_runs += 1
            try:
                result, run = self._run(text, runtime)
            except PartitionUnavailable as fault:
                if not fault.retryable:
                    raise ClusterError(
                        f"PartitionUnavailable must be retryable: {fault}"
                    )
                report.typed_aborts += 1
                self._audit(runtime.last_report)
                continue
            except ClusterError:
                report.stranded_aborts += 1
                self._audit(runtime.last_report)
                continue
            if isinstance(result, PartialResult):
                report.unflagged_partials += 1
                continue
            if canonical(result) != self.expected[text]:
                report.wrong_answers += 1
                continue
            report.completed += 1
            report.chaos_makespan_s += run.makespan_s
            report.chaos_reference_s += self.clean_makespans[text]
            self._audit(run)

    def _audit(self, run) -> None:
        """Per-run bookkeeping: exactly-once tickets, fault evidence."""
        report = self.report
        if run is None:
            return
        if run.tickets_issued != run.tickets_released:
            report.ticket_leaks += 1
        report.count("node_crashes", run.node_crashes)
        report.count("task_failures", run.task_failures)
        report.count("speculative_launches", run.speculative_launches)
        for name in (
            "dist.duplicate_publishes",
            "dist.recovered_outputs",
            "dist.replica_failovers",
            "dist.data_retries",
            "dist.unreachable_reads",
            "dist.remote_reads",
            "dist.partitions_unavailable",
            "dist.aborts",
        ):
            report.count(name, run.counters.get(name, 0))

    def run(self) -> DistSoakReport:
        self.run_scaling()
        self.run_chaos()
        return self.report


def run_dist_soak(
    config: DistSoakConfig, obs: Optional[Observability] = None
) -> DistSoakReport:
    """Run one deterministic campaign; the report is verify()-able."""
    return _DistSoak(config, obs=obs).run()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sparql.dist.soak [--smoke] [--seed N]``"""
    import argparse

    parser = argparse.ArgumentParser(
        description="E25 distributed-chaos soak: scaling + chaos correctness"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="short CI-sized run")
    parser.add_argument("--seed", type=int, default=25)
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args(argv)
    queries = args.queries
    if queries is None:
        queries = 160 if args.smoke else 240
    config = DistSoakConfig(seed=args.seed, chaos_queries=queries)
    obs = Observability(clock=lambda: 0.0)
    report = run_dist_soak(config, obs=obs)
    report.verify()
    print("[soak] " + " ".join(
        f"{key}={value:.5g}" for key, value in report.summary().items()
    ))
    print("[faults] " + " ".join(
        f"{key}={value:.5g}"
        for key, value in sorted(report.fault_counters.items())
    ))
    from repro.obs import bench_snapshot_path, write_snapshot

    meta = {
        "experiment": "E25",
        "seed": config.seed,
        "partitions": config.scale_partitions,
        "replication": config.replication,
        "node_count": config.node_count,
        "min_completed": config.min_completed,
        "recovery_overhead": report.recovery_overhead,
        "replica_failovers": report.fault_counters.get(
            "dist.replica_failovers", 0
        ),
        "duplicate_publishes": report.fault_counters.get(
            "dist.duplicate_publishes", 0
        ),
        "recovered_outputs": report.fault_counters.get(
            "dist.recovered_outputs", 0
        ),
        "node_crashes": report.fault_counters.get("node_crashes", 0),
        "task_failures": report.fault_counters.get("task_failures", 0),
        "speculative_launches": report.fault_counters.get(
            "speculative_launches", 0
        ),
    }
    meta.update(report.summary())
    path = write_snapshot(bench_snapshot_path("E25"), obs, meta=meta)
    print(f"[obs] snapshot written: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
