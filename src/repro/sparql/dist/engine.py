"""Fault-tolerant distributed execution of vector plans (experiment E25).

:class:`DistRuntime` owns the partitioned store and the knobs; each query
gets a fresh deterministic :class:`~repro.cluster.scheduler.Scheduler` run
(:class:`_DistRun`) that turns the physical plan into a DAG of tasks and
drives it to a settled answer — or a typed failure — under whatever the
fault injector throws at it.

Robustness model
----------------

* **Idempotent output commit.** Every task publishes its result into a
  :class:`ShuffleStore` under a stable ``(stage, index)`` key;
  first-write-wins. The scheduler's ``on_attempt_end`` hook fires for every
  attempt that burned its slot — including attempts the injector then fails
  (a worker that finished the work, wrote its output, and died before
  reporting) and speculative twins — so re-execution *will* try to commit
  twice; the store refuses the duplicate and counts it. Rows are therefore
  never double-counted, and budget charging (done at first commit) stays
  exactly-once.
* **Replica failover.** A scan task reads its partition from its own node
  when that node holds a live replica, otherwise from the lowest-id live,
  reachable replica (paying the transfer). A live-but-partitioned replica
  set is *transient*: the driver resubmits a fresh task after a backoff,
  up to ``max_data_retries``. No live replica at all is *permanent*:
  :class:`~repro.errors.PartitionUnavailable` (typed, retryable), or — only
  with ``allow_partial=True`` — an explicitly flagged
  :class:`PartialResult` missing that partition.
* **Committed-output recovery.** A task abandoned by the scheduler (retries
  exhausted, dependency cascade) whose output *was* committed settles from
  the store; one with no output is resubmitted fresh (its compute is
  deterministic and side-effect-free until commit), bounded by
  ``max_data_retries``.
* **Budget kill.** Every task's compute starts at a
  :class:`~repro.sparql.governor.QueryBudget` checkpoint; the first
  budget/cancel error aborts the run, which cancels all in-flight tasks
  through :meth:`Scheduler.cancel_task` — admission tickets are released
  exactly once, audited by ``tickets_issued == tickets_released``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.cluster.resources import ClusterSpec
from repro.cluster.scheduler import Scheduler, Task
from repro.errors import ClusterError, PartitionUnavailable, SPARQLError
from repro.sparql.algebra import CompileOptions, ExtendOp, FilterOp
from repro.sparql.ast import AskQuery, SelectQuery
from repro.sparql.vector.batch import UNBOUND, Batch
from repro.sparql.vector.engine import (
    _Exec,
    _execute,
    compile_vector_plan,
    finish_select,
)
from repro.sparql.vector.expr import bind_column, filter_keep_mask
from repro.sparql.vector.ops import hash_join
from repro.sparql.dist.partition import PartitionedTripleStore
from repro.sparql.dist.plan import (
    PBroadcastJoin,
    PLocal,
    PMap,
    PNode,
    PScan,
    PShuffleJoin,
    PUnion,
    build_plan,
)

#: Modelled bytes per binding cell, matching the governor's accounting.
BYTES_PER_CELL = 8

#: Fixed odd radix for the shuffle's polynomial key packing: the
#: repartitioning analogue of the join's mixed-radix ``_pack_keys``, but with
#: a radix agreed up front so every map task — on any node, any attempt —
#: sends equal keys to the same bucket.
_HASH_RADIX = np.uint64(0x9E3779B97F4A7C15)

#: Sentinel a compute returns for "no output this attempt, retry data-plane".
_RETRY = object()


def bucket_codes(matrix: np.ndarray, buckets: int) -> np.ndarray:
    """Repartition bucket per row of an (n, k) key-id matrix.

    Fixed-radix polynomial over uint64 (wraparound is the modulus), so the
    mapping is a pure function of the key ids: deterministic across nodes,
    attempts, and fragment boundaries.
    """
    codes = np.zeros(len(matrix), dtype=np.uint64)
    for column in range(matrix.shape[1]):
        codes = codes * _HASH_RADIX + matrix[:, column].astype(np.uint64)
    return (codes % np.uint64(buckets)).astype(np.int64)


class ShuffleStore:
    """Idempotent, append-only task-output store (first write wins).

    Models durable shuffle/broadcast output files with a commit protocol:
    a second commit under the same key — a retried or speculative attempt —
    is refused and counted, never merged.
    """

    def __init__(self) -> None:
        self._outputs: Dict[Tuple, Any] = {}
        self.publishes = 0
        self.duplicate_publishes = 0

    def publish(self, key: Tuple, payload: Any) -> bool:
        if key in self._outputs:
            self.duplicate_publishes += 1
            return False
        self._outputs[key] = payload
        self.publishes += 1
        return True

    def register_duplicate(self, key: Tuple) -> None:
        """A re-attempt arrived with the output already committed."""
        self.duplicate_publishes += 1

    def has(self, key: Tuple) -> bool:
        return key in self._outputs

    def get(self, key: Tuple) -> Any:
        return self._outputs[key]


@dataclass
class Fragment:
    """One settled piece of a stage's output.

    ``payload`` is a :class:`Batch` for most stages, or a tuple of per-bucket
    batches for shuffle map outputs. ``home`` is the node that produced it
    (None for driver-side inline fragments), feeding downstream locality.
    """

    payload: Any
    home: Optional[int] = None

    @property
    def batch(self) -> Batch:
        return self.payload


def _payload_batches(payload: Any) -> List[Batch]:
    if isinstance(payload, Batch):
        return [payload]
    return list(payload)


class PartialResult(list):
    """SELECT solutions computed with some partitions missing.

    Only ever returned when the caller opted in with ``allow_partial=True``
    (federation's ``complete=False`` convention): ``complete`` is False and
    ``missing_partitions`` names the ranges that had no live replica.
    """

    complete = False

    def __init__(self, rows: Sequence, missing_partitions: Sequence[int]):
        super().__init__(rows)
        self.missing_partitions = tuple(sorted(set(missing_partitions)))


@dataclass
class DistReport:
    """Per-query execution summary (the soak's raw material)."""

    makespan_s: float = 0.0
    locality_rate: float = 1.0
    tasks_completed: int = 0
    task_failures: int = 0
    tasks_cancelled: int = 0
    speculative_launches: int = 0
    node_crashes: int = 0
    bytes_transferred: float = 0.0
    publishes: int = 0
    duplicate_publishes: int = 0
    tickets_issued: int = 0
    tickets_released: int = 0
    missing_partitions: Tuple[int, ...] = ()
    counters: Dict[str, float] = field(default_factory=dict)


class DistRuntime:
    """The distributed engine's long-lived state and configuration.

    Attach one to :class:`~repro.sparql.algebra.CompileOptions` via
    ``CompileOptions(engine="dist", dist=runtime)``; like ``budget`` it is
    request/runtime state and never participates in plan-cache keys.
    """

    def __init__(
        self,
        graph,
        spec: Optional[ClusterSpec] = None,
        partitions: int = 4,
        replication: int = 2,
        broadcast_threshold_rows: float = 64.0,
        shuffle_buckets: Optional[int] = None,
        locality_wait_s: float = 0.002,
        speculation: bool = True,
        speculation_factor: float = 2.0,
        blacklist_after: Optional[int] = None,
        max_retries: int = 3,
        max_data_retries: int = 8,
        data_retry_backoff_s: float = 0.05,
        task_overhead_s: float = 1e-3,
        row_cost_s: float = 2e-6,
        injector=None,
        admission=None,
        obs=None,
        allow_partial: bool = False,
    ):
        self.graph = graph
        self.spec = spec if spec is not None else ClusterSpec()
        self.store = PartitionedTripleStore(
            graph, self.spec, partitions=partitions, replication=replication
        )
        self.broadcast_threshold_rows = broadcast_threshold_rows
        self.shuffle_buckets = (
            shuffle_buckets if shuffle_buckets is not None else partitions
        )
        self.locality_wait_s = locality_wait_s
        self.speculation = speculation
        self.speculation_factor = speculation_factor
        self.blacklist_after = blacklist_after
        self.max_retries = max_retries
        self.max_data_retries = max_data_retries
        self.data_retry_backoff_s = data_retry_backoff_s
        self.task_overhead_s = task_overhead_s
        self.row_cost_s = row_cost_s
        self.injector = injector
        self.admission = admission
        self.obs = obs
        self.allow_partial = allow_partial
        self.last_report: Optional[DistReport] = None

    def evaluate(
        self,
        tree,
        query: Union[SelectQuery, AskQuery],
        registry,
        options: Optional[CompileOptions],
        obs=None,
    ) -> Union[List, bool]:
        """Execute a compiled vector tree distributedly; finish like E22."""
        self.store.sync()
        budget = options.budget if options is not None else None
        ctx = _Exec(self.graph, registry, obs, budget)
        plan = build_plan(
            tree,
            self.graph,
            self.broadcast_threshold_rows,
            self.shuffle_buckets,
        )
        run = _DistRun(self, ctx)
        try:
            batch = run.execute(plan)
        finally:
            self.last_report = run.report()
        if isinstance(query, AskQuery):
            answer = batch.nrows > 0
            if run.missing and not answer:
                # A missing partition could hold the witness: a bare False
                # cannot carry a partial-result flag, so refuse it.
                pid = sorted(run.missing)[0]
                raise PartitionUnavailable(
                    f"ASK is inconclusive with partition {pid} unavailable",
                    partition=pid,
                    replicas=run.placement.get(pid, ()),
                )
            return answer
        rows = finish_select(query, batch, ctx)
        if run.missing:
            return PartialResult(rows, run.missing)
        return rows


class _DistRun:
    """One query's scheduler run: stage wiring, failover, settlement."""

    def __init__(self, runtime: DistRuntime, ctx: _Exec):
        self.runtime = runtime
        self.store = runtime.store
        self.ctx = ctx
        self.budget = ctx.budget
        self.scheduler = Scheduler(
            runtime.spec,
            locality_wait_s=runtime.locality_wait_s,
            injector=runtime.injector,
            crash_recovery=True,
            speculation=runtime.speculation,
            speculation_factor=runtime.speculation_factor,
            blacklist_after=runtime.blacklist_after,
            max_retries=runtime.max_retries,
            admission=runtime.admission,
        )
        self.placement = self.store.place(self.scheduler.nodes)
        self.shuffle = ShuffleStore()
        self.live: Dict[int, Task] = {}
        self.error: Optional[BaseException] = None
        self.missing: List[int] = []
        self.result_batch: Optional[Batch] = None
        self.counters: Dict[str, float] = {}
        self._stage_seq = 0

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------

    def _label(self, kind: str) -> str:
        self._stage_seq += 1
        return f"{kind}.{self._stage_seq}"

    def _count(self, name: str, amount: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        obs = self.runtime.obs
        if obs is not None and getattr(obs, "enabled", False):
            obs.metrics.counter(name).inc(amount)

    def _reachable(self, a: int, b: int) -> bool:
        injector = self.runtime.injector
        if injector is None:
            return True
        return injector.reachable(a, b, self.scheduler.simulation.now)

    def _account_comm(self, nbytes: float) -> None:
        if nbytes > 0:
            self.scheduler.metrics.inc("bytes_transferred", nbytes)
            self._count("dist.comm_bytes", nbytes)

    def _charge_payload(self, payload: Any, where: str) -> None:
        if self.budget is None:
            return
        for batch in _payload_batches(payload):
            if batch.nrows:
                self.budget.charge_rows(
                    batch.nrows, max(1, len(batch.columns)), where
                )

    def _release_fragments(self, fragments: Sequence[Fragment]) -> None:
        if self.budget is None:
            return
        rows = 0
        nbytes = 0
        for fragment in fragments:
            for batch in _payload_batches(fragment.payload):
                rows += batch.nrows
                nbytes += batch.nrows * max(1, len(batch.columns)) * BYTES_PER_CELL
        if rows or nbytes:
            self.budget.release_to(
                (
                    max(0, self.budget.resident_rows - rows),
                    max(0, self.budget.resident_bytes - nbytes),
                )
            )

    @staticmethod
    def _fragment_bytes(batch: Batch) -> float:
        return float(batch.nrows * max(1, len(batch.columns)) * BYTES_PER_CELL)

    def _checkpoint(self, where: str) -> None:
        if self.budget is not None:
            self.budget.checkpoint(where)

    # ------------------------------------------------------------------
    # Abort path
    # ------------------------------------------------------------------

    def _abort(self, error: BaseException) -> None:
        """First error wins: cancel every in-flight task (their admission
        tickets are released exactly once through the scheduler's terminal
        paths) and let the drain settle."""
        if self.error is not None:
            return
        self.error = error
        self._count("dist.aborts")
        for task in list(self.live.values()):
            self.scheduler.cancel_task(task)
        self.live.clear()

    # ------------------------------------------------------------------
    # Unit submission: the idempotent-commit task wrapper
    # ------------------------------------------------------------------

    def _submit_unit(
        self,
        label: str,
        index: int,
        spec: Dict[str, Any],
        settled: Callable[[int, Any, Optional[int]], None],
    ) -> Task:
        key = (label, index)
        state: Dict[str, Any] = {"retry": None, "attempts": 0}
        compute = spec["compute"]

        def attempt_end(task: Task, failed: bool) -> None:
            if self.error is not None:
                return
            if self.shuffle.has(key):
                # A previous attempt (or a zombie twin) already committed:
                # the commit protocol refuses the duplicate output.
                self.shuffle.register_duplicate(key)
                self._count("dist.duplicate_publishes")
                return
            state["retry"] = None
            try:
                payload = compute(task, state)
            except Exception as exc:  # typed engine errors abort the query
                self._abort(exc)
                return
            if payload is not _RETRY:
                self.shuffle.publish(key, payload)

        def settle(task: Task, abandoned: bool) -> None:
            self.live.pop(task.task_id, None)
            if self.error is not None:
                return
            if self.shuffle.has(key):
                # Committed — possibly by an attempt the scheduler gave up
                # on: recover from the durable output either way.
                if abandoned:
                    self._count("dist.recovered_outputs")
                settled(index, self.shuffle.get(key), task.ran_on)
                return
            reason = state["retry"]
            if reason == "lost":
                self._fragment_lost(spec, index, settled)
                return
            if state["attempts"] >= self.runtime.max_data_retries:
                if spec.get("pid") is not None:
                    self._fragment_lost(spec, index, settled)
                else:
                    self._abort(
                        ClusterError(
                            f"distributed stage {label!r} unit {index} gave "
                            f"up after {state['attempts']} data-plane retries"
                        )
                    )
                return
            state["attempts"] += 1
            self._count("dist.data_retries")
            delay = self.runtime.data_retry_backoff_s * state["attempts"]

            def relaunch() -> None:
                if self.error is not None:
                    return
                if self.shuffle.has(key):
                    settled(index, self.shuffle.get(key), None)
                    return
                launch(())

            self.scheduler.simulation.schedule(delay, relaunch)

        def launch(depends_on: Sequence[int]) -> Task:
            task = self.scheduler.make_task(
                work_s=spec["work_s"],
                input_bytes=float(spec.get("input_bytes", 0.0)),
                preferred_nodes=set(spec.get("preferred") or ()),
            )
            if depends_on:
                task.depends_on = set(depends_on)
            task.on_attempt_end = attempt_end
            task.on_complete = lambda t: settle(t, False)
            task.on_abandon = lambda t: settle(t, True)
            self.live[task.task_id] = task
            self._count("dist.tasks")
            try:
                self.scheduler.submit(task)
            except Exception as exc:  # admission shed, etc.
                self.live.pop(task.task_id, None)
                self._abort(exc)
            return task

        return launch(spec.get("depends_on") or ())

    def _fragment_lost(self, spec, index, settled) -> None:
        """Every replica of a scan unit's partition is gone (or stayed
        unreachable past the retry budget): partial result or typed error."""
        pid = spec.get("pid")
        owners = self.placement.get(pid, [])
        self._count("dist.partitions_unavailable")
        if self.runtime.allow_partial:
            self.missing.append(pid)
            settled(index, Batch.empty(spec.get("variables", ())), None)
            return
        self._abort(
            PartitionUnavailable(
                f"partition {pid} has no usable replica "
                f"(placement {sorted(owners)})",
                partition=pid,
                replicas=owners,
            )
        )

    def _run_stage(
        self,
        label: str,
        specs: List[Dict[str, Any]],
        done: Callable[[List[Fragment]], None],
    ) -> List[Task]:
        """Submit one task per spec; fire ``done`` when every unit settles."""
        if not specs:
            done([])
            return []
        fragments: List[Optional[Fragment]] = [None] * len(specs)
        remaining = [len(specs)]

        def settled(index: int, payload: Any, home: Optional[int]) -> None:
            if fragments[index] is not None:
                return
            fragments[index] = Fragment(payload, home)
            remaining[0] -= 1
            if remaining[0] == 0 and self.error is None:
                done(list(fragments))  # type: ignore[arg-type]

        return [
            self._submit_unit(label, index, spec, settled)
            for index, spec in enumerate(specs)
        ]

    # ------------------------------------------------------------------
    # Stage builders
    # ------------------------------------------------------------------

    def _start(self, node: PNode, done: Callable[[List[Fragment]], None]) -> None:
        if isinstance(node, PScan):
            self._start_scan(node, done)
        elif isinstance(node, PLocal):
            self._start_local(node, done)
        elif isinstance(node, PMap):
            self._start_map(node, done)
        elif isinstance(node, PUnion):
            self._start_union(node, done)
        elif isinstance(node, PBroadcastJoin):
            self._start_broadcast_join(node, done)
        elif isinstance(node, PShuffleJoin):
            self._start_shuffle_join(node, done)
        else:  # pragma: no cover - planner emits only the above
            raise SPARQLError(f"unknown plan node {type(node).__name__}")

    def _start_scan(self, node: PScan, done) -> None:
        pattern = node.op.pattern
        pids = self.store.relevant_partitions(pattern)
        if not pids:
            # Constant subject the graph never interned: empty, inline.
            done([Fragment(Batch.empty(pattern.variables()), None)])
            return
        label = self._label("scan")
        specs = []
        for pid in pids:
            specs.append(
                {
                    "pid": pid,
                    "variables": pattern.variables(),
                    "compute": self._make_scan_compute(pid, pattern),
                    "work_s": self.runtime.task_overhead_s
                    + self.store.partition_rows(pid) * self.runtime.row_cost_s,
                    "input_bytes": float(self.store.partition_bytes(pid)),
                    "preferred": set(self.placement[pid]),
                }
            )
        self._count("dist.scan_stages")
        self._run_stage(label, specs, done)

    def _make_scan_compute(self, pid: int, pattern):
        def compute(task: Task, state: Dict[str, Any]):
            self._checkpoint("dist.scan")
            owners = self.placement[pid]
            dead = self.scheduler.dead_nodes
            live_owners = [n for n in owners if n not in dead]
            if not live_owners:
                state["retry"] = "lost"
                return _RETRY
            node_id = task.ran_on
            if node_id not in live_owners:
                reachable = sorted(
                    n for n in live_owners if self._reachable(node_id, n)
                )
                if not reachable:
                    # Live replicas exist but the network keeps them away:
                    # transient — back off and try again.
                    state["retry"] = "unreachable"
                    self._count("dist.unreachable_reads")
                    return _RETRY
                self._count("dist.remote_reads")
                if node_id in owners:
                    # This node's own copy died under the task: failover to
                    # a surviving replica, paying the transfer again.
                    self._count("dist.replica_failovers")
                    self._account_comm(float(self.store.partition_bytes(pid)))
            batch = self.store.scan_partition(pid, pattern)
            self._charge_payload(batch, "dist.scan")
            return batch

        return compute

    def _start_local(self, node: PLocal, done) -> None:
        label = self._label("local")

        def compute(task: Task, state):
            # The vector engine's _execute does its own budget governance.
            return _execute(node.op, self.ctx)

        self._count("dist.local_stages")
        self._run_stage(
            label,
            [
                {
                    "compute": compute,
                    "work_s": self.runtime.task_overhead_s,
                    "preferred": set(),
                }
            ],
            done,
        )

    def _start_map(self, node: PMap, done) -> None:
        def child_done(fragments: List[Fragment]) -> None:
            if self.error is not None:
                return
            label = self._label("map")
            specs = []
            for fragment in fragments:
                specs.append(
                    {
                        "compute": self._make_map_compute(node.op, fragment),
                        "work_s": self.runtime.task_overhead_s
                        + fragment.batch.nrows * self.runtime.row_cost_s,
                        "input_bytes": self._fragment_bytes(fragment.batch),
                        "preferred": (
                            {fragment.home} if fragment.home is not None else set()
                        ),
                    }
                )

            def stage_done(out: List[Fragment]) -> None:
                self._release_fragments(fragments)
                done(out)

            self._run_stage(label, specs, stage_done)

        self._start(node.child, child_done)

    def _make_map_compute(self, op, fragment: Fragment):
        def compute(task: Task, state):
            self._checkpoint(f"dist.{type(op).__name__}")
            batch = fragment.batch
            if isinstance(op, FilterOp):
                if batch.nrows == 0:
                    out = batch
                else:
                    keep = filter_keep_mask(
                        op.expression, batch, self.ctx.expr_ctx()
                    )
                    out = batch.mask(keep)
            elif isinstance(op, ExtendOp):
                existing = batch.columns.get(op.variable)
                if existing is not None and (existing != UNBOUND).any():
                    raise SPARQLError(
                        "BIND would rebind already-bound variable "
                        f"{op.variable}"
                    )
                if batch.nrows == 0:
                    out = batch.with_column(
                        op.variable, np.empty(0, dtype=np.int64)
                    )
                else:
                    column = bind_column(
                        op.expression, batch, self.ctx.expr_ctx()
                    )
                    out = batch.with_column(op.variable, column)
            else:  # pragma: no cover - planner emits Filter/Extend only
                raise SPARQLError(f"unexpected map op {type(op).__name__}")
            self._charge_payload(out, "dist.map")
            return out

        return compute

    def _start_union(self, node: PUnion, done) -> None:
        results: List[Optional[List[Fragment]]] = [None] * len(node.children)
        remaining = [len(node.children)]
        for position, child in enumerate(node.children):

            def child_done(fragments, position=position):
                if self.error is not None:
                    return
                results[position] = fragments
                remaining[0] -= 1
                if remaining[0] == 0:
                    done([f for frags in results for f in frags])  # type: ignore[union-attr]

            self._start(child, child_done)

    def _start_broadcast_join(self, node: PBroadcastJoin, done) -> None:
        sides: Dict[str, List[Fragment]] = {}
        remaining = [2]

        def side_done(which: str):
            def callback(fragments: List[Fragment]) -> None:
                if self.error is not None:
                    return
                sides[which] = fragments
                remaining[0] -= 1
                if remaining[0] == 0:
                    ready()

            return callback

        def ready() -> None:
            big_frags = sides["big"]
            small_frags = sides["small"]
            small_batch = (
                Batch.concat([f.batch for f in small_frags])
                if small_frags
                else Batch.empty()
            )
            small_bytes = self._fragment_bytes(small_batch)
            self._count("dist.broadcast_joins")
            label = self._label("bjoin")
            specs = []
            for fragment in big_frags:
                transfer = (
                    self.runtime.spec.transfer_time_s(small_bytes)
                    if small_bytes
                    else 0.0
                )
                specs.append(
                    {
                        "compute": self._make_bjoin_compute(
                            node, fragment, small_batch
                        ),
                        "work_s": self.runtime.task_overhead_s
                        + transfer
                        + (fragment.batch.nrows + small_batch.nrows)
                        * self.runtime.row_cost_s,
                        "input_bytes": self._fragment_bytes(fragment.batch),
                        "preferred": (
                            {fragment.home} if fragment.home is not None else set()
                        ),
                    }
                )
                # The gathered small relation ships to every executor.
                self._account_comm(small_bytes)

            def stage_done(out: List[Fragment]) -> None:
                self._release_fragments(big_frags)
                self._release_fragments(small_frags)
                done(out)

            self._run_stage(label, specs, stage_done)

        self._start(node.big, side_done("big"))
        self._start(node.small, side_done("small"))

    def _make_bjoin_compute(self, node: PBroadcastJoin, fragment, small_batch):
        def compute(task: Task, state):
            self._checkpoint("dist.broadcast_join")
            if node.small_is_left:
                out = hash_join(
                    small_batch, fragment.batch, outer=False, budget=self.budget
                )
            else:
                out = hash_join(
                    fragment.batch,
                    small_batch,
                    outer=node.outer,
                    budget=self.budget,
                )
            self._charge_payload(out, "dist.join")
            return out

        return compute

    def _start_shuffle_join(self, node: PShuffleJoin, done) -> None:
        sides: Dict[str, List[Fragment]] = {}
        remaining = [2]

        def side_done(which: str):
            def callback(fragments: List[Fragment]) -> None:
                if self.error is not None:
                    return
                sides[which] = fragments
                remaining[0] -= 1
                if remaining[0] == 0:
                    ready()

            return callback

        def ready() -> None:
            left_frags = sides["left"]
            right_frags = sides["right"]
            buckets = max(1, node.buckets)
            keys = list(node.keys)
            self._count("dist.shuffle_joins")
            map_label = self._label("shuffle-map")
            reduce_label = self._label("shuffle-reduce")

            all_inputs = left_frags + right_frags
            map_specs = []
            for fragment in all_inputs:
                map_specs.append(
                    {
                        "compute": self._make_shuffle_map_compute(
                            fragment, keys, buckets
                        ),
                        "work_s": self.runtime.task_overhead_s
                        + fragment.batch.nrows * self.runtime.row_cost_s,
                        "input_bytes": self._fragment_bytes(fragment.batch),
                        "preferred": (
                            {fragment.home} if fragment.home is not None else set()
                        ),
                    }
                )

            def maps_done(map_frags: List[Fragment]) -> None:
                # Map outputs are the resident state now; the inputs retire.
                self._release_fragments(left_frags)
                self._release_fragments(right_frags)

            map_tasks = self._run_stage(map_label, map_specs, maps_done)
            dependency_ids = [t.task_id for t in map_tasks]
            left_keys = [(map_label, i) for i in range(len(left_frags))]
            right_keys = [
                (map_label, len(left_frags) + i)
                for i in range(len(right_frags))
            ]
            total_rows = sum(f.batch.nrows for f in all_inputs)
            total_bytes = sum(self._fragment_bytes(f.batch) for f in all_inputs)
            per_bucket_rows = total_rows / buckets if buckets else 0.0
            per_bucket_bytes = total_bytes / buckets if buckets else 0.0

            reduce_specs = []
            for bucket in range(buckets):
                reduce_specs.append(
                    {
                        "compute": self._make_reduce_compute(
                            left_keys, right_keys, bucket
                        ),
                        "work_s": self.runtime.task_overhead_s
                        + self.runtime.spec.transfer_time_s(per_bucket_bytes)
                        + per_bucket_rows * self.runtime.row_cost_s,
                        "input_bytes": per_bucket_bytes,
                        "preferred": set(),
                        "depends_on": dependency_ids,
                    }
                )
                # All-remote assumption: each reducer pulls its bucket over
                # the network from every mapper.
                self._account_comm(per_bucket_bytes)

            def reduces_done(out: List[Fragment]) -> None:
                # Retire the map outputs (the reducers consumed them).
                if self.budget is not None:
                    rows = sum(
                        b.nrows
                        for key in left_keys + right_keys
                        if self.shuffle.has(key)
                        for b in _payload_batches(self.shuffle.get(key))
                    )
                    nbytes = sum(
                        b.nrows * max(1, len(b.columns)) * BYTES_PER_CELL
                        for key in left_keys + right_keys
                        if self.shuffle.has(key)
                        for b in _payload_batches(self.shuffle.get(key))
                    )
                    self.budget.release_to(
                        (
                            max(0, self.budget.resident_rows - rows),
                            max(0, self.budget.resident_bytes - nbytes),
                        )
                    )
                done(out)

            self._run_stage(reduce_label, reduce_specs, reduces_done)

        self._start(node.left, side_done("left"))
        self._start(node.right, side_done("right"))

    def _make_shuffle_map_compute(self, fragment: Fragment, keys, buckets: int):
        def compute(task: Task, state):
            self._checkpoint("dist.shuffle_map")
            batch = fragment.batch
            if batch.nrows == 0:
                splits = tuple(batch for _ in range(buckets))
            else:
                codes = bucket_codes(batch.key_matrix(keys), buckets)
                splits = tuple(
                    batch.mask(codes == bucket) for bucket in range(buckets)
                )
            self._charge_payload(splits, "dist.shuffle_map")
            return splits

        return compute

    def _make_reduce_compute(self, left_keys, right_keys, bucket: int):
        def compute(task: Task, state):
            self._checkpoint("dist.shuffle_reduce")
            for key in left_keys + right_keys:
                if not self.shuffle.has(key):
                    # A mapper's output is not committed yet (it is being
                    # resubmitted): transient, retry.
                    state["retry"] = "inputs"
                    return _RETRY
            left = Batch.concat(
                [self.shuffle.get(key)[bucket] for key in left_keys]
            )
            right = Batch.concat(
                [self.shuffle.get(key)[bucket] for key in right_keys]
            )
            out = hash_join(left, right, outer=False, budget=self.budget)
            self._charge_payload(out, "dist.shuffle_reduce")
            return out

        return compute

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def execute(self, plan: PNode) -> Batch:
        def root_done(fragments: List[Fragment]) -> None:
            for fragment in fragments:
                if fragment.home is not None:
                    self._account_comm(self._fragment_bytes(fragment.batch))
            batch = (
                Batch.concat([f.batch for f in fragments])
                if fragments
                else Batch.empty()
            )
            self._release_fragments(fragments)
            self._charge_payload(batch, "dist.gather")
            self.result_batch = batch

        self._start(plan, root_done)
        try:
            self.scheduler.run()
        except ClusterError as exc:
            if self.error is None:
                dead = self.scheduler.dead_nodes
                lost = sorted(
                    pid
                    for pid, owners in self.placement.items()
                    if all(owner in dead for owner in owners)
                )
                if lost:
                    self._abort(
                        PartitionUnavailable(
                            f"distributed query stranded: partitions {lost} "
                            "lost every replica",
                            partition=lost[0],
                            replicas=self.placement[lost[0]],
                        )
                    )
                else:
                    self._abort(exc)
            self.scheduler.simulation.run()  # settle the cancellations
        if self.error is not None:
            raise self.error
        if self.result_batch is None:
            raise ClusterError(
                "distributed query drained without settling a result"
            )
        return self.result_batch

    def report(self) -> DistReport:
        metrics = self.scheduler.metrics
        return DistReport(
            makespan_s=metrics.makespan_s,
            locality_rate=metrics.locality_rate,
            tasks_completed=metrics.tasks_completed,
            task_failures=metrics.task_failures,
            tasks_cancelled=metrics.tasks_cancelled,
            speculative_launches=metrics.speculative_launches,
            node_crashes=metrics.node_crashes,
            bytes_transferred=metrics.bytes_transferred,
            publishes=self.shuffle.publishes,
            duplicate_publishes=self.shuffle.duplicate_publishes,
            tickets_issued=self.scheduler.tickets_issued,
            tickets_released=self.scheduler.tickets_released,
            missing_partitions=tuple(sorted(set(self.missing))),
            counters=dict(self.counters),
        )


# ---------------------------------------------------------------------------
# Engine entry point (evaluator dispatch target)
# ---------------------------------------------------------------------------

def evaluate_dist_query(
    graph,
    query: Union[SelectQuery, AskQuery],
    registry,
    options: Optional[CompileOptions],
    obs=None,
    cache=None,
    text: Optional[str] = None,
) -> Union[List, bool]:
    """Evaluate a parsed query on the distributed engine.

    Plans are the E22 cost-ordered vector trees (shared through the plan
    cache under the ``engine="dist"`` cache key); the runtime rides on
    ``options.dist`` the way budgets ride on ``options.budget`` — request
    state, invisible to plan identity.
    """
    runtime = getattr(options, "dist", None) if options is not None else None
    if runtime is None:
        raise SPARQLError(
            'engine="dist" needs a runtime: '
            "CompileOptions(engine='dist', dist=DistRuntime(graph, ...))"
        )
    if runtime.graph is not graph:
        raise SPARQLError("DistRuntime is bound to a different graph")
    if cache is not None and text is not None:
        tree = cache.plan(
            graph,
            text,
            options,
            graph.version,
            lambda: compile_vector_plan(query.where, graph, options),
        )
    else:
        tree = compile_vector_plan(query.where, graph, options)
    return runtime.evaluate(tree, query, registry, options, obs)
