"""Fault-tolerant distributed SPARQL execution (experiment E25).

The third execution engine, behind ``CompileOptions(engine="dist",
dist=DistRuntime(graph, ...))``: the E22 vector plans, compiled unchanged,
are mapped onto a range-partitioned + replicated layout of the graph's
id-row table (:mod:`repro.sparql.dist.partition`), planned into
locality-aware stage DAGs (:mod:`repro.sparql.dist.plan` — partition-local
scans, broadcast joins under a :meth:`Graph.count`-driven cost threshold,
hash-repartitioned shuffle joins on definitely-bound keys), and executed as
:mod:`repro.cluster.scheduler` tasks under crash recovery, speculation,
blacklisting, replica failover and idempotent output commit
(:mod:`repro.sparql.dist.engine`).

Robustness contract: identical solution multisets to the single-process
engines, or a *typed* failure — retryable
:class:`~repro.errors.PartitionUnavailable` when a partition loses every
replica (shed at the serving gateway), or an explicitly flagged
:class:`PartialResult` when the caller opted in with ``allow_partial=True``.
Budgeted queries (E23) propagate their deadline/caps into every task and a
budget kill cancels the whole DAG with admission tickets released exactly
once. ``python -m repro.sparql.dist.soak`` measures shard-count scaling,
locality, and chaos recovery overhead into ``BENCH_E25.json``.
"""

from repro.sparql.dist.engine import (
    DistReport,
    DistRuntime,
    PartialResult,
    ShuffleStore,
    bucket_codes,
    evaluate_dist_query,
)
from repro.sparql.dist.partition import (
    BYTES_PER_ROW,
    PartitionedTripleStore,
    RangePartitioner,
)
from repro.sparql.dist.plan import (
    PBroadcastJoin,
    PLocal,
    PMap,
    PNode,
    PScan,
    PShuffleJoin,
    PUnion,
    build_plan,
    definitely_bound,
    estimate_rows,
    plan_shape,
)

__all__ = [
    "BYTES_PER_ROW",
    "DistReport",
    "DistRuntime",
    "PBroadcastJoin",
    "PLocal",
    "PMap",
    "PNode",
    "PScan",
    "PShuffleJoin",
    "PUnion",
    "PartialResult",
    "PartitionedTripleStore",
    "RangePartitioner",
    "ShuffleStore",
    "bucket_codes",
    "build_plan",
    "definitely_bound",
    "estimate_rows",
    "evaluate_dist_query",
    "plan_shape",
]
