"""Physical planning: vector algebra trees -> distributable stage DAGs.

The planner maps the cost-ordered E22 operator tree onto five physical
shapes, chosen so that every node's output *fragments* are a disjoint
multiset cover of its relation (each solution row lives in exactly one
fragment — the invariant all the join strategies lean on):

* :class:`PScan` — one partition-local scan fragment per store partition;
* :class:`PLocal` — a single driver-side fragment via the vector engine's
  own ``_execute`` (custom operators, VALUES/empty leaves, and joins with
  expression/OPTIONAL correlation where substitution semantics force the
  engines' shared fallback);
* :class:`PMap` — a per-fragment FILTER/BIND, no data movement;
* :class:`PBroadcastJoin` — the small side (below
  ``broadcast_threshold_rows``, judged from ``Graph.count`` statistics) is
  gathered and shipped whole to every fragment of the big side. Per-fragment
  ``hash_join`` is exact here because SPARQL solution compatibility is
  row-local: each big-side row meets the *complete* other relation.
  LeftJoin always broadcasts its right side — outer padding of a left row
  is only decidable against the whole right relation;
* :class:`PShuffleJoin` — both sides repartitioned by a fixed-radix hash of
  the shared variables. Only legal when every shared variable is
  *definitely bound* on both sides (:func:`definitely_bound`): an UNBOUND
  cell is compatible with every key, which no hash bucketing preserves.

``PUnion`` concatenates children's fragment lists without moving a row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.rdf.graph import Graph
from repro.sparql.algebra import (
    AlgebraOp,
    EmptyOp,
    ExtendOp,
    FilterOp,
    JoinOp,
    LeftJoinOp,
    ScanOp,
    TableOp,
    UnionOp,
    operator_variables,
)
from repro.sparql.ast import Variable
from repro.sparql.vector.cost import (
    free_expression_variables,
    optional_blind_variables,
    pattern_extent,
)


class PNode:
    """Base class for distributed plan nodes."""


@dataclass
class PScan(PNode):
    """Partition-local scan of one triple pattern."""

    op: ScanOp


@dataclass
class PLocal(PNode):
    """Driver-side vector execution of a whole subtree (one fragment)."""

    op: AlgebraOp


@dataclass
class PMap(PNode):
    """Per-fragment FILTER or BIND over the child's fragments."""

    child: PNode
    op: AlgebraOp  # FilterOp or ExtendOp, applied to each fragment


@dataclass
class PUnion(PNode):
    """Fragment-list concatenation of the children."""

    children: List[PNode]


@dataclass
class PBroadcastJoin(PNode):
    """Join each ``big`` fragment against the gathered ``small`` relation.

    ``small_is_left`` records which side the small relation is in the
    original algebra (it decides hash_join argument order; for LeftJoin the
    small side is always the right/optional one).
    """

    big: PNode
    small: PNode
    outer: bool = False
    small_is_left: bool = False


@dataclass
class PShuffleJoin(PNode):
    """Hash-repartitioned join on definitely-bound shared variables."""

    left: PNode
    right: PNode
    keys: Tuple[Variable, ...]
    buckets: int = 4


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------

def definitely_bound(op: AlgebraOp) -> frozenset:
    """Variables bound in *every* solution the operator emits.

    The shuffle-legality signal: a variable outside this set may carry
    UNBOUND cells, and unbound-tolerant compatibility cannot be bucketed.
    Conservative for custom/unknown operators (empty set).
    """
    if getattr(op, "evaluate_custom", None) is not None:
        return frozenset()
    if isinstance(op, ScanOp):
        return frozenset(op.pattern.variables())
    if isinstance(op, JoinOp):
        return definitely_bound(op.left) | definitely_bound(op.right)
    if isinstance(op, LeftJoinOp):
        return definitely_bound(op.left)
    if isinstance(op, UnionOp):
        bound = None
        for operand in op.operands:
            child = definitely_bound(operand)
            bound = child if bound is None else bound & child
        return bound if bound is not None else frozenset()
    if isinstance(op, FilterOp):
        return definitely_bound(op.operand)
    if isinstance(op, ExtendOp):
        # BIND errors leave the target unbound: only the child's set holds.
        return definitely_bound(op.operand)
    if isinstance(op, TableOp):
        return frozenset(
            variable
            for index, variable in enumerate(op.variables)
            if all(row[index] is not None for row in op.rows)
        )
    if isinstance(op, EmptyOp):
        return frozenset()
    return frozenset()


def estimate_rows(op: AlgebraOp, graph: Graph) -> float:
    """Cheap cardinality estimate from the E22 index statistics."""
    if getattr(op, "evaluate_custom", None) is not None:
        return float(max(len(graph), 1))
    if isinstance(op, ScanOp):
        return float(pattern_extent(op.pattern, graph))
    if isinstance(op, (JoinOp, LeftJoinOp)):
        left = estimate_rows(op.left, graph)
        right = estimate_rows(op.right, graph)
        shared = operator_variables(op.left) & operator_variables(op.right)
        if shared:
            inner = left * right / float(max(len(graph), 1))
        else:
            inner = left * right
        if isinstance(op, LeftJoinOp):
            return max(left, inner)
        return max(1.0, inner)
    if isinstance(op, UnionOp):
        return sum(estimate_rows(operand, graph) for operand in op.operands)
    if isinstance(op, FilterOp):
        return max(1.0, estimate_rows(op.operand, graph) * 0.5)
    if isinstance(op, ExtendOp):
        return estimate_rows(op.operand, graph)
    if isinstance(op, TableOp):
        return float(len(op.rows))
    if isinstance(op, EmptyOp):
        return 1.0
    return float(max(len(graph), 1))


def _correlated(op) -> bool:
    """The vector engine's own substitution-semantics fallback condition."""
    sensitive = free_expression_variables(op.right) | optional_blind_variables(
        op.right
    )
    return bool(sensitive & operator_variables(op.left))


def _distributable(op: AlgebraOp) -> bool:
    """Whether *op* has a fragment-parallel plan (else it runs as PLocal)."""
    if getattr(op, "evaluate_custom", None) is not None:
        return False
    if isinstance(op, ScanOp):
        return True
    if isinstance(op, (JoinOp, LeftJoinOp)):
        if _correlated(op):
            return False
        return _distributable(op.left) or _distributable(op.right)
    if isinstance(op, UnionOp):
        return any(_distributable(operand) for operand in op.operands)
    if isinstance(op, (FilterOp, ExtendOp)):
        return _distributable(op.operand)
    return False


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------

def build_plan(
    op: AlgebraOp,
    graph: Graph,
    broadcast_threshold_rows: float,
    shuffle_buckets: int,
) -> PNode:
    """Map one vector algebra tree onto a distributed physical plan."""
    if not _distributable(op):
        return PLocal(op)
    if isinstance(op, ScanOp):
        return PScan(op)
    if isinstance(op, (FilterOp, ExtendOp)):
        child = build_plan(
            op.operand, graph, broadcast_threshold_rows, shuffle_buckets
        )
        if isinstance(child, PLocal):
            return PLocal(op)
        return PMap(child, op)
    if isinstance(op, UnionOp):
        return PUnion(
            [
                build_plan(
                    operand, graph, broadcast_threshold_rows, shuffle_buckets
                )
                for operand in op.operands
            ]
        )
    if isinstance(op, (JoinOp, LeftJoinOp)):
        outer = isinstance(op, LeftJoinOp)
        left = build_plan(
            op.left, graph, broadcast_threshold_rows, shuffle_buckets
        )
        right = build_plan(
            op.right, graph, broadcast_threshold_rows, shuffle_buckets
        )
        if outer:
            # Outer padding needs the complete right relation at every
            # left fragment: always broadcast the optional side.
            return PBroadcastJoin(left, right, outer=True, small_is_left=False)
        est_left = estimate_rows(op.left, graph)
        est_right = estimate_rows(op.right, graph)
        shared = tuple(
            sorted(
                operator_variables(op.left) & operator_variables(op.right),
                key=lambda v: v.name,
            )
        )
        bound_ok = shared and (
            set(shared) <= definitely_bound(op.left)
            and set(shared) <= definitely_bound(op.right)
        )
        if bound_ok and min(est_left, est_right) > broadcast_threshold_rows:
            return PShuffleJoin(left, right, keys=shared, buckets=shuffle_buckets)
        if est_right <= est_left:
            return PBroadcastJoin(left, right, outer=False, small_is_left=False)
        return PBroadcastJoin(right, left, outer=False, small_is_left=True)
    return PLocal(op)


def plan_shape(node: PNode) -> str:  # pragma: no cover - debugging aid
    """Compact s-expression of the physical plan, for tests and logs."""
    if isinstance(node, PScan):
        return "scan"
    if isinstance(node, PLocal):
        return f"local[{type(node.op).__name__}]"
    if isinstance(node, PMap):
        return f"map[{type(node.op).__name__}]({plan_shape(node.child)})"
    if isinstance(node, PUnion):
        return f"union({', '.join(plan_shape(c) for c in node.children)})"
    if isinstance(node, PBroadcastJoin):
        kind = "bcast-outer" if node.outer else "bcast"
        return f"{kind}({plan_shape(node.big)}, {plan_shape(node.small)})"
    if isinstance(node, PShuffleJoin):
        keys = ",".join(f"?{v.name}" for v in node.keys)
        return f"shuffle[{keys}]({plan_shape(node.left)}, {plan_shape(node.right)})"
    return type(node).__name__
