"""Logical algebra and query optimisation.

Compiles the parsed AST to a tree of algebra operators and applies two classic
rewrites:

* **Filter pushdown** — a filter is attached to the earliest point where all
  of its variables are bound, so non-matching bindings die young.
* **Selectivity-ordered joins** — triple patterns inside a BGP are greedily
  reordered: most selective first (judged by bound-position shape and, when a
  graph is supplied, actual index cardinalities), preferring patterns that
  share variables with what has already been joined.

The E2/E9 ablation benches run with these rewrites disabled to measure their
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

from repro.rdf.graph import Graph
from repro.sparql.ast import (
    BGP,
    BinaryOp,
    BindPattern,
    Expression,
    FilterPattern,
    FunctionCall,
    GraphPattern,
    GroupPattern,
    OptionalPattern,
    TermExpr,
    TriplePattern,
    UnaryOp,
    UnionPattern,
    ValuesPattern,
    Variable,
    VarExpr,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sparql.governor import QueryBudget


# ---------------------------------------------------------------------------
# Algebra operators
# ---------------------------------------------------------------------------

class AlgebraOp:
    """Base class for executable operators."""


@dataclass
class ScanOp(AlgebraOp):
    """Match one triple pattern against the store."""

    pattern: TriplePattern


@dataclass
class JoinOp(AlgebraOp):
    """Natural join of two operand solution streams."""

    left: AlgebraOp
    right: AlgebraOp


@dataclass
class LeftJoinOp(AlgebraOp):
    """OPTIONAL: keep left solutions, extend with right when compatible."""

    left: AlgebraOp
    right: AlgebraOp


@dataclass
class UnionOp(AlgebraOp):
    """Concatenation of alternative solution streams."""

    operands: List[AlgebraOp]


@dataclass
class FilterOp(AlgebraOp):
    """Keep solutions where the expression's effective boolean value is true."""

    expression: Expression
    operand: AlgebraOp


@dataclass
class ExtendOp(AlgebraOp):
    """BIND: extend each solution with ``variable = expression`` (errors
    leave the variable unbound, per the SPARQL spec)."""

    operand: AlgebraOp
    variable: Variable
    expression: Expression


@dataclass
class TableOp(AlgebraOp):
    """VALUES: an inline table of solutions (None cells are UNDEF)."""

    variables: List[Variable]
    rows: List[List]


@dataclass
class EmptyOp(AlgebraOp):
    """Produces the single empty solution (identity of join)."""


# ---------------------------------------------------------------------------
# Expression variable analysis
# ---------------------------------------------------------------------------

def expression_variables(expression: Expression) -> FrozenSet[Variable]:
    """All variables mentioned by an expression."""
    if isinstance(expression, VarExpr):
        return frozenset({expression.variable})
    if isinstance(expression, TermExpr):
        return frozenset()
    if isinstance(expression, UnaryOp):
        return expression_variables(expression.operand)
    if isinstance(expression, BinaryOp):
        return expression_variables(expression.left) | expression_variables(
            expression.right
        )
    if isinstance(expression, FunctionCall):
        result: FrozenSet[Variable] = frozenset()
        for arg in expression.args:
            result |= expression_variables(arg)
        return result
    raise TypeError(f"unknown expression node {type(expression).__name__}")


def operator_variables(op: AlgebraOp) -> FrozenSet[Variable]:
    """Variables that an operator's solutions may bind."""
    custom = getattr(op, "bound_variables", None)
    if custom is not None:
        return frozenset(custom())
    if isinstance(op, ScanOp):
        return frozenset(op.pattern.variables())
    if isinstance(op, (JoinOp, LeftJoinOp)):
        return operator_variables(op.left) | operator_variables(op.right)
    if isinstance(op, UnionOp):
        result: FrozenSet[Variable] = frozenset()
        for operand in op.operands:
            result |= operator_variables(operand)
        return result
    if isinstance(op, FilterOp):
        return operator_variables(op.operand)
    if isinstance(op, ExtendOp):
        return operator_variables(op.operand) | {op.variable}
    if isinstance(op, TableOp):
        return frozenset(op.variables)
    if isinstance(op, EmptyOp):
        return frozenset()
    raise TypeError(f"unknown operator {type(op).__name__}")


# ---------------------------------------------------------------------------
# Selectivity model
# ---------------------------------------------------------------------------

# Shape-based selectivity ranks, most selective first, following the classic
# heuristic ordering (bound subject+object beats bound subject beats ...).
_SHAPE_RANK = {
    (True, True, True): 0,
    (True, True, False): 2,
    (True, False, True): 1,
    (False, True, True): 3,
    (True, False, False): 4,
    (False, False, True): 5,
    (False, True, False): 6,
    (False, False, False): 7,
}


def pattern_selectivity(pattern: TriplePattern, graph: Optional[Graph] = None) -> float:
    """Lower is more selective. Uses index statistics when a graph is given."""
    shape = (
        not isinstance(pattern.subject, Variable),
        not isinstance(pattern.predicate, Variable),
        not isinstance(pattern.object, Variable),
    )
    rank = float(_SHAPE_RANK[shape])
    if graph is not None and shape[1] and not isinstance(pattern.predicate, Variable):
        cardinality = graph.predicate_count(pattern.predicate)
        rank += min(cardinality / max(len(graph), 1), 1.0)
    return rank


def order_patterns(
    patterns: Sequence[TriplePattern],
    graph: Optional[Graph] = None,
    bound_vars: Optional[Set[Variable]] = None,
    filter_vars: Optional[Set[Variable]] = None,
) -> List[TriplePattern]:
    """Greedy join ordering: most selective first, preferring connected patterns.

    ``bound_vars`` declares variables already bound by an upstream operator
    (e.g. a spatial candidate scan), so patterns touching them are treated as
    connected from the start. ``filter_vars`` are variables constrained by a
    pushable filter — patterns binding them get a selectivity bonus, since
    the filter will thin their output immediately.
    """
    remaining = list(patterns)
    ordered: List[TriplePattern] = []
    bound: Set[Variable] = set(bound_vars or ())
    filtered = set(filter_vars or ())
    while remaining:
        def score(p: TriplePattern) -> Tuple[int, float]:
            shared = sum(1 for v in p.variables() if v in bound)
            rank = pattern_selectivity(p, graph)
            if filtered and any(v in filtered for v in p.variables()):
                rank -= 0.5
            # Connected patterns first (0), then by selectivity.
            return (0 if shared or not bound else 1, rank)

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

@dataclass
class CompileOptions:
    """Optimisation switches (all on by default; benches toggle them).

    ``engine`` selects the execution engine: ``"interpreted"`` is the
    iterator-model evaluator; ``"vector"`` runs the columnar engine
    (:mod:`repro.sparql.vector`) with cost-based join ordering. Both return
    identical solution multisets. The plan-shaping fields participate in
    plan-cache keys via :meth:`cache_key`, so the two engines never share
    cached plans.

    ``budget`` attaches a per-execution
    :class:`~repro.sparql.governor.QueryBudget` (E23): deadline, resident
    row/byte caps and a cooperative cancellation token, enforced at engine
    checkpoints. It is *request* state, not plan state — :meth:`cache_key`
    excludes it, so governed and ungoverned runs of the same text share one
    compiled plan and one coalescing key.

    ``engine="dist"`` (E25) runs the vector plans distributed over a
    range-partitioned, replicated cluster; ``dist`` carries the
    :class:`~repro.sparql.dist.DistRuntime` holding the partitioned store
    and scheduler knobs. Like ``budget`` it is runtime state:
    :meth:`cache_key` excludes it, and the compiled trees are the vector
    engine's own (keyed under the ``"dist"`` engine label).
    """

    push_filters: bool = True
    reorder_patterns: bool = True
    engine: str = "interpreted"
    budget: Optional["QueryBudget"] = None
    dist: Optional[object] = None

    def cache_key(self) -> Tuple:
        """Hashable identity of the plan-shaping fields only.

        Matches the pre-budget ``dataclasses.astuple`` output exactly, so
        every existing plan-cache and coalescing key is unchanged.
        """
        return (self.push_filters, self.reorder_patterns, self.engine)


def compile_group(
    group: GroupPattern,
    graph: Optional[Graph] = None,
    options: Optional[CompileOptions] = None,
) -> AlgebraOp:
    """Compile a WHERE group to an executable operator tree."""
    options = options or CompileOptions()
    filters: List[Expression] = [
        child.expression
        for child in group.children
        if isinstance(child, FilterPattern)
    ]
    filter_vars: Set[Variable] = set()
    for expression in filters:
        filter_vars |= expression_variables(expression)
    operands: List[AlgebraOp] = []

    for child in group.children:
        if isinstance(child, FilterPattern):
            continue
        elif isinstance(child, BGP):
            operands.append(_compile_bgp(child, graph, options, filter_vars))
        elif isinstance(child, OptionalPattern):
            right = compile_group(child.pattern, graph, options)
            left = _join_all(operands) if operands else EmptyOp()
            operands = [LeftJoinOp(left, right)]
        elif isinstance(child, UnionPattern):
            operands.append(
                UnionOp([compile_group(alt, graph, options) for alt in child.alternatives])
            )
        elif isinstance(child, BindPattern):
            # BIND scopes over the group so far: wrap the accumulated tree.
            current = _join_all(operands) if operands else EmptyOp()
            operands = [ExtendOp(current, child.variable, child.expression)]
        elif isinstance(child, ValuesPattern):
            operands.append(TableOp(list(child.variables), [list(r) for r in child.rows]))
        elif isinstance(child, GroupPattern):
            operands.append(compile_group(child, graph, options))
        else:
            raise TypeError(f"unknown pattern {type(child).__name__}")

    tree = _join_all(operands) if operands else EmptyOp()
    # Filters in a group scope over the whole group.
    for expression in filters:
        if options.push_filters:
            tree = _push_filter(tree, expression)
        else:
            tree = FilterOp(expression, tree)
    return tree


def _compile_bgp(
    bgp: BGP,
    graph: Optional[Graph],
    options: CompileOptions,
    filter_vars: Optional[Set[Variable]] = None,
) -> AlgebraOp:
    patterns = (
        order_patterns(bgp.patterns, graph, filter_vars=filter_vars)
        if options.reorder_patterns
        else list(bgp.patterns)
    )
    if not patterns:
        return EmptyOp()
    tree: AlgebraOp = ScanOp(patterns[0])
    for pattern in patterns[1:]:
        tree = JoinOp(tree, ScanOp(pattern))
    return tree


def _join_all(operands: List[AlgebraOp]) -> AlgebraOp:
    tree = operands[0]
    for operand in operands[1:]:
        tree = JoinOp(tree, operand)
    return tree


def _push_filter(tree: AlgebraOp, expression: Expression) -> AlgebraOp:
    """Attach the filter at the deepest operator binding all its variables."""
    needed = expression_variables(expression)

    def attach(op: AlgebraOp) -> Tuple[AlgebraOp, bool]:
        if isinstance(op, JoinOp):
            if needed <= operator_variables(op.left):
                new_left, done = attach(op.left)
                if done:
                    return JoinOp(new_left, op.right), True
            if needed <= operator_variables(op.right):
                new_right, done = attach(op.right)
                if done:
                    return JoinOp(op.left, new_right), True
            if needed <= operator_variables(op):
                return FilterOp(expression, op), True
            return op, False
        if isinstance(op, FilterOp):
            new_inner, done = attach(op.operand)
            if done:
                return FilterOp(op.expression, new_inner), True
            return op, False
        if needed <= operator_variables(op):
            return FilterOp(expression, op), True
        return op, False

    # Never push into the right side of a LeftJoin (changes OPTIONAL semantics);
    # treat LeftJoinOp as a leaf.
    new_tree, done = attach(tree)
    if done:
        return new_tree
    # Unbound variables in the filter: evaluates over the whole tree (likely
    # yielding errors -> false per SPARQL semantics).
    return FilterOp(expression, tree)
