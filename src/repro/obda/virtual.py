"""The virtual geospatial RDF store: SPARQL answered by query rewriting.

A :class:`VirtualGeoStore` holds no triples. SPARQL BGPs are grouped by
subject, each group is matched to a registered (table, mapping) pair, column
comparisons and spatial bounding-box filters are pushed into the table scan,
and groups are hash-joined on shared variables. The GeoSPARQL two-hop
pattern (``?f geo:hasGeometry ?g . ?g geo:asWKT ?wkt``) is folded into the
feature group, mirroring how Ontop-spatial virtualises geometry tables.

Supported query form: ``SELECT [DISTINCT] ... WHERE { BGP . FILTER ... }``
with constant predicates — the fragment Ontop's core rewriting covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING, Union

from repro.errors import ReproError
from repro.geometry import Geometry
from repro.geosparql.functions import INDEXABLE_RELATIONS, geo_function_registry
from repro.geosparql.literals import geometry_literal, is_geometry_literal, literal_geometry
from repro.geotriples.mapping import ObjectMap, TriplesMap, expand_template, template_variables
from repro.obda.relational import Database, Predicate, Table
from repro.rdf.namespace import GEO, RDF
from repro.rdf.term import IRI, Literal, Term
from repro.sparql.ast import (
    BGP,
    BinaryOp,
    Expression,
    FilterPattern,
    FunctionCall,
    SelectQuery,
    TermExpr,
    TriplePattern,
    Variable,
    VarExpr,
)
from repro.sparql.evaluator import Bindings, evaluate_expression
from repro.sparql.functions import EvaluationError, effective_boolean_value
from repro.sparql.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.plan import PlanCache

_RDF_TYPE = RDF.type
_HAS_GEOMETRY = GEO.hasGeometry
_AS_WKT = GEO.asWKT


@dataclass
class _MappedSource:
    table: Table
    mapping: TriplesMap
    by_predicate: Dict[str, ObjectMap] = field(init=False)

    def __post_init__(self) -> None:
        self.by_predicate = {m.predicate: m for m in self.mapping.object_maps}

    @property
    def geometry_map(self) -> Optional[ObjectMap]:
        maps = self.mapping.geometry_maps
        return maps[0] if maps else None


@dataclass
class _SubjectGroup:
    """All patterns sharing one subject (plus folded geometry-hop patterns)."""

    subject: Union[Variable, Term]
    type_object: Optional[Term] = None
    type_variable: Optional[Variable] = None
    # predicate IRI -> object position (Variable or Term)
    properties: List[Tuple[str, Union[Variable, Term]]] = field(default_factory=list)
    geometry_node: Optional[Union[Variable, Term]] = None
    wkt_object: Optional[Union[Variable, Term]] = None


class VirtualGeoStore:
    """Answers (Geo)SPARQL over relational tables without materialising RDF."""

    def __init__(
        self,
        database: Database,
        plan_cache: Optional["PlanCache"] = None,
    ):
        self.database = database
        self._sources: List[_MappedSource] = []
        self._registry = geo_function_registry()
        #: Optional shared :class:`~repro.cache.PlanCache`. Rewriting plans
        #: (parse, extraction, subject grouping) are pure functions of the
        #: query text; table rows are always scanned live, so results stay
        #: fresh. The key still includes the mapping count so a new
        #: ``add_mapping`` can never meet a stale plan.
        self.plan_cache = plan_cache

    def add_mapping(self, table_name: str, mapping: TriplesMap) -> None:
        """Expose *table_name* through *mapping*."""
        self._sources.append(_MappedSource(self.database.table(table_name), mapping))

    @property
    def triple_count(self) -> int:
        """Always zero: nothing is materialised. (The point.)"""
        return 0

    # ------------------------------------------------------------------
    # Query entry
    # ------------------------------------------------------------------

    def query(self, query: Union[str, SelectQuery]) -> List[Bindings]:
        text: Optional[str] = None
        if isinstance(query, str):
            text = query
            if self.plan_cache is not None:
                query = self.plan_cache.parse(text)
            else:
                query = parse_query(text)
        if not isinstance(query, SelectQuery) or query.is_aggregate:
            raise ReproError("VirtualGeoStore supports plain SELECT queries")
        if self.plan_cache is not None and text is not None:
            filters, groups = self.plan_cache.plan(
                self,
                text,
                None,
                len(self._sources),
                lambda: self._rewrite(query),
            )
        else:
            filters, groups = self._rewrite(query)
        solution_sets = [self._evaluate_group(g, filters) for g in groups]

        solutions = [{}]
        for solution_set in solution_sets:
            solutions = _hash_join(solutions, solution_set)
            if not solutions:
                break

        # Residual filters (cross-group or not pushable) run last.
        for expression in filters:
            solutions = [
                s for s in solutions if self._filter_ok(expression, s)
            ]
        if query.variables:
            solutions = [
                {v: s[v] for v in query.variables if v in s} for s in solutions
            ]
        if query.distinct:
            seen = set()
            unique = []
            for solution in solutions:
                key = frozenset(solution.items())
                if key not in seen:
                    seen.add(key)
                    unique.append(solution)
            solutions = unique
        if query.offset:
            solutions = solutions[query.offset:]
        if query.limit is not None:
            solutions = solutions[: query.limit]
        return solutions

    def _rewrite(
        self, query: SelectQuery
    ) -> Tuple[List[Expression], List[_SubjectGroup]]:
        """The cacheable rewrite: pattern extraction + subject grouping."""
        patterns, filters = self._extract(query)
        return filters, self._group_by_subject(patterns)

    def _filter_ok(self, expression: Expression, solution: Bindings) -> bool:
        try:
            return effective_boolean_value(
                evaluate_expression(expression, solution, self._registry)
            )
        except EvaluationError:
            return False

    @staticmethod
    def _extract(query: SelectQuery):
        patterns: List[TriplePattern] = []
        filters: List[Expression] = []
        for child in query.where.children:
            if isinstance(child, BGP):
                patterns.extend(child.patterns)
            elif isinstance(child, FilterPattern):
                filters.append(child.expression)
            else:
                raise ReproError(
                    f"unsupported pattern {type(child).__name__} in virtual query"
                )
        if not patterns:
            raise ReproError("virtual query has no triple patterns")
        return patterns, filters

    # ------------------------------------------------------------------
    # Grouping (with geometry-hop folding)
    # ------------------------------------------------------------------

    def _group_by_subject(
        self, patterns: Sequence[TriplePattern]
    ) -> List[_SubjectGroup]:
        groups: Dict[Any, _SubjectGroup] = {}
        wkt_patterns: List[TriplePattern] = []
        for pattern in patterns:
            if isinstance(pattern.predicate, Variable):
                raise ReproError("variable predicates are not rewritable")
            if pattern.predicate == _AS_WKT:
                wkt_patterns.append(pattern)
                continue
            group = groups.setdefault(
                pattern.subject, _SubjectGroup(subject=pattern.subject)
            )
            if pattern.predicate == _RDF_TYPE:
                if isinstance(pattern.object, Variable):
                    group.type_variable = pattern.object
                else:
                    group.type_object = pattern.object
            elif pattern.predicate == _HAS_GEOMETRY:
                group.geometry_node = pattern.object
            else:
                group.properties.append((pattern.predicate.value, pattern.object))

        # Fold `?g geo:asWKT ?wkt` onto the feature group owning ?g.
        for pattern in wkt_patterns:
            owner = next(
                (
                    g
                    for g in groups.values()
                    if g.geometry_node is not None
                    and g.geometry_node == pattern.subject
                ),
                None,
            )
            if owner is None:
                raise ReproError(
                    "geo:asWKT subject is not a geo:hasGeometry object; "
                    "cannot fold the geometry hop"
                )
            owner.wkt_object = pattern.object
        return list(groups.values())

    # ------------------------------------------------------------------
    # Group evaluation
    # ------------------------------------------------------------------

    def _evaluate_group(
        self, group: _SubjectGroup, filters: Sequence[Expression]
    ) -> List[Bindings]:
        source = self._match_source(group)
        predicates, residual_equalities = self._pushable_predicates(
            group, source, filters
        )
        solutions: List[Bindings] = []
        subject_vars = template_variables(source.mapping.subject_template)
        for row in source.table.scan(predicates):
            bindings = self._row_bindings(group, source, row, subject_vars)
            if bindings is None:
                continue
            if all(self._filter_ok(e, bindings) for e in residual_equalities):
                solutions.append(bindings)
        return solutions

    def _match_source(self, group: _SubjectGroup) -> _MappedSource:
        candidates = []
        for source in self._sources:
            if group.type_object is not None and (
                source.mapping.type_iri is None
                or IRI(source.mapping.type_iri) != group.type_object
            ):
                continue
            if (
                group.geometry_node is not None or group.wkt_object is not None
            ) and source.geometry_map is None:
                continue
            if all(p in source.by_predicate for p, _ in group.properties):
                candidates.append(source)
        if not candidates:
            raise ReproError(
                f"no mapping covers subject group {group.subject!r} "
                f"(predicates {[p for p, _ in group.properties]})"
            )
        if len(candidates) > 1:
            raise ReproError(
                f"ambiguous mappings for subject group {group.subject!r}; "
                "add an rdf:type pattern to disambiguate"
            )
        return candidates[0]

    def _pushable_predicates(
        self,
        group: _SubjectGroup,
        source: _MappedSource,
        filters: Sequence[Expression],
    ) -> Tuple[List[Predicate], List[Expression]]:
        """(scan predicates, equality filters that must still run per row)."""
        predicates: List[Predicate] = []
        residual: List[Expression] = []

        # Constant objects on column-backed predicates become = predicates.
        for predicate_iri, obj in group.properties:
            object_map = source.by_predicate[predicate_iri]
            if isinstance(obj, Variable) or object_map.column is None:
                continue
            if isinstance(obj, Literal):
                predicates.append((object_map.column, "=", obj.to_python()))

        # Single-variable comparison filters push when the variable maps to
        # a column of this group.
        column_of: Dict[Variable, str] = {}
        for predicate_iri, obj in group.properties:
            object_map = source.by_predicate[predicate_iri]
            if isinstance(obj, Variable) and object_map.column is not None:
                column_of[obj] = object_map.column
        for expression in filters:
            pushed = _push_comparison(expression, column_of)
            if pushed is not None:
                predicates.append(pushed)

        # Spatial filters on this group's wkt variable push as bbox tests.
        geometry_map = source.geometry_map
        if geometry_map is not None and isinstance(group.wkt_object, Variable):
            for expression in filters:
                bbox = _spatial_bbox(expression, group.wkt_object)
                if bbox is not None:
                    predicates.append((geometry_map.column, "bbox_intersects", bbox))
        return predicates, residual

    def _row_bindings(
        self,
        group: _SubjectGroup,
        source: _MappedSource,
        row: Dict[str, Any],
        subject_vars: Sequence[str],
    ) -> Optional[Bindings]:
        if any(row.get(v) is None for v in subject_vars):
            return None
        subject = IRI(expand_template(source.mapping.subject_template, row))
        bindings: Bindings = {}
        if isinstance(group.subject, Variable):
            bindings[group.subject] = subject
        elif group.subject != subject:
            return None
        if group.type_variable is not None:
            if source.mapping.type_iri is None:
                return None
            bindings[group.type_variable] = IRI(source.mapping.type_iri)

        for predicate_iri, obj in group.properties:
            term = self._object_term(source.by_predicate[predicate_iri], row)
            if term is None:
                return None  # null column: this row emits no such triple
            if isinstance(obj, Variable):
                existing = bindings.get(obj)
                if existing is not None and existing != term:
                    return None
                bindings[obj] = term
            elif obj != term:
                return None

        if group.geometry_node is not None or group.wkt_object is not None:
            geometry_map = source.geometry_map
            if geometry_map is None:
                return None
            geometry = row.get(geometry_map.column)
            if geometry is None:
                return None
            geometry_iri = IRI(subject.value + "/geom")
            if isinstance(group.geometry_node, Variable):
                bindings[group.geometry_node] = geometry_iri
            elif group.geometry_node is not None and group.geometry_node != geometry_iri:
                return None
            if isinstance(group.wkt_object, Variable):
                bindings[group.wkt_object] = geometry_literal(geometry)
            elif group.wkt_object is not None and group.wkt_object != geometry_literal(geometry):
                return None
        return bindings

    @staticmethod
    def _object_term(object_map: ObjectMap, row: Dict[str, Any]) -> Optional[Term]:
        if object_map.is_geometry:
            raise ReproError(
                "geometry object maps are exposed via geo:hasGeometry/geo:asWKT"
            )
        if object_map.constant is not None:
            if object_map.constant.startswith("http"):
                return IRI(object_map.constant)
            return Literal(object_map.constant)
        if object_map.template is not None:
            try:
                return IRI(expand_template(object_map.template, row))
            except Exception:
                return None
        value = row.get(object_map.column)
        if value is None:
            return None
        if object_map.datatype is not None:
            return Literal(str(value), datatype=object_map.datatype)
        if object_map.language is not None:
            return Literal(str(value), language=object_map.language)
        if isinstance(value, (bool, int, float)):
            return Literal.from_python(value)
        return Literal(str(value))


# ---------------------------------------------------------------------------
# Filter pushdown helpers
# ---------------------------------------------------------------------------

def _push_comparison(
    expression: Expression, column_of: Dict[Variable, str]
) -> Optional[Predicate]:
    """``?v op constant`` -> (column, op, python value), if ?v is mapped."""
    if not isinstance(expression, BinaryOp):
        return None
    if expression.operator not in ("=", "!=", "<", "<=", ">", ">="):
        return None
    left, right = expression.left, expression.right
    if isinstance(left, VarExpr) and isinstance(right, TermExpr):
        variable, term = left.variable, right.term
        operator = expression.operator
    elif isinstance(left, TermExpr) and isinstance(right, VarExpr):
        variable, term = right.variable, left.term
        operator = _flip(expression.operator)
    else:
        return None
    column = column_of.get(variable)
    if column is None or not isinstance(term, Literal) or is_geometry_literal(term):
        return None
    return (column, operator, term.to_python())


def _flip(operator: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[operator]


def _spatial_bbox(expression: Expression, wkt_variable: Variable):
    """Bounding box of an indexable spatial filter over *wkt_variable*."""
    if not isinstance(expression, FunctionCall):
        return None
    if expression.name not in INDEXABLE_RELATIONS or len(expression.args) != 2:
        return None
    first, second = expression.args
    constant = None
    if isinstance(first, VarExpr) and first.variable == wkt_variable and isinstance(second, TermExpr):
        constant = second.term
    elif isinstance(second, VarExpr) and second.variable == wkt_variable and isinstance(first, TermExpr):
        constant = first.term
    if constant is None or not is_geometry_literal(constant):
        return None
    return literal_geometry(constant).bbox


def _hash_join(left: List[Bindings], right: List[Bindings]) -> List[Bindings]:
    """Natural join of two solution lists on their shared variables."""
    if not left or not right:
        return []
    shared = set(left[0].keys())
    for solution in left:
        shared &= set(solution.keys())
    right_vars = set(right[0].keys())
    for solution in right:
        right_vars &= set(solution.keys())
    join_vars = tuple(sorted(shared & right_vars, key=lambda v: v.name))
    if not join_vars:
        return [{**a, **b} for a in left for b in right]
    buckets: Dict[Tuple, List[Bindings]] = {}
    for solution in right:
        buckets.setdefault(
            tuple(solution[v] for v in join_vars), []
        ).append(solution)
    joined: List[Bindings] = []
    for solution in left:
        key = tuple(solution[v] for v in join_vars)
        for match in buckets.get(key, ()):  # compatible on join vars
            merged = dict(solution)
            conflict = False
            for variable, term in match.items():
                if variable in merged and merged[variable] != term:
                    conflict = True
                    break
                merged[variable] = term
            if not conflict:
                joined.append(merged)
    return joined
