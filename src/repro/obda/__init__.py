"""Ontop-spatial: virtual geospatial RDF views over relational data.

The paper lists "performing data analytics (Strabon [15] and Ontop-spatial
[1])" among the C3 technologies. Where Strabon *materialises* RDF,
Ontop-spatial answers GeoSPARQL against data that stays in a relational
database, by rewriting queries over R2RML mappings (OBDA — ontology-based
data access).

This package reproduces that architecture:

* :mod:`repro.obda.relational` — a small in-memory relational engine
  (tables, typed columns, predicate-pushdown scans)
* :class:`~repro.obda.virtual.VirtualGeoStore` — answers SPARQL
  (BGP + FILTER, including ``geof:`` spatial filters) by translating the
  query into table scans and hash joins over
  :class:`~repro.geotriples.mapping.TriplesMap` mappings — **no triple is
  ever materialised**.
"""

from repro.obda.relational import Column, Database, Table
from repro.obda.virtual import VirtualGeoStore

__all__ = ["Column", "Database", "Table", "VirtualGeoStore"]
