"""A small in-memory relational engine (the database under the OBDA layer).

Tables hold typed columns (including a ``geometry`` type whose values are
:class:`~repro.geometry.primitives.Geometry` objects). Scans accept pushed
predicates — column comparisons and geometry bounding-box tests — so the
virtual store can do selection at the source, the property that makes OBDA
worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geometry import BoundingBox, Geometry

COLUMN_TYPES = ("string", "integer", "float", "boolean", "geometry")


@dataclass(frozen=True)
class Column:
    """A typed column definition."""

    name: str
    type: str = "string"

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise ReproError(f"unknown column type {self.type!r}")
        if not self.name.isidentifier():
            raise ReproError(f"invalid column name {self.name!r}")


#: A pushed predicate: (column, operator, value). Operators: = != < <= > >=
#: for scalars, "bbox_intersects" for geometry columns.
Predicate = Tuple[str, str, Any]

_SCALAR_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Table:
    """One relation: a schema and a list of rows (dicts)."""

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise ReproError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate column in table {name!r}")
        self.name = name
        self.columns = {c.name: c for c in columns}
        self._rows: List[Dict[str, Any]] = []
        self.scan_count = 0
        self.rows_scanned = 0

    def insert(self, row: Dict[str, Any]) -> None:
        """Insert a row; missing columns become None, extras are rejected."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise ReproError(f"unknown columns {sorted(unknown)} for {self.name!r}")
        validated: Dict[str, Any] = {}
        for name, column in self.columns.items():
            value = row.get(name)
            if value is not None:
                self._check_type(column, value)
            validated[name] = value
        self._rows.append(validated)

    @staticmethod
    def _check_type(column: Column, value: Any) -> None:
        expected = {
            "string": str,
            "integer": int,
            "float": (int, float),
            "boolean": bool,
            "geometry": Geometry,
        }[column.type]
        if column.type == "integer" and isinstance(value, bool):
            raise ReproError(f"column {column.name!r} expects integer, got bool")
        if not isinstance(value, expected):
            raise ReproError(
                f"column {column.name!r} expects {column.type}, "
                f"got {type(value).__name__}"
            )

    def insert_many(self, rows: Sequence[Dict[str, Any]]) -> None:
        for row in rows:
            self.insert(row)

    def __len__(self) -> int:
        return len(self._rows)

    def scan(self, predicates: Sequence[Predicate] = ()) -> Iterator[Dict[str, Any]]:
        """Yield rows satisfying all *predicates* (metered)."""
        self.scan_count += 1
        compiled = [self._compile(p) for p in predicates]
        for row in self._rows:
            self.rows_scanned += 1
            if all(test(row) for test in compiled):
                yield row

    def _compile(self, predicate: Predicate) -> Callable[[Dict[str, Any]], bool]:
        column, operator, value = predicate
        if column not in self.columns:
            raise ReproError(f"unknown column {column!r} in predicate")
        if operator == "bbox_intersects":
            if self.columns[column].type != "geometry":
                raise ReproError(f"bbox_intersects needs a geometry column")
            if not isinstance(value, BoundingBox):
                raise ReproError("bbox_intersects needs a BoundingBox value")
            return lambda row: (
                row[column] is not None and row[column].bbox.intersects(value)
            )
        op = _SCALAR_OPS.get(operator)
        if op is None:
            raise ReproError(f"unknown predicate operator {operator!r}")

        def test(row: Dict[str, Any]) -> bool:
            cell = row[column]
            if cell is None:
                return False
            try:
                return op(cell, value)
            except TypeError:
                return False

        return test


class Database:
    """A named collection of tables."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        if name in self._tables:
            raise ReproError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise ReproError(f"no such table {name!r}")
        return self._tables[name]

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def total_rows_scanned(self) -> int:
        return sum(t.rows_scanned for t in self._tables.values())
