"""Raster substrate: grids, products, and synthetic Sentinel scenes.

The paper's data source is the Copernicus Sentinel archive; this package
provides the in-repo substitute: a parametric generator for Sentinel-1 SAR
and Sentinel-2 multispectral scenes over synthetic land-cover and sea-ice
fields, plus the grid/product machinery the pipeline and the applications
operate on.
"""

from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.products import Product, ProductArchive, ProductLevel, Mission
from repro.raster.sentinel import (
    LandCover,
    SeaIce,
    SentinelScene,
    landcover_field,
    sea_ice_field,
    sentinel1_scene,
    sentinel2_scene,
)
from repro.raster.tiles import Tile, iter_tiles
from repro.raster.timeseries import (
    crop_ndvi_profile,
    ice_concentration_profile,
    scene_time_series,
)
from repro.raster.stats import (
    polygon_masks,
    rasterize_polygon,
    zonal_mean,
    zonal_stats,
)

__all__ = [
    "GeoTransform",
    "LandCover",
    "Mission",
    "Product",
    "ProductArchive",
    "ProductLevel",
    "RasterGrid",
    "SeaIce",
    "SentinelScene",
    "Tile",
    "crop_ndvi_profile",
    "ice_concentration_profile",
    "iter_tiles",
    "landcover_field",
    "polygon_masks",
    "rasterize_polygon",
    "scene_time_series",
    "sea_ice_field",
    "sentinel1_scene",
    "sentinel2_scene",
    "zonal_mean",
    "zonal_stats",
]
