"""Scene tiling.

Distributed processing works on tiles, not whole scenes: the cluster
simulator schedules one task per tile and the HopsFS-sim stores one object
per tile. :func:`iter_tiles` cuts a raster into fixed-size tiles (edge tiles
may be smaller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import RasterError
from repro.raster.grid import RasterGrid


@dataclass(frozen=True)
class Tile:
    """One tile of a scene: the sub-raster plus its index and pixel offset."""

    tile_row: int
    tile_col: int
    row_offset: int
    col_offset: int
    grid: RasterGrid

    @property
    def key(self) -> Tuple[int, int]:
        return (self.tile_row, self.tile_col)

    @property
    def name(self) -> str:
        return f"tile_{self.tile_row:03d}_{self.tile_col:03d}"


def iter_tiles(grid: RasterGrid, tile_size: int, copy: bool = False) -> Iterator[Tile]:
    """Cut *grid* into tiles of ``tile_size`` x ``tile_size`` pixels.

    ``copy=False`` yields view tiles sharing the parent's memory (fine for
    read-only scans); tiles destined for storage or mutation must be cut
    with ``copy=True`` so writes cannot alias back into the parent scene.
    """
    if tile_size < 1:
        raise RasterError(f"tile_size must be >= 1, got {tile_size}")
    for tile_row, row in enumerate(range(0, grid.height, tile_size)):
        height = min(tile_size, grid.height - row)
        for tile_col, col in enumerate(range(0, grid.width, tile_size)):
            width = min(tile_size, grid.width - col)
            yield Tile(
                tile_row=tile_row,
                tile_col=tile_col,
                row_offset=row,
                col_offset=col,
                grid=grid.window(row, col, height, width, copy=copy),
            )


def tile_count(grid: RasterGrid, tile_size: int) -> int:
    """Number of tiles :func:`iter_tiles` will produce."""
    if tile_size < 1:
        raise RasterError(f"tile_size must be >= 1, got {tile_size}")
    rows = (grid.height + tile_size - 1) // tile_size
    cols = (grid.width + tile_size - 1) // tile_size
    return rows * cols
