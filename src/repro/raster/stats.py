"""Raster/vector statistics: rasterization and zonal summaries.

Used by the Food Security application to aggregate per-field water demand and
by the weak labeller to stamp cartographic polygons onto pixel grids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RasterError
from repro.geometry import Polygon
from repro.raster.grid import GeoTransform, RasterGrid


def rasterize_polygon(
    polygon: Polygon, transform: GeoTransform, shape: Tuple[int, int]
) -> np.ndarray:
    """Boolean mask of pixels whose center lies inside *polygon*.

    Scanline algorithm: for each pixel row, intersect the horizontal line
    through the pixel centers with every ring edge and fill between crossing
    pairs — O(rows x vertices), fast enough for scene-scale polygons.

    Fill spans are *left-closed*: a pixel center exactly on the left crossing
    of a span is inside, one exactly on the right crossing is outside (the
    standard ``[start, end)`` convention shared by GDAL's all-touched=False
    rasterizer). The symmetric convention means two polygons sharing an edge
    aligned to pixel centers partition the pixels instead of dropping or
    double-counting a column.
    """
    height, width = shape
    if height <= 0 or width <= 0:
        raise RasterError("rasterize shape must be positive")
    mask = np.zeros((height, width), dtype=bool)
    size = transform.pixel_size
    col_centers = transform.origin_x + (np.arange(width) + 0.5) * size

    rings = polygon.rings
    for row in range(height):
        y = transform.origin_y - (row + 0.5) * size
        inside = np.zeros(width, dtype=bool)
        # Parity per ring: crossing an exterior edge enters, crossing a hole
        # edge exits — XOR of all ring parities handles both at once.
        for ring in rings:
            crossings = []
            for (x1, y1), (x2, y2) in zip(ring, ring[1:]):
                if (y1 > y) != (y2 > y):
                    crossings.append(x1 + (y - y1) * (x2 - x1) / (y2 - y1))
            if not crossings:
                continue
            crossings.sort()
            for start, end in zip(crossings[0::2], crossings[1::2]):
                inside ^= (col_centers >= start) & (col_centers < end)
        mask[row] = inside
    return mask


def polygon_masks(
    polygons: Sequence[Polygon], transform: GeoTransform, shape: Tuple[int, int]
) -> List[np.ndarray]:
    """Rasterize each polygon once for a shared grid geometry.

    Zonal summaries over many bands, time steps, or scenes sharing one
    transform should hoist this out of the per-band/per-step loop and pass
    the result to :func:`zonal_stats`/:func:`zonal_mean` — rasterization is
    the expensive part and depends only on (polygon, transform, shape).
    """
    return [rasterize_polygon(polygon, transform, shape) for polygon in polygons]


def zonal_mean(
    grid: RasterGrid,
    polygon: Polygon,
    band: int = 0,
    mask: Optional[np.ndarray] = None,
) -> Optional[float]:
    """Mean band value over the polygon, or None if no pixel center falls inside.

    ``mask`` short-circuits rasterization with a precomputed boolean mask
    (from :func:`polygon_masks`) so repeated calls over bands or time steps
    sharing a transform don't re-rasterize the polygon.
    """
    if mask is None:
        mask = rasterize_polygon(polygon, grid.transform, (grid.height, grid.width))
    elif mask.shape != (grid.height, grid.width):
        raise RasterError(
            f"mask shape {mask.shape} does not match raster "
            f"{(grid.height, grid.width)}"
        )
    if not mask.any():
        return None
    return float(grid.band(band)[mask].mean())


def zonal_stats(
    grid: RasterGrid,
    polygons: Sequence[Polygon],
    band: int = 0,
    masks: Optional[Sequence[np.ndarray]] = None,
) -> Dict[int, Dict[str, float]]:
    """Per-polygon mean/min/max/count for one band (index -> stats).

    ``masks`` accepts the output of :func:`polygon_masks` computed once for
    this grid geometry; without it every call re-rasterizes every polygon.
    """
    if masks is None:
        masks = polygon_masks(polygons, grid.transform, (grid.height, grid.width))
    elif len(masks) != len(polygons):
        raise RasterError(
            f"got {len(masks)} masks for {len(polygons)} polygons"
        )
    results: Dict[int, Dict[str, float]] = {}
    band_data = grid.band(band)
    for index, mask in enumerate(masks):
        if mask.shape != (grid.height, grid.width):
            raise RasterError(
                f"mask shape {mask.shape} does not match raster "
                f"{(grid.height, grid.width)}"
            )
        if not mask.any():
            continue
        values = band_data[mask]
        results[index] = {
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "count": int(mask.sum()),
        }
    return results


def class_fractions(truth: np.ndarray) -> Dict[int, float]:
    """Fraction of pixels per class value in a label field."""
    truth = np.asarray(truth)
    if truth.size == 0:
        raise RasterError("empty label field")
    values, counts = np.unique(truth, return_counts=True)
    total = truth.size
    return {int(v): float(c) / total for v, c in zip(values, counts)}
