"""Raster/vector statistics: rasterization and zonal summaries.

Used by the Food Security application to aggregate per-field water demand and
by the weak labeller to stamp cartographic polygons onto pixel grids.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RasterError
from repro.geometry import Polygon
from repro.raster.grid import GeoTransform, RasterGrid


def rasterize_polygon(
    polygon: Polygon, transform: GeoTransform, shape: Tuple[int, int]
) -> np.ndarray:
    """Boolean mask of pixels whose center lies inside *polygon*.

    Scanline algorithm: for each pixel row, intersect the horizontal line
    through the pixel centers with every ring edge and fill between crossing
    pairs — O(rows x vertices), fast enough for scene-scale polygons.
    """
    height, width = shape
    if height <= 0 or width <= 0:
        raise RasterError("rasterize shape must be positive")
    mask = np.zeros((height, width), dtype=bool)
    size = transform.pixel_size
    col_centers = transform.origin_x + (np.arange(width) + 0.5) * size

    rings = polygon.rings
    for row in range(height):
        y = transform.origin_y - (row + 0.5) * size
        inside = np.zeros(width, dtype=bool)
        # Parity per ring: crossing an exterior edge enters, crossing a hole
        # edge exits — XOR of all ring parities handles both at once.
        for ring in rings:
            crossings = []
            for (x1, y1), (x2, y2) in zip(ring, ring[1:]):
                if (y1 > y) != (y2 > y):
                    crossings.append(x1 + (y - y1) * (x2 - x1) / (y2 - y1))
            if not crossings:
                continue
            crossings.sort()
            for start, end in zip(crossings[0::2], crossings[1::2]):
                inside ^= (col_centers > start) & (col_centers <= end)
        mask[row] = inside
    return mask


def zonal_mean(
    grid: RasterGrid, polygon: Polygon, band: int = 0
) -> Optional[float]:
    """Mean band value over the polygon, or None if no pixel center falls inside."""
    mask = rasterize_polygon(polygon, grid.transform, (grid.height, grid.width))
    if not mask.any():
        return None
    return float(grid.band(band)[mask].mean())


def zonal_stats(
    grid: RasterGrid, polygons: Sequence[Polygon], band: int = 0
) -> Dict[int, Dict[str, float]]:
    """Per-polygon mean/min/max/count for one band (index -> stats)."""
    results: Dict[int, Dict[str, float]] = {}
    band_data = grid.band(band)
    for index, polygon in enumerate(polygons):
        mask = rasterize_polygon(polygon, grid.transform, (grid.height, grid.width))
        if not mask.any():
            continue
        values = band_data[mask]
        results[index] = {
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "count": int(mask.sum()),
        }
    return results


def class_fractions(truth: np.ndarray) -> Dict[int, float]:
    """Fraction of pixels per class value in a label field."""
    truth = np.asarray(truth)
    if truth.size == 0:
        raise RasterError("empty label field")
    values, counts = np.unique(truth, return_counts=True)
    total = truth.size
    return {int(v): float(c) / total for v, c in zip(values, counts)}
