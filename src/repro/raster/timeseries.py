"""Seasonal profiles and scene time series.

Challenge C1 stresses that "the temporal dimension plays a very important role
for the characterization of the information content of the image (e.g., land
cover or sea ice)". These generators provide that temporal structure: crop
phenology (double-logistic NDVI curves with crop-specific timing) and the
annual sea-ice concentration cycle, plus a convenience generator producing a
full year of scenes.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RasterError
from repro.raster.sentinel import (
    LandCover,
    SentinelScene,
    sea_ice_field,
    sentinel1_scene,
    sentinel2_scene,
)

# Double-logistic phenology parameters per class:
# (green-up midpoint doy, green-up rate, senescence midpoint doy, senescence
# rate, peak vigor). Winter crops green up early; maize is a summer crop.
_PHENOLOGY = {
    LandCover.WHEAT: (95.0, 0.09, 195.0, 0.11, 0.95),
    LandCover.MAIZE: (150.0, 0.10, 265.0, 0.09, 1.00),
    LandCover.RAPESEED: (80.0, 0.10, 185.0, 0.12, 0.90),
    LandCover.GRASSLAND: (75.0, 0.05, 290.0, 0.05, 0.75),
    LandCover.FOREST: (105.0, 0.07, 290.0, 0.07, 0.85),
}


def crop_ndvi_profile(landcover: LandCover, day_of_year: int) -> float:
    """Seasonal vegetation vigor in [0, 1] for a class at a day of year.

    Classes with no phenology entry (water, urban, bare soil) return 0.
    """
    if not 1 <= day_of_year <= 366:
        raise RasterError(f"day_of_year must be in 1..366, got {day_of_year}")
    params = _PHENOLOGY.get(landcover)
    if params is None:
        return 0.0
    up_mid, up_rate, down_mid, down_rate, peak = params
    rising = 1.0 / (1.0 + math.exp(-up_rate * (day_of_year - up_mid)))
    falling = 1.0 / (1.0 + math.exp(down_rate * (day_of_year - down_mid)))
    return peak * rising * falling


def ice_concentration_profile(day_of_year: int, winter_peak: float = 0.9) -> float:
    """Annual sea-ice concentration cycle in [0, 1]; max in March, min in September."""
    if not 1 <= day_of_year <= 366:
        raise RasterError(f"day_of_year must be in 1..366, got {day_of_year}")
    if not 0.0 <= winter_peak <= 1.0:
        raise RasterError(f"winter_peak must be in [0, 1], got {winter_peak}")
    # Cosine with maximum around doy 75 (mid March) and minimum around doy 258.
    phase = 2.0 * math.pi * (day_of_year - 75.0) / 365.0
    return winter_peak * (0.55 + 0.45 * math.cos(phase))


def scene_time_series(
    truth: np.ndarray,
    days: Sequence[int],
    mission: str = "S2",
    seed: int = 0,
    cloud_fraction: float = 0.0,
    signatures: str = "land",
) -> List[SentinelScene]:
    """Render one scene per acquisition day over a fixed truth field."""
    if mission not in ("S1", "S2"):
        raise RasterError(f"unknown mission {mission!r}")
    scenes: List[SentinelScene] = []
    for index, day in enumerate(days):
        if mission == "S2":
            scenes.append(
                sentinel2_scene(
                    truth,
                    day_of_year=day,
                    seed=seed + index,
                    cloud_fraction=cloud_fraction,
                )
            )
        else:
            scenes.append(
                sentinel1_scene(
                    truth, signatures=signatures, seed=seed + index, day_of_year=day
                )
            )
    return scenes


def ice_season_series(
    height: int,
    width: int,
    days: Sequence[int],
    seed: int = 0,
) -> List[SentinelScene]:
    """A sea-ice season: the ice field itself evolves with the annual cycle."""
    scenes: List[SentinelScene] = []
    for index, day in enumerate(days):
        extent = ice_concentration_profile(day)
        truth = sea_ice_field(height, width, seed=seed, ice_extent=extent)
        scenes.append(
            sentinel1_scene(truth, signatures="ice", seed=seed + index, day_of_year=day)
        )
    return scenes
