"""Raster grids: numpy arrays with georeferencing.

A :class:`RasterGrid` couples a ``(bands, rows, cols)`` float array with a
:class:`GeoTransform` mapping pixel indices to planar map coordinates (the
local metric frame from :mod:`repro.geometry.crs`). Row 0 is the northern
edge, consistent with imagery conventions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import RasterError
from repro.geometry import BoundingBox, Polygon


@dataclass(frozen=True)
class GeoTransform:
    """Affine pixel->map transform (axis-aligned, square pixels).

    ``origin_x/origin_y`` locate the *top-left corner* of pixel (0, 0);
    y decreases with rows.
    """

    origin_x: float
    origin_y: float
    pixel_size: float

    def __post_init__(self) -> None:
        if self.pixel_size <= 0:
            raise RasterError(f"pixel_size must be positive, got {self.pixel_size}")

    def pixel_to_map(self, row: float, col: float) -> Tuple[float, float]:
        """Map coordinates of a pixel's *center*."""
        x = self.origin_x + (col + 0.5) * self.pixel_size
        y = self.origin_y - (row + 0.5) * self.pixel_size
        return x, y

    def map_to_pixel(self, x: float, y: float) -> Tuple[int, int]:
        """(row, col) of the pixel containing map point (x, y)."""
        col = int(np.floor((x - self.origin_x) / self.pixel_size))
        row = int(np.floor((self.origin_y - y) / self.pixel_size))
        return row, col


class RasterGrid:
    """A georeferenced multi-band raster."""

    def __init__(self, data: np.ndarray, transform: GeoTransform):
        data = np.asarray(data)
        if data.ndim == 2:
            data = data[np.newaxis, :, :]
        if data.ndim != 3:
            raise RasterError(f"raster data must be 2-D or 3-D, got ndim={data.ndim}")
        if data.shape[1] == 0 or data.shape[2] == 0:
            raise RasterError("raster must have positive height and width")
        self.data = data
        self.transform = transform

    # ------------------------------------------------------------------
    # Shape and extent
    # ------------------------------------------------------------------

    @property
    def band_count(self) -> int:
        return self.data.shape[0]

    @property
    def height(self) -> int:
        return self.data.shape[1]

    @property
    def width(self) -> int:
        return self.data.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.data.shape

    @property
    def resolution(self) -> float:
        return self.transform.pixel_size

    @property
    def bbox(self) -> BoundingBox:
        size = self.transform.pixel_size
        return BoundingBox(
            self.transform.origin_x,
            self.transform.origin_y - self.height * size,
            self.transform.origin_x + self.width * size,
            self.transform.origin_y,
        )

    @property
    def footprint(self) -> Polygon:
        box = self.bbox
        return Polygon.box(box.min_x, box.min_y, box.max_x, box.max_y)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def band(self, index: int) -> np.ndarray:
        if not 0 <= index < self.band_count:
            raise RasterError(f"band index {index} out of range (0..{self.band_count - 1})")
        return self.data[index]

    # ------------------------------------------------------------------
    # Windows and values
    # ------------------------------------------------------------------

    def window(
        self, row: int, col: int, height: int, width: int, copy: bool = False
    ) -> "RasterGrid":
        """A sub-raster starting at (row, col).

        With ``copy=False`` (the default) the result shares memory with the
        parent: cheap for read-only windows, but mutating either side writes
        through to the other. Windows that outlive the parent or feed a
        storage path (tiling for HopsFS, datacube ingest) must pass
        ``copy=True`` to get an independent buffer.
        """
        if row < 0 or col < 0 or row + height > self.height or col + width > self.width:
            raise RasterError(
                f"window ({row},{col},{height},{width}) exceeds raster "
                f"{self.height}x{self.width}"
            )
        size = self.transform.pixel_size
        transform = GeoTransform(
            self.transform.origin_x + col * size,
            self.transform.origin_y - row * size,
            size,
        )
        data = self.data[:, row : row + height, col : col + width]
        if copy:
            data = data.copy()
        return RasterGrid(data, transform)

    def value_at(self, x: float, y: float, band: int = 0) -> float:
        """Sample the band value at map coordinates (nearest pixel)."""
        row, col = self.transform.map_to_pixel(x, y)
        if not (0 <= row < self.height and 0 <= col < self.width):
            raise RasterError(f"point ({x}, {y}) outside raster extent")
        return float(self.data[band, row, col])

    def iter_pixel_centers(self) -> Iterator[Tuple[int, int, float, float]]:
        """Yield (row, col, x, y) for every pixel center."""
        for row in range(self.height):
            for col in range(self.width):
                x, y = self.transform.pixel_to_map(row, col)
                yield row, col, x, y

    # ------------------------------------------------------------------
    # Resampling
    # ------------------------------------------------------------------

    def resample(self, factor: int, method: str = "mean") -> "RasterGrid":
        """Downsample by an integer *factor* using block aggregation.

        ``method`` is ``mean`` (continuous data) or ``mode`` (class maps).
        Edge pixels that do not fill a block are dropped.
        """
        if factor < 1:
            raise RasterError("resample factor must be >= 1")
        if factor == 1:
            return self
        new_height = self.height // factor
        new_width = self.width // factor
        if new_height == 0 or new_width == 0:
            raise RasterError(
                f"factor {factor} too large for raster {self.height}x{self.width}"
            )
        cropped = self.data[:, : new_height * factor, : new_width * factor]
        blocks = cropped.reshape(
            self.band_count, new_height, factor, new_width, factor
        )
        if method == "mean":
            aggregated = blocks.mean(axis=(2, 4))
        elif method == "mode":
            aggregated = np.empty(
                (self.band_count, new_height, new_width), dtype=self.data.dtype
            )
            flat = blocks.transpose(0, 1, 3, 2, 4).reshape(
                self.band_count, new_height, new_width, factor * factor
            )
            for band in range(self.band_count):
                for row in range(new_height):
                    for col in range(new_width):
                        values, counts = np.unique(
                            flat[band, row, col], return_counts=True
                        )
                        aggregated[band, row, col] = values[np.argmax(counts)]
        else:
            raise RasterError(f"unknown resample method {method!r}")
        transform = GeoTransform(
            self.transform.origin_x,
            self.transform.origin_y,
            self.transform.pixel_size * factor,
        )
        return RasterGrid(aggregated, transform)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RasterGrid {self.band_count}x{self.height}x{self.width} "
            f"@{self.resolution}m>"
        )
