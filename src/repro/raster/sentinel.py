"""Synthetic Sentinel-1/2 scene generation.

The substitution for the Copernicus archive (see DESIGN.md): parametric
scenes over procedurally-generated land-cover and sea-ice class fields.

* **Land cover / sea ice fields** — smooth random fields (Gaussian-filtered
  white noise, one per class) whose argmax yields contiguous patches, the
  spatial structure classifiers actually face.
* **Sentinel-2 MSI** — 13 bands; each class has a spectral signature, the
  vegetation classes additionally follow a day-of-year phenology (NDVI
  profile from :mod:`repro.raster.timeseries`); additive Gaussian sensor
  noise and optional cloud blobs.
* **Sentinel-1 SAR** — VV/VH backscatter (in dB) per class with multiplicative
  gamma speckle, the noise model that makes SAR classification hard.

Every generator takes a ``seed`` and is fully deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.errors import RasterError
from repro.raster.grid import GeoTransform, RasterGrid


class LandCover(enum.IntEnum):
    """Land-cover classes for the Food Security application (A1)."""

    WATER = 0
    URBAN = 1
    FOREST = 2
    WHEAT = 3
    MAIZE = 4
    RAPESEED = 5
    GRASSLAND = 6
    BARE_SOIL = 7


#: The crop classes among the land covers (used by the crop mapper).
CROP_CLASSES = (LandCover.WHEAT, LandCover.MAIZE, LandCover.RAPESEED)


class SeaIce(enum.IntEnum):
    """WMO stage-of-development sea-ice classes for the Polar application (A2)."""

    OPEN_WATER = 0
    NEW_ICE = 1
    YOUNG_ICE = 2
    FIRST_YEAR_ICE = 3
    OLD_ICE = 4


#: Sentinel-2 MSI band count (13 spectral bands).
S2_BANDS = 13

# Representative per-band reflectance means for each land-cover class.
# Bands ordered B01..B12 (coastal, blue, green, red, 3x red edge, NIR,
# narrow NIR, water vapour, cirrus, SWIR1, SWIR2). Values in [0, 1].
_S2_SIGNATURES: Dict[int, np.ndarray] = {
    LandCover.WATER: np.array(
        [0.10, 0.08, 0.06, 0.04, 0.03, 0.03, 0.02, 0.02, 0.02, 0.01, 0.01, 0.01, 0.01]
    ),
    LandCover.URBAN: np.array(
        [0.18, 0.20, 0.22, 0.24, 0.25, 0.26, 0.27, 0.28, 0.28, 0.26, 0.24, 0.30, 0.28]
    ),
    LandCover.FOREST: np.array(
        [0.04, 0.04, 0.06, 0.04, 0.08, 0.18, 0.22, 0.26, 0.28, 0.27, 0.25, 0.12, 0.06]
    ),
    LandCover.WHEAT: np.array(
        [0.05, 0.06, 0.09, 0.07, 0.12, 0.22, 0.28, 0.32, 0.34, 0.33, 0.30, 0.18, 0.10]
    ),
    LandCover.MAIZE: np.array(
        [0.05, 0.05, 0.08, 0.06, 0.11, 0.24, 0.30, 0.36, 0.38, 0.36, 0.33, 0.16, 0.09]
    ),
    LandCover.RAPESEED: np.array(
        [0.06, 0.08, 0.14, 0.12, 0.16, 0.26, 0.30, 0.34, 0.35, 0.34, 0.31, 0.20, 0.12]
    ),
    LandCover.GRASSLAND: np.array(
        [0.05, 0.06, 0.10, 0.08, 0.13, 0.20, 0.24, 0.28, 0.29, 0.28, 0.26, 0.20, 0.12]
    ),
    LandCover.BARE_SOIL: np.array(
        [0.12, 0.14, 0.18, 0.22, 0.26, 0.28, 0.30, 0.32, 0.33, 0.32, 0.30, 0.38, 0.34]
    ),
}

#: Classes whose NIR signal follows the seasonal phenology profile.
_PHENOLOGY_CLASSES = {
    LandCover.WHEAT,
    LandCover.MAIZE,
    LandCover.RAPESEED,
    LandCover.GRASSLAND,
    LandCover.FOREST,
}

# Sentinel-1 backscatter means in dB (VV, VH) per sea-ice class. Rougher /
# more deformed ice scatters more; open water depends on wind but sits low
# in VH.
_S1_ICE_SIGNATURES: Dict[int, Tuple[float, float]] = {
    SeaIce.OPEN_WATER: (-18.0, -28.0),
    SeaIce.NEW_ICE: (-20.0, -26.0),
    SeaIce.YOUNG_ICE: (-16.0, -23.0),
    SeaIce.FIRST_YEAR_ICE: (-12.0, -19.0),
    SeaIce.OLD_ICE: (-8.0, -14.0),
}

# Sentinel-1 backscatter means (VV, VH) per land-cover class, for the crop
# mapper's SAR modality.
_S1_LAND_SIGNATURES: Dict[int, Tuple[float, float]] = {
    LandCover.WATER: (-22.0, -30.0),
    LandCover.URBAN: (-3.0, -10.0),
    LandCover.FOREST: (-8.0, -13.0),
    LandCover.WHEAT: (-12.0, -18.0),
    LandCover.MAIZE: (-10.0, -16.0),
    LandCover.RAPESEED: (-11.0, -15.0),
    LandCover.GRASSLAND: (-13.0, -19.0),
    LandCover.BARE_SOIL: (-15.0, -22.0),
}


@dataclass
class SentinelScene:
    """A synthetic scene: imagery plus the ground truth that generated it."""

    grid: RasterGrid
    truth: np.ndarray  # (rows, cols) int class labels
    mission: str  # "S1" or "S2"
    day_of_year: int = 180
    cloud_mask: Optional[np.ndarray] = None  # bool (rows, cols), S2 only

    @property
    def shape(self) -> Tuple[int, int]:
        return self.truth.shape

    def clear_fraction(self) -> float:
        """Fraction of pixels not obscured by cloud (1.0 for SAR)."""
        if self.cloud_mask is None:
            return 1.0
        return float(1.0 - self.cloud_mask.mean())


def _smooth_noise(shape: Tuple[int, int], sigma: float, rng: np.random.Generator) -> np.ndarray:
    noise = rng.standard_normal(shape)
    smoothed = ndimage.gaussian_filter(noise, sigma=sigma)
    std = smoothed.std()
    if std > 0:
        smoothed = smoothed / std
    return smoothed


def landcover_field(
    height: int,
    width: int,
    classes: Sequence[int] = tuple(LandCover),
    seed: int = 0,
    blob_scale: float = 8.0,
) -> np.ndarray:
    """Generate a patchy class field: argmax of per-class smooth noise."""
    if height <= 0 or width <= 0:
        raise RasterError("field dimensions must be positive")
    if not classes:
        raise RasterError("landcover_field requires at least one class")
    rng = np.random.default_rng(seed)
    scores = np.stack(
        [_smooth_noise((height, width), blob_scale, rng) for _ in classes]
    )
    field = np.asarray(classes)[np.argmax(scores, axis=0)]
    return field.astype(np.int16)


def sea_ice_field(
    height: int,
    width: int,
    seed: int = 0,
    ice_extent: float = 0.6,
    blob_scale: float = 10.0,
) -> np.ndarray:
    """Generate a sea-ice class field with a north-south ice gradient.

    ``ice_extent`` in [0, 1] is the fraction of the scene (from the top/north)
    dominated by ice; the marginal ice zone sits at the transition.
    """
    if not 0.0 <= ice_extent <= 1.0:
        raise RasterError(f"ice_extent must be in [0, 1], got {ice_extent}")
    rng = np.random.default_rng(seed)
    # Latitude-driven baseline: positive in the ice zone, negative below.
    # The ice edge is pushed slightly past the scene at the extremes so that
    # ice_extent=0 is (almost) all water and ice_extent=1 (almost) all ice.
    frac = np.linspace(0.0, 1.0, height)[:, np.newaxis]  # 0 = north edge
    edge = -0.25 + 1.5 * ice_extent
    gradient = (edge - frac) * 12.0
    thickness = gradient + 1.0 * _smooth_noise((height, width), blob_scale, rng)
    field = np.full((height, width), int(SeaIce.OPEN_WATER), dtype=np.int16)
    field[thickness > 0.0] = int(SeaIce.NEW_ICE)
    field[thickness > 1.5] = int(SeaIce.YOUNG_ICE)
    field[thickness > 3.0] = int(SeaIce.FIRST_YEAR_ICE)
    field[thickness > 5.0] = int(SeaIce.OLD_ICE)
    return field


def _default_transform(pixel_size: float) -> GeoTransform:
    return GeoTransform(origin_x=0.0, origin_y=0.0, pixel_size=pixel_size)


def sentinel2_scene(
    truth: np.ndarray,
    day_of_year: int = 180,
    seed: int = 0,
    noise_std: float = 0.02,
    cloud_fraction: float = 0.0,
    pixel_size: float = 10.0,
    transform: Optional[GeoTransform] = None,
) -> SentinelScene:
    """Render a 13-band Sentinel-2 scene from a land-cover truth field."""
    from repro.raster.timeseries import crop_ndvi_profile

    truth = np.asarray(truth)
    if truth.ndim != 2:
        raise RasterError("truth field must be 2-D")
    if not 0.0 <= cloud_fraction <= 1.0:
        raise RasterError(f"cloud_fraction must be in [0, 1], got {cloud_fraction}")
    rng = np.random.default_rng(seed)
    height, width = truth.shape
    data = np.zeros((S2_BANDS, height, width), dtype=np.float32)

    for class_value, signature in _S2_SIGNATURES.items():
        mask = truth == class_value
        if not mask.any():
            continue
        spectrum = signature.copy()
        if class_value in _PHENOLOGY_CLASSES:
            # Scale the red-edge/NIR plateau by the class's seasonal vigor and
            # raise the red band when vegetation is dormant.
            vigor = crop_ndvi_profile(LandCover(class_value), day_of_year)
            spectrum = spectrum.copy()
            spectrum[4:11] *= 0.4 + 0.6 * vigor
            spectrum[3] *= 1.6 - 0.6 * vigor
        data[:, mask] = spectrum[:, np.newaxis]

    data += rng.normal(0.0, noise_std, size=data.shape).astype(np.float32)
    np.clip(data, 0.0, 1.0, out=data)

    cloud_mask = None
    if cloud_fraction > 0.0:
        cloud_score = _smooth_noise((height, width), 6.0, rng)
        threshold = np.quantile(cloud_score, 1.0 - cloud_fraction)
        cloud_mask = cloud_score >= threshold
        data[:, cloud_mask] = np.clip(
            0.85 + rng.normal(0, 0.05, size=(S2_BANDS, int(cloud_mask.sum()))), 0, 1
        ).astype(np.float32)

    grid = RasterGrid(data, transform or _default_transform(pixel_size))
    return SentinelScene(
        grid=grid,
        truth=truth.astype(np.int16),
        mission="S2",
        day_of_year=day_of_year,
        cloud_mask=cloud_mask,
    )


def sentinel1_scene(
    truth: np.ndarray,
    signatures: str = "ice",
    looks: int = 4,
    seed: int = 0,
    pixel_size: float = 40.0,
    day_of_year: int = 60,
    transform: Optional[GeoTransform] = None,
) -> SentinelScene:
    """Render a 2-band (VV, VH) Sentinel-1 scene with gamma speckle.

    ``signatures`` selects the class table: ``"ice"`` (SeaIce classes) or
    ``"land"`` (LandCover classes). ``looks`` is the equivalent number of
    looks — higher means less speckle (multilooked products).
    """
    truth = np.asarray(truth)
    if truth.ndim != 2:
        raise RasterError("truth field must be 2-D")
    if looks < 1:
        raise RasterError(f"looks must be >= 1, got {looks}")
    table = _S1_ICE_SIGNATURES if signatures == "ice" else _S1_LAND_SIGNATURES
    if signatures not in ("ice", "land"):
        raise RasterError(f"unknown signature table {signatures!r}")

    rng = np.random.default_rng(seed)
    height, width = truth.shape
    linear = np.zeros((2, height, width), dtype=np.float64)
    for class_value, (vv_db, vh_db) in table.items():
        mask = truth == class_value
        if not mask.any():
            continue
        linear[0, mask] = 10.0 ** (vv_db / 10.0)
        linear[1, mask] = 10.0 ** (vh_db / 10.0)
    # Unlabelled classes fall back to a low backscatter floor.
    linear[linear == 0.0] = 10.0 ** (-25.0 / 10.0)

    # Multiplicative speckle: gamma with shape=looks, mean 1.
    speckle = rng.gamma(shape=looks, scale=1.0 / looks, size=linear.shape)
    observed = linear * speckle
    data = (10.0 * np.log10(observed)).astype(np.float32)

    grid = RasterGrid(data, transform or _default_transform(pixel_size))
    return SentinelScene(
        grid=grid,
        truth=truth.astype(np.int16),
        mission="S1",
        day_of_year=day_of_year,
    )
