"""Sentinel product metadata model and archive generator.

A :class:`Product` mirrors the metadata a Copernicus hub record carries:
mission, product type, processing level, sensing time, footprint, and size.
:class:`ProductArchive` synthesises archives with realistic volume statistics
(the paper: "1PB of Sentinel data may consist of about 750,000 datasets",
i.e. ~1.4 GB mean product size) for the catalogue and velocity experiments.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import RasterError
from repro.geometry import Polygon


class Mission(enum.Enum):
    """Sentinel missions relevant to ExtremeEarth."""

    SENTINEL1 = "S1"
    SENTINEL2 = "S2"
    SENTINEL3 = "S3"


class ProductLevel(enum.Enum):
    """Processing levels, raw to analysis-ready."""

    L0 = "L0"
    L1 = "L1"
    L2A = "L2A"


_PRODUCT_TYPES = {
    Mission.SENTINEL1: ("GRD", "SLC", "OCN"),
    Mission.SENTINEL2: ("MSIL1C", "MSIL2A"),
    Mission.SENTINEL3: ("OLCI", "SLSTR"),
}

# Mean product sizes in bytes, roughly calibrated so an archive's bytes /
# products ratio matches the paper's 1 PB ~ 750k datasets (~1.4 GB each).
_MEAN_SIZE_BYTES = {
    Mission.SENTINEL1: int(1.7e9),
    Mission.SENTINEL2: int(1.2e9),
    Mission.SENTINEL3: int(0.6e9),
}


@dataclass(frozen=True)
class Product:
    """One archive entry."""

    product_id: str
    mission: Mission
    product_type: str
    level: ProductLevel
    sensing_time: datetime
    footprint: Polygon
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise RasterError(f"product size must be positive: {self.size_bytes}")

    @property
    def name(self) -> str:
        stamp = self.sensing_time.strftime("%Y%m%dT%H%M%S")
        return f"{self.mission.value}_{self.product_type}_{stamp}_{self.product_id}"


class ProductArchive:
    """A synthetic Sentinel product archive.

    Products are drawn over a configurable spatial extent and time range with
    mission mix and size distributions fixed by the module constants. The
    generator is deterministic given its seed.
    """

    def __init__(
        self,
        extent: Tuple[float, float, float, float] = (-10.0, 35.0, 30.0, 70.0),
        start: datetime = datetime(2017, 1, 1),
        days: int = 365,
        seed: int = 0,
        mission_mix: Optional[Sequence[Tuple[Mission, float]]] = None,
    ):
        if days <= 0:
            raise RasterError("archive duration must be positive")
        min_x, min_y, max_x, max_y = extent
        if min_x >= max_x or min_y >= max_y:
            raise RasterError(f"invalid archive extent {extent}")
        self.extent = extent
        self.start = start
        self.days = days
        self._rng = random.Random(seed)
        self._mission_mix = list(
            mission_mix
            or [(Mission.SENTINEL1, 0.45), (Mission.SENTINEL2, 0.40), (Mission.SENTINEL3, 0.15)]
        )
        total = sum(w for _, w in self._mission_mix)
        self._mission_mix = [(m, w / total) for m, w in self._mission_mix]
        self._counter = 0

    def _pick_mission(self) -> Mission:
        roll = self._rng.random()
        cumulative = 0.0
        for mission, weight in self._mission_mix:
            cumulative += weight
            if roll <= cumulative:
                return mission
        return self._mission_mix[-1][0]

    def generate_product(self) -> Product:
        """Generate the next product (deterministic sequence)."""
        self._counter += 1
        mission = self._pick_mission()
        product_type = self._rng.choice(_PRODUCT_TYPES[mission])
        level = self._rng.choice(list(ProductLevel))
        sensing = self.start + timedelta(
            days=self._rng.uniform(0, self.days)
        )
        min_x, min_y, max_x, max_y = self.extent
        # Sentinel scene footprints are ~1-3 degrees across.
        size_deg = self._rng.uniform(1.0, 3.0)
        x = self._rng.uniform(min_x, max(max_x - size_deg, min_x + 1e-6))
        y = self._rng.uniform(min_y, max(max_y - size_deg, min_y + 1e-6))
        footprint = Polygon.box(x, y, x + size_deg, y + size_deg)
        mean = _MEAN_SIZE_BYTES[mission]
        size = max(int(self._rng.lognormvariate(0.0, 0.5) * mean), 1)
        return Product(
            product_id=f"{self._counter:08d}",
            mission=mission,
            product_type=product_type,
            level=level,
            sensing_time=sensing,
            footprint=footprint,
            size_bytes=size,
        )

    def generate(self, count: int) -> List[Product]:
        """Generate *count* products."""
        return [self.generate_product() for _ in range(count)]

    def stream(self, count: int) -> Iterator[Product]:
        """Generator form of :meth:`generate` for ingestion pipelines."""
        for _ in range(count):
            yield self.generate_product()

    @staticmethod
    def total_bytes(products: Sequence[Product]) -> int:
        return sum(p.size_bytes for p in products)
