"""The two ExtremeEarth applications: Food Security (A1) and Polar (A2)."""
