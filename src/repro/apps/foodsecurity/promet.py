"""PROMET-like hydro-agroecological model.

The paper feeds EO-derived crop information "into the PROMET model [10] to
provide high resolution (10m) water availability maps for the agricultural
area in the whole watershed". PROMET itself is closed source; this module
implements the canonical open equivalent (a daily FAO-56-style soil water
balance driven by crop coefficients and reference evapotranspiration), which
exercises the same interface: crop map + weather in, water-availability and
irrigation-demand maps out.

State and fluxes are in millimetres of water; mass conservation
(precipitation + irrigation = ET + runoff + drainage + Δstorage) is a tested
invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.sentinel import CROP_CLASSES, LandCover
from repro.raster.timeseries import crop_ndvi_profile


@dataclass(frozen=True)
class WeatherDay:
    """One day of (area-uniform) weather forcing."""

    day_of_year: int
    precipitation_mm: float
    temp_min_c: float
    temp_max_c: float

    def __post_init__(self) -> None:
        if self.precipitation_mm < 0:
            raise ReproError("precipitation cannot be negative")
        if self.temp_max_c < self.temp_min_c:
            raise ReproError("temp_max below temp_min")


def synthetic_weather(
    days: Sequence[int], seed: int = 0, annual_rain_mm: float = 600.0
) -> List[WeatherDay]:
    """A plausible mid-latitude weather year: sinusoidal temperature,
    Poisson-ish rain events summing to roughly ``annual_rain_mm``."""
    rng = np.random.default_rng(seed)
    weather = []
    daily_mean_rain = annual_rain_mm / 365.0
    for day in days:
        season = math.sin(2 * math.pi * (day - 105) / 365.0)
        temp_mean = 9.0 + 9.0 * season + rng.normal(0, 2.0)
        swing = 4.0 + rng.uniform(0, 4.0)
        raining = rng.random() < 0.35
        rain = float(rng.exponential(daily_mean_rain / 0.35)) if raining else 0.0
        weather.append(
            WeatherDay(
                day_of_year=day,
                precipitation_mm=rain,
                temp_min_c=temp_mean - swing,
                temp_max_c=temp_mean + swing,
            )
        )
    return weather


def hargreaves_et0_mm(day: WeatherDay, latitude_deg: float = 48.0) -> float:
    """Reference evapotranspiration (Hargreaves-Samani), mm/day."""
    temp_mean = (day.temp_min_c + day.temp_max_c) / 2.0
    temp_range = max(day.temp_max_c - day.temp_min_c, 0.0)
    # Extraterrestrial radiation approximation (Ra, MJ/m2/day).
    phi = math.radians(latitude_deg)
    declination = 0.409 * math.sin(2 * math.pi * day.day_of_year / 365.0 - 1.39)
    sunset_angle = math.acos(
        max(-1.0, min(1.0, -math.tan(phi) * math.tan(declination)))
    )
    dr = 1.0 + 0.033 * math.cos(2 * math.pi * day.day_of_year / 365.0)
    ra = (
        24.0 * 60.0 / math.pi * 0.0820 * dr
        * (
            sunset_angle * math.sin(phi) * math.sin(declination)
            + math.cos(phi) * math.cos(declination) * math.sin(sunset_angle)
        )
    )
    et0 = 0.0023 * (temp_mean + 17.8) * math.sqrt(temp_range) * ra * 0.408
    return max(et0, 0.0)


#: Peak crop coefficient (Kc) per crop; daily Kc follows the phenology curve.
_PEAK_KC = {
    LandCover.WHEAT: 1.15,
    LandCover.MAIZE: 1.20,
    LandCover.RAPESEED: 1.10,
    LandCover.GRASSLAND: 0.95,
    LandCover.FOREST: 1.00,
}

_BASE_KC = 0.25  # bare/dormant surface evaporation


def crop_coefficient(crop: LandCover, day_of_year: int) -> float:
    """Daily Kc: base evaporation plus phenology-scaled transpiration."""
    peak = _PEAK_KC.get(crop)
    if peak is None:
        return _BASE_KC
    vigor = crop_ndvi_profile(crop, day_of_year)
    return _BASE_KC + (peak - _BASE_KC) * vigor


@dataclass
class SoilGrid:
    """Per-pixel soil parameters (mm of plant-available water capacity)."""

    capacity_mm: np.ndarray  # total available water capacity
    initial_fraction: float = 0.7

    def __post_init__(self) -> None:
        self.capacity_mm = np.asarray(self.capacity_mm, dtype=np.float64)
        if (self.capacity_mm <= 0).any():
            raise ReproError("soil capacity must be positive everywhere")
        if not 0.0 <= self.initial_fraction <= 1.0:
            raise ReproError("initial_fraction must be in [0, 1]")

    @staticmethod
    def uniform(shape: Tuple[int, int], capacity_mm: float = 120.0) -> "SoilGrid":
        return SoilGrid(np.full(shape, capacity_mm))


@dataclass
class PrometDay:
    """One day's fluxes and state (all maps in mm)."""

    day_of_year: int
    et_actual_mm: np.ndarray
    runoff_mm: np.ndarray
    storage_mm: np.ndarray
    water_availability: np.ndarray  # storage / capacity in [0, 1]
    irrigation_demand_mm: np.ndarray


class PrometModel:
    """Daily soil-water balance over a crop map."""

    def __init__(
        self,
        crop_map: np.ndarray,
        soil: SoilGrid,
        transform: GeoTransform,
        latitude_deg: float = 48.0,
        stress_threshold: float = 0.5,
    ):
        crop_map = np.asarray(crop_map)
        if crop_map.shape != soil.capacity_mm.shape:
            raise ReproError(
                f"crop map {crop_map.shape} and soil {soil.capacity_mm.shape} differ"
            )
        if not 0.0 < stress_threshold < 1.0:
            raise ReproError("stress_threshold must be in (0, 1)")
        self.crop_map = crop_map
        self.soil = soil
        self.transform = transform
        self.latitude_deg = latitude_deg
        self.stress_threshold = stress_threshold
        self.storage_mm = soil.capacity_mm * soil.initial_fraction
        # Accounting for the mass-balance invariant.
        self.total_in_mm = 0.0
        self.total_out_mm = 0.0
        self._initial_storage = float(self.storage_mm.sum())

    def _kc_map(self, day_of_year: int) -> np.ndarray:
        kc = np.full(self.crop_map.shape, _BASE_KC)
        for crop in np.unique(self.crop_map):
            try:
                coefficient = crop_coefficient(LandCover(int(crop)), day_of_year)
            except ValueError:
                coefficient = _BASE_KC
            kc[self.crop_map == crop] = coefficient
        return kc

    def step(self, weather: WeatherDay, irrigation_mm: Optional[np.ndarray] = None) -> PrometDay:
        """Advance one day. Order: add water, spill runoff, evapotranspire."""
        shape = self.crop_map.shape
        irrigation = (
            np.zeros(shape) if irrigation_mm is None else np.asarray(irrigation_mm)
        )
        if irrigation.shape != shape:
            raise ReproError("irrigation map shape mismatch")
        if (irrigation < 0).any():
            raise ReproError("irrigation cannot be negative")

        water_in = weather.precipitation_mm + irrigation
        self.storage_mm = self.storage_mm + water_in
        runoff = np.maximum(self.storage_mm - self.soil.capacity_mm, 0.0)
        self.storage_mm -= runoff

        et0 = hargreaves_et0_mm(weather, self.latitude_deg)
        kc = self._kc_map(weather.day_of_year)
        # Water-stress reduction: ET scales down as storage drops below the
        # stress threshold fraction of capacity.
        fraction = self.storage_mm / self.soil.capacity_mm
        stress = np.clip(fraction / self.stress_threshold, 0.0, 1.0)
        et_actual = np.minimum(et0 * kc * stress, self.storage_mm)
        self.storage_mm -= et_actual

        availability = self.storage_mm / self.soil.capacity_mm
        # Demand: water needed to bring stressed crop pixels back to the
        # stress-free threshold.
        target = self.soil.capacity_mm * self.stress_threshold
        demand = np.maximum(target - self.storage_mm, 0.0)
        demand[~np.isin(self.crop_map, [int(c) for c in CROP_CLASSES])] = 0.0

        self.total_in_mm += float(water_in.sum())
        self.total_out_mm += float(runoff.sum() + et_actual.sum())

        return PrometDay(
            day_of_year=weather.day_of_year,
            et_actual_mm=et_actual,
            runoff_mm=runoff,
            storage_mm=self.storage_mm.copy(),
            water_availability=availability,
            irrigation_demand_mm=demand,
        )

    def run(
        self, weather_series: Sequence[WeatherDay]
    ) -> List[PrometDay]:
        """Run a season; returns the daily outputs."""
        return [self.step(day) for day in weather_series]

    def mass_balance_error_mm(self) -> float:
        """|in - out - Δstorage| summed over all pixels (should be ~0)."""
        delta = float(self.storage_mm.sum()) - self._initial_storage
        return abs(self.total_in_mm - self.total_out_mm - delta)

    def availability_grid(self, day: PrometDay) -> RasterGrid:
        """A day's water-availability map as a georeferenced raster."""
        return RasterGrid(day.water_availability[np.newaxis], self.transform)
