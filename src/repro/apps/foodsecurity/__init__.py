"""Application A1: Food Security.

"To develop high resolution water availability maps for agricultural areas
allowing a new level of detail for wide-scale irrigation support. The maps
will be available as linked data together with other geospatial layers."

* :mod:`repro.apps.foodsecurity.cropmap` — crop-type classification and
  field-boundary extraction from Sentinel-2 scenes (the C1 architecture for
  crops)
* :mod:`repro.apps.foodsecurity.promet` — the PROMET-like soil-water-balance
  / crop-growth model producing 10 m water-availability maps
* :mod:`repro.apps.foodsecurity.irrigation` — per-field irrigation advice
  published as linked data
"""

from repro.apps.foodsecurity.cropmap import (
    build_crop_classifier,
    classify_scene,
    extract_fields,
    train_crop_classifier,
)
from repro.apps.foodsecurity.promet import (
    PrometModel,
    SoilGrid,
    WeatherDay,
    synthetic_weather,
)
from repro.apps.foodsecurity.irrigation import (
    FieldAdvice,
    irrigation_advice,
    publish_advice,
)

__all__ = [
    "FieldAdvice",
    "PrometModel",
    "SoilGrid",
    "WeatherDay",
    "build_crop_classifier",
    "classify_scene",
    "extract_fields",
    "irrigation_advice",
    "publish_advice",
    "synthetic_weather",
    "train_crop_classifier",
]
