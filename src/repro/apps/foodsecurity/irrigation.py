"""Per-field irrigation advice, published as linked data.

Closes the A1 loop: water-availability maps + field boundaries become
actionable per-field advice, and the advice is published into a GeoStore
"available as linked data together with other geospatial layers ... and made
available to farmers".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.geometry import Polygon
from repro.geosparql.literals import geometry_literal
from repro.geosparql.store import GeoStore
from repro.rdf.namespace import GEO, RDF, Namespace
from repro.rdf.term import IRI, Literal
from repro.raster.grid import RasterGrid
from repro.raster.stats import rasterize_polygon

AGRI = Namespace("http://extremeearth.eu/agri#")


@dataclass(frozen=True)
class FieldAdvice:
    """Irrigation advice for one field."""

    field_id: str
    crop: int
    boundary: Polygon
    mean_availability: float  # fraction of soil capacity, 0..1
    demand_mm: float  # mean irrigation demand over the field
    irrigate: bool


def irrigation_advice(
    fields: Sequence[Tuple[Polygon, int]],
    availability: RasterGrid,
    demand: RasterGrid,
    irrigate_below: float = 0.45,
) -> List[FieldAdvice]:
    """Aggregate pixel maps to per-field advice.

    A field is advised to irrigate when its mean availability falls below
    ``irrigate_below``.
    """
    if not 0.0 < irrigate_below < 1.0:
        raise ReproError("irrigate_below must be in (0, 1)")
    advice: List[FieldAdvice] = []
    shape = (availability.height, availability.width)
    for index, (boundary, crop) in enumerate(fields):
        mask = rasterize_polygon(boundary, availability.transform, shape)
        if not mask.any():
            continue
        mean_availability = float(availability.band(0)[mask].mean())
        mean_demand = float(demand.band(0)[mask].mean())
        advice.append(
            FieldAdvice(
                field_id=f"field{index:05d}",
                crop=crop,
                boundary=boundary,
                mean_availability=mean_availability,
                demand_mm=mean_demand,
                irrigate=mean_availability < irrigate_below,
            )
        )
    return advice


def publish_advice(
    advice: Sequence[FieldAdvice], store: Optional[GeoStore] = None
) -> GeoStore:
    """Publish advice as linked data (GeoSPARQL feature pattern)."""
    if store is None:
        store = GeoStore()
    for item in advice:
        subject = IRI(f"http://extremeearth.eu/agri/field/{item.field_id}")
        geom_iri = IRI(subject.value + "/geom")
        store.add(subject, RDF.type, AGRI.Field)
        store.add(subject, AGRI.cropClass, Literal.from_python(item.crop))
        store.add(
            subject, AGRI.waterAvailability,
            Literal.from_python(round(item.mean_availability, 4)),
        )
        store.add(
            subject, AGRI.irrigationDemandMm,
            Literal.from_python(round(item.demand_mm, 2)),
        )
        store.add(subject, AGRI.irrigationAdvised, Literal.from_python(item.irrigate))
        store.add(subject, GEO.hasGeometry, geom_iri)
        store.add(geom_iri, GEO.asWKT, geometry_literal(item.boundary))
    return store
