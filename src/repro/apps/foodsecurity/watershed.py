"""Watershed delineation: hydrology for the whole catchment (A1).

The paper: "processing has to be widened to include whole watersheds (or
catchment areas)". This module supplies that hydrological scoping:

* :func:`synthetic_dem` — a terrain model (valley + ridges from smooth
  noise) consistent with the scene grids;
* :func:`flow_directions` — D8 steepest-descent directions with flat/pit
  handling;
* :func:`flow_accumulation` — upstream contributing cells per cell
  (topologically ordered, no recursion);
* :func:`delineate_watershed` — the catchment draining through a pour
  point, by upstream traversal of the D8 graph;
* :func:`main_channel` — the stream path from the accumulation maximum.

The watershed mask scopes the PROMET run: pixels outside the catchment are
excluded from irrigation planning.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.errors import ReproError
from repro.raster.grid import GeoTransform, RasterGrid

#: D8 neighbour offsets indexed by direction code 0..7 (E, SE, S, SW, W,
#: NW, N, NE). Code -1 marks pits/outlets (no downhill neighbour).
D8_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (0, 1), (1, 1), (1, 0), (1, -1), (0, -1), (-1, -1), (-1, 0), (-1, 1),
)


def synthetic_dem(
    height: int,
    width: int,
    seed: int = 0,
    relief_m: float = 200.0,
    valley_direction: str = "south",
) -> np.ndarray:
    """A terrain surface: a regional slope plus smooth ridges.

    ``valley_direction`` is where the terrain drains ("south" = downhill
    toward the last row). Guaranteed pit-free on the interior by adding a
    strong regional gradient.
    """
    if height < 4 or width < 4:
        raise ReproError("DEM must be at least 4x4")
    if valley_direction not in ("south", "north", "east", "west"):
        raise ReproError(f"unknown valley direction {valley_direction!r}")
    rng = np.random.default_rng(seed)
    noise = ndimage.gaussian_filter(rng.standard_normal((height, width)), sigma=6.0)
    spread = noise.max() - noise.min()
    if spread > 0:
        noise = (noise - noise.min()) / spread  # ridges in [0, 1]
    rows = np.linspace(1.0, 0.0, height)[:, np.newaxis]
    cols = np.linspace(1.0, 0.0, width)[np.newaxis, :]
    # `gradient` is high on the side opposite the drain direction.
    gradient = {
        "south": rows,
        "north": 1.0 - rows,
        "east": cols,
        "west": 1.0 - cols,
    }[valley_direction]
    # Regional slope dominates the ridges 4:1 so water always finds a way out;
    # the surface spans [0, relief_m].
    dem = relief_m * (4.0 * gradient + 1.0 * noise) / 5.0
    return dem.astype(np.float64)


def flow_directions(dem: np.ndarray) -> np.ndarray:
    """D8 direction codes (0..7 into :data:`D8_OFFSETS`; -1 = pit/outlet)."""
    dem = np.asarray(dem, dtype=np.float64)
    if dem.ndim != 2:
        raise ReproError("DEM must be 2-D")
    height, width = dem.shape
    directions = np.full((height, width), -1, dtype=np.int8)
    # Diagonal neighbours are sqrt(2) farther: compare slopes, not drops.
    distances = np.array([1.0, np.sqrt(2)] * 4)[[0, 1, 0, 1, 0, 1, 0, 1]]
    for row in range(height):
        for col in range(width):
            best_slope = 0.0
            best_code = -1
            for code, (dr, dc) in enumerate(D8_OFFSETS):
                r, c = row + dr, col + dc
                if not (0 <= r < height and 0 <= c < width):
                    continue
                slope = (dem[row, col] - dem[r, c]) / distances[code]
                if slope > best_slope:
                    best_slope = slope
                    best_code = code
            directions[row, col] = best_code
    return directions


def flow_accumulation(directions: np.ndarray) -> np.ndarray:
    """Contributing cells per cell (each cell counts itself).

    Kahn-style topological pass over the D8 graph — no recursion, linear in
    the number of cells; cycles (impossible with true D8 on a DEM) raise.
    """
    directions = np.asarray(directions)
    height, width = directions.shape
    accumulation = np.ones((height, width), dtype=np.int64)
    indegree = np.zeros((height, width), dtype=np.int32)
    for row in range(height):
        for col in range(width):
            code = directions[row, col]
            if code < 0:
                continue
            dr, dc = D8_OFFSETS[code]
            indegree[row + dr, col + dc] += 1
    queue = deque(
        (r, c)
        for r in range(height)
        for c in range(width)
        if indegree[r, c] == 0
    )
    processed = 0
    while queue:
        row, col = queue.popleft()
        processed += 1
        code = directions[row, col]
        if code < 0:
            continue
        dr, dc = D8_OFFSETS[code]
        accumulation[row + dr, col + dc] += accumulation[row, col]
        indegree[row + dr, col + dc] -= 1
        if indegree[row + dr, col + dc] == 0:
            queue.append((row + dr, col + dc))
    if processed != height * width:
        raise ReproError("flow graph contains a cycle (invalid directions)")
    return accumulation


def delineate_watershed(
    directions: np.ndarray, pour_point: Tuple[int, int]
) -> np.ndarray:
    """Boolean mask of every cell draining through *pour_point* (inclusive)."""
    directions = np.asarray(directions)
    height, width = directions.shape
    row, col = pour_point
    if not (0 <= row < height and 0 <= col < width):
        raise ReproError(f"pour point {pour_point} outside the DEM")
    # Invert the graph: upstream[r][c] lists cells flowing into (r, c).
    mask = np.zeros((height, width), dtype=bool)
    mask[row, col] = True
    # BFS upstream: a cell is in the watershed if its D8 target is.
    queue = deque([(row, col)])
    while queue:
        r0, c0 = queue.popleft()
        for code, (dr, dc) in enumerate(D8_OFFSETS):
            r, c = r0 - dr, c0 - dc  # the cell that would flow via `code`
            if not (0 <= r < height and 0 <= c < width) or mask[r, c]:
                continue
            if directions[r, c] == code:
                mask[r, c] = True
                queue.append((r, c))
    return mask


def main_channel(
    directions: np.ndarray, accumulation: np.ndarray
) -> List[Tuple[int, int]]:
    """The stream: the downstream path from the accumulation maximum's
    farthest upstream source, followed to the outlet."""
    accumulation = np.asarray(accumulation)
    outlet = np.unravel_index(int(accumulation.argmax()), accumulation.shape)
    watershed = delineate_watershed(directions, (int(outlet[0]), int(outlet[1])))
    # Source: the in-watershed cell farthest from the outlet by accumulation
    # (i.e. smallest accumulation but on the maximal-flow spine). Walk up
    # greedily choosing the upstream neighbour with the largest accumulation.
    path = [(int(outlet[0]), int(outlet[1]))]
    height, width = directions.shape
    while True:
        r0, c0 = path[-1]
        best: Optional[Tuple[int, int]] = None
        best_acc = 0
        for code, (dr, dc) in enumerate(D8_OFFSETS):
            r, c = r0 - dr, c0 - dc
            if not (0 <= r < height and 0 <= c < width):
                continue
            if directions[r, c] == code and accumulation[r, c] > best_acc:
                best = (r, c)
                best_acc = int(accumulation[r, c])
        if best is None:
            break
        path.append(best)
    path.reverse()  # source -> outlet
    return path


def watershed_grid(
    mask: np.ndarray, transform: GeoTransform
) -> RasterGrid:
    """The watershed mask as a georeferenced raster (1 inside, 0 outside)."""
    return RasterGrid(mask.astype(np.float32), transform)
