"""Crop-type classification and field-boundary extraction.

The Food Security arm of Challenge C1: "scalable deep learning techniques
... will be used to derive field boundaries and crop types, making it
possible for the processing chains to include this information as linked
data on a large scale".

The classifier is a small CNN over 13-band patches; scenes are classified
patch-wise, and contiguous same-crop regions become field polygons.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.errors import MLError
from repro.datasets.eurosat import Dataset
from repro.geometry import Polygon
from repro.ml.distributed import DataParallelTrainer, TrainingReport
from repro.ml.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.ml.network import Sequential
from repro.ml.optimizers import SGD
from repro.raster.grid import RasterGrid
from repro.raster.sentinel import S2_BANDS, SentinelScene


def build_crop_classifier(
    num_classes: int, patch_size: int = 8, bands: int = S2_BANDS, seed: int = 0
) -> Sequential:
    """A compact CNN: conv-pool-conv-pool-dense over (bands, p, p) patches."""
    if patch_size % 4 != 0:
        raise MLError("patch_size must be divisible by 4 (two pooling stages)")
    reduced = patch_size // 4
    return Sequential(
        [
            Conv2D(bands, 16, kernel_size=3, padding="same", seed=seed),
            ReLU(),
            MaxPool2D(2),
            Conv2D(16, 32, kernel_size=3, padding="same", seed=seed + 1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(32 * reduced * reduced, 64, seed=seed + 2),
            ReLU(),
            Dense(64, num_classes, seed=seed + 3),
        ]
    )


def train_crop_classifier(
    model: Sequential,
    dataset: Dataset,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 0.05,
    workers: int = 1,
    strategy: str = "allreduce",
) -> TrainingReport:
    """Train with (optionally distributed) synchronous SGD."""
    trainer = DataParallelTrainer(
        model,
        SGD(model.parameters(), lr=lr, momentum=0.9),
        workers=workers,
        strategy=strategy,
    )
    return trainer.fit(dataset.x, dataset.y, epochs=epochs, batch_size=batch_size)


def classify_scene(
    model: Sequential, scene: SentinelScene, patch_size: int = 8
) -> np.ndarray:
    """Classify a scene patch-wise; returns a (rows, cols) crop-class map.

    Edge strips narrower than a patch are classified from the nearest full
    patch (their predictions are extended outward).
    """
    grid = scene.grid
    rows, cols = grid.height, grid.width
    if rows < patch_size or cols < patch_size:
        raise MLError(f"scene {rows}x{cols} smaller than patch size {patch_size}")
    out = np.zeros((rows, cols), dtype=np.int16)
    row_starts = _tile_starts(rows, patch_size)
    col_starts = _tile_starts(cols, patch_size)
    patches = []
    spans = []
    for r in row_starts:
        for c in col_starts:
            patches.append(grid.data[:, r : r + patch_size, c : c + patch_size])
            spans.append((r, c))
    predictions = model.predict(np.stack(patches))
    for (r, c), label in zip(spans, predictions):
        out[r : r + patch_size, c : c + patch_size] = label
    return out


def _tile_starts(length: int, patch: int) -> List[int]:
    starts = list(range(0, length - patch + 1, patch))
    if starts[-1] + patch < length:
        starts.append(length - patch)  # cover the trailing strip
    return starts


def extract_fields(
    crop_map: np.ndarray,
    grid: RasterGrid,
    min_pixels: int = 16,
    crop_classes: Optional[Tuple[int, ...]] = None,
) -> List[Tuple[Polygon, int]]:
    """Field boundaries: connected same-crop components as polygons.

    Returns (boundary polygon, crop class) pairs for components of at least
    ``min_pixels``. Boundaries are the component bounding boxes in map
    coordinates — the level of detail parcel registers carry.
    """
    fields: List[Tuple[Polygon, int]] = []
    classes = crop_classes if crop_classes is not None else tuple(
        int(v) for v in np.unique(crop_map)
    )
    size = grid.transform.pixel_size
    for crop in classes:
        mask = crop_map == crop
        if not mask.any():
            continue
        labelled, count = ndimage.label(mask)
        for component in range(1, count + 1):
            rows, cols = np.nonzero(labelled == component)
            if rows.size < min_pixels:
                continue
            min_x = grid.transform.origin_x + cols.min() * size
            max_x = grid.transform.origin_x + (cols.max() + 1) * size
            max_y = grid.transform.origin_y - rows.min() * size
            min_y = grid.transform.origin_y - (rows.max() + 1) * size
            fields.append((Polygon.box(min_x, min_y, max_x, max_y), int(crop)))
    return fields
