"""Sea-ice classification: WMO stage-of-development maps from Sentinel-1.

The second C1 architecture: a CNN over (VV, VH) SAR patches predicting the
:class:`~repro.raster.sentinel.SeaIce` stage. From the per-patch stages the
application derives the two operational products: **ice concentration**
(fraction of ice within an aggregation window) and the **ice type map**
resampled to the delivery resolution ("1 km or better").
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import MLError
from repro.datasets.eurosat import Dataset
from repro.ml.distributed import DataParallelTrainer, TrainingReport
from repro.ml.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.ml.network import Sequential
from repro.ml.optimizers import SGD
from repro.raster.grid import GeoTransform, RasterGrid
from repro.raster.sentinel import SeaIce, SentinelScene, sea_ice_field, sentinel1_scene


def normalize_sar(data: np.ndarray) -> np.ndarray:
    """Scale backscatter dB (~[-30, 0]) to roughly unit range for the CNN."""
    return ((np.asarray(data, dtype=np.float32) + 20.0) / 10.0).astype(np.float32)


def build_ice_classifier(patch_size: int = 8, seed: int = 0) -> Sequential:
    """CNN over 2-band SAR patches -> 5 WMO stage classes."""
    if patch_size % 4 != 0:
        raise MLError("patch_size must be divisible by 4")
    reduced = patch_size // 4
    return Sequential(
        [
            Conv2D(2, 12, kernel_size=3, padding="same", seed=seed),
            ReLU(),
            MaxPool2D(2),
            Conv2D(12, 24, kernel_size=3, padding="same", seed=seed + 1),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(24 * reduced * reduced, 48, seed=seed + 2),
            ReLU(),
            Dense(48, len(SeaIce), seed=seed + 3),
        ]
    )


def make_ice_training_set(
    samples: int = 600, patch_size: int = 8, seed: int = 0, looks: int = 4
) -> Dataset:
    """Labelled SAR patches: each dominated by one WMO stage, with speckle."""
    rng = np.random.default_rng(seed)
    x = np.empty((samples, 2, patch_size, patch_size), dtype=np.float32)
    y = np.empty(samples, dtype=np.int64)
    stages = list(SeaIce)
    for index in range(samples):
        label = int(rng.integers(0, len(stages)))
        truth = np.full((patch_size, patch_size), int(stages[label]), dtype=np.int16)
        speckles = rng.random((patch_size, patch_size)) < 0.05
        if speckles.any():
            truth[speckles] = int(stages[int(rng.integers(0, len(stages)))])
        scene = sentinel1_scene(
            truth, signatures="ice", looks=looks, seed=int(rng.integers(0, 2**31))
        )
        x[index] = normalize_sar(scene.grid.data)
        y[index] = label
    return Dataset(x, y, tuple(s.name for s in stages))


def train_ice_classifier(
    model: Sequential,
    dataset: Dataset,
    epochs: int = 3,
    batch_size: int = 32,
    lr: float = 0.05,
    workers: int = 1,
    strategy: str = "allreduce",
) -> TrainingReport:
    trainer = DataParallelTrainer(
        model,
        SGD(model.parameters(), lr=lr, momentum=0.9),
        workers=workers,
        strategy=strategy,
    )
    return trainer.fit(dataset.x, dataset.y, epochs=epochs, batch_size=batch_size)


def classify_ice_scene(
    model: Sequential, scene: SentinelScene, patch_size: int = 8
) -> np.ndarray:
    """Patch-wise WMO stage map at scene resolution."""
    grid = scene.grid
    rows, cols = grid.height, grid.width
    if rows < patch_size or cols < patch_size:
        raise MLError("scene smaller than patch size")
    out = np.zeros((rows, cols), dtype=np.int16)
    starts_r = list(range(0, rows - patch_size + 1, patch_size))
    starts_c = list(range(0, cols - patch_size + 1, patch_size))
    if starts_r[-1] + patch_size < rows:
        starts_r.append(rows - patch_size)
    if starts_c[-1] + patch_size < cols:
        starts_c.append(cols - patch_size)
    data = normalize_sar(grid.data)
    patches, spans = [], []
    for r in starts_r:
        for c in starts_c:
            patches.append(data[:, r : r + patch_size, c : c + patch_size])
            spans.append((r, c))
    predictions = model.predict(np.stack(patches))
    for (r, c), label in zip(spans, predictions):
        out[r : r + patch_size, c : c + patch_size] = label
    return out


def ice_concentration_map(
    stage_map: np.ndarray, window: int = 8
) -> np.ndarray:
    """Fraction of non-open-water pixels per aggregation window."""
    if window < 1:
        raise MLError("window must be >= 1")
    stage_map = np.asarray(stage_map)
    rows = stage_map.shape[0] // window
    cols = stage_map.shape[1] // window
    if rows == 0 or cols == 0:
        raise MLError("window larger than map")
    cropped = stage_map[: rows * window, : cols * window]
    blocks = cropped.reshape(rows, window, cols, window)
    ice = blocks != int(SeaIce.OPEN_WATER)
    return ice.mean(axis=(1, 3))


def ice_type_map(
    stage_map: np.ndarray,
    scene_transform: GeoTransform,
    target_resolution_m: float = 1000.0,
) -> RasterGrid:
    """Resample the stage map to the delivery resolution (mode aggregation)."""
    if target_resolution_m < scene_transform.pixel_size:
        raise MLError("target resolution finer than the scene")
    factor = max(1, int(round(target_resolution_m / scene_transform.pixel_size)))
    grid = RasterGrid(stage_map.astype(np.int16), scene_transform)
    return grid.resample(factor, method="mode")
