"""Metocean fields and the maritime risk index (A2).

"The maps will be made available as linked data and will be combined with
other information such as sea surface temperature and wind information for
informing maritime users." This module supplies that combination: synthetic
SST and wind fields co-registered with the ice maps, and a navigation risk
index blending ice concentration, ice stage severity, wind, and freezing
spray conditions — the per-cell cost surface the route planner consumes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.errors import ReproError
from repro.raster.sentinel import SeaIce

#: Relative navigation hazard per WMO stage (old ice is the ship-killer).
STAGE_SEVERITY: Dict[int, float] = {
    int(SeaIce.OPEN_WATER): 0.0,
    int(SeaIce.NEW_ICE): 0.15,
    int(SeaIce.YOUNG_ICE): 0.35,
    int(SeaIce.FIRST_YEAR_ICE): 0.65,
    int(SeaIce.OLD_ICE): 1.0,
}


def _smooth(shape: Tuple[int, int], sigma: float, rng: np.random.Generator) -> np.ndarray:
    noise = ndimage.gaussian_filter(rng.standard_normal(shape), sigma=sigma)
    spread = noise.max() - noise.min()
    if spread > 0:
        noise = (noise - noise.min()) / spread
    return noise


def sst_field(
    stage_map: np.ndarray, seed: int = 0, open_water_max_c: float = 4.0
) -> np.ndarray:
    """Sea-surface temperature (deg C) consistent with the ice map.

    Ice-covered cells sit at the freezing point of seawater (-1.8 C); open
    water warms with distance from the ice edge plus smooth variability.
    """
    stage_map = np.asarray(stage_map)
    if stage_map.ndim != 2:
        raise ReproError("stage map must be 2-D")
    rng = np.random.default_rng(seed)
    ice = stage_map != int(SeaIce.OPEN_WATER)
    sst = np.full(stage_map.shape, -1.8, dtype=np.float64)
    if (~ice).any():
        # Distance (cells) from the nearest ice; warms ~0.2 C per cell.
        distance = ndimage.distance_transform_edt(~ice)
        variability = _smooth(stage_map.shape, 8.0, rng)
        sst[~ice] = np.minimum(
            -1.5 + 0.2 * distance[~ice] + 1.5 * variability[~ice],
            open_water_max_c,
        )
    return sst


def wind_field(
    shape: Tuple[int, int], seed: int = 0, mean_speed_ms: float = 10.0
) -> np.ndarray:
    """Wind speed (m/s): smooth synoptic structure around the mean."""
    if mean_speed_ms < 0:
        raise ReproError("mean wind speed must be non-negative")
    rng = np.random.default_rng(seed)
    pattern = _smooth(shape, 10.0, rng)
    return mean_speed_ms * (0.5 + pattern)


def maritime_risk_index(
    stage_map: np.ndarray,
    sst: Optional[np.ndarray] = None,
    wind: Optional[np.ndarray] = None,
    seed: int = 0,
) -> np.ndarray:
    """Per-cell navigation risk in [0, 1].

    Risk = ice-stage severity, plus a freezing-spray term where strong wind
    meets near-freezing open water (the icing conditions the WMO Polar Code
    warns about), plus a small wind-sea term. Missing SST/wind fields are
    synthesised consistently with the ice map.
    """
    stage_map = np.asarray(stage_map)
    if sst is None:
        sst = sst_field(stage_map, seed=seed)
    if wind is None:
        wind = wind_field(stage_map.shape, seed=seed + 1)
    sst = np.asarray(sst)
    wind = np.asarray(wind)
    if sst.shape != stage_map.shape or wind.shape != stage_map.shape:
        raise ReproError("SST/wind fields must match the ice map shape")

    severity = np.zeros(stage_map.shape, dtype=np.float64)
    for value, hazard in STAGE_SEVERITY.items():
        severity[stage_map == value] = hazard
    unknown = ~np.isin(stage_map, list(STAGE_SEVERITY))
    severity[unknown] = 1.0  # unclassified cells are treated as worst case

    open_water = stage_map == int(SeaIce.OPEN_WATER)
    # Freezing spray: wind > 10 m/s over water colder than 1 C.
    spray = open_water & (wind > 10.0) & (sst < 1.0)
    spray_term = np.where(spray, 0.35 * np.clip((wind - 10.0) / 15.0, 0, 1), 0.0)
    # General wind-sea contribution, capped small.
    sea_term = np.where(open_water, 0.1 * np.clip(wind / 25.0, 0, 1), 0.0)

    return np.clip(severity + spray_term + sea_term, 0.0, 1.0)
