"""Safe ship routing through ice (A2).

"High quality, timely and reliable information about sea ice and iceberg
conditions is vital to ensure that vessels navigate efficiently and safely."
The route planner turns the maritime risk index into exactly that decision:
an A* search over the risk grid whose edge costs blend distance and risk,
with cells above the vessel's ice-class limit impassable.

``risk_weight`` is the efficiency/safety dial: 0 gives the geodesic, large
values hug open water however long the detour.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ReproError

_NEIGHBOURS = (
    (0, 1, 1.0), (1, 0, 1.0), (0, -1, 1.0), (-1, 0, 1.0),
    (1, 1, math.sqrt(2)), (1, -1, math.sqrt(2)),
    (-1, 1, math.sqrt(2)), (-1, -1, math.sqrt(2)),
)


@dataclass(frozen=True)
class Route:
    """A planned route and its accounting."""

    cells: Tuple[Tuple[int, int], ...]
    distance: float  # path length in cell units
    mean_risk: float
    max_risk: float

    @property
    def length(self) -> int:
        return len(self.cells)


def plan_route(
    risk: np.ndarray,
    start: Tuple[int, int],
    goal: Tuple[int, int],
    risk_weight: float = 10.0,
    max_passable_risk: float = 0.9,
) -> Optional[Route]:
    """A* over the risk grid; returns None when no passable route exists.

    Edge cost = step distance x (1 + risk_weight x destination risk); the
    heuristic is the Euclidean distance (admissible: every edge costs at
    least its distance).
    """
    risk = np.asarray(risk, dtype=np.float64)
    if risk.ndim != 2:
        raise ReproError("risk grid must be 2-D")
    if risk_weight < 0:
        raise ReproError("risk_weight must be non-negative")
    if not 0.0 < max_passable_risk <= 1.0:
        raise ReproError("max_passable_risk must be in (0, 1]")
    height, width = risk.shape
    for name, (row, col) in (("start", start), ("goal", goal)):
        if not (0 <= row < height and 0 <= col < width):
            raise ReproError(f"{name} {row, col} outside the grid")
        if risk[row, col] > max_passable_risk:
            return None

    def heuristic(cell: Tuple[int, int]) -> float:
        return math.hypot(cell[0] - goal[0], cell[1] - goal[1])

    open_heap: List[Tuple[float, float, Tuple[int, int]]] = [
        (heuristic(start), 0.0, start)
    ]
    best_cost = {start: 0.0}
    parent = {start: None}
    while open_heap:
        _, cost, cell = heapq.heappop(open_heap)
        if cell == goal:
            return _build_route(risk, parent, goal)
        if cost > best_cost.get(cell, math.inf):
            continue
        for dr, dc, step in _NEIGHBOURS:
            r, c = cell[0] + dr, cell[1] + dc
            if not (0 <= r < height and 0 <= c < width):
                continue
            if risk[r, c] > max_passable_risk:
                continue
            new_cost = cost + step * (1.0 + risk_weight * risk[r, c])
            if new_cost < best_cost.get((r, c), math.inf):
                best_cost[(r, c)] = new_cost
                parent[(r, c)] = cell
                heapq.heappush(
                    open_heap, (new_cost + heuristic((r, c)), new_cost, (r, c))
                )
    return None


def _build_route(risk: np.ndarray, parent, goal) -> Route:
    cells = []
    cell = goal
    while cell is not None:
        cells.append(cell)
        cell = parent[cell]
    cells.reverse()
    distance = sum(
        math.hypot(b[0] - a[0], b[1] - a[1]) for a, b in zip(cells, cells[1:])
    )
    risks = [float(risk[r, c]) for r, c in cells]
    return Route(
        cells=tuple(cells),
        distance=distance,
        mean_risk=float(np.mean(risks)),
        max_risk=float(max(risks)),
    )


def route_to_geojson(route: Route, transform) -> dict:
    """The route as a GeoJSON LineString feature in map coordinates —
    the payload a PCDSS-style delivery would push to the bridge."""
    from repro.geometry import LineString
    from repro.geometry.geojson import feature

    coordinates = [
        transform.pixel_to_map(row, col) for row, col in route.cells
    ]
    line = LineString(coordinates)
    return feature(
        line,
        {
            "distance_cells": round(route.distance, 2),
            "mean_risk": round(route.mean_risk, 4),
            "max_risk": round(route.max_risk, 4),
        },
    )
