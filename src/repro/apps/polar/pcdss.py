"""PCDSS-like product delivery over restricted links.

"PCDSS is designed to be used over restricted communication links, to bridge
between the service production and users onboard ships in the Polar
Regions." Ships get kilobytes, not scenes: :func:`encode_ice_chart`
compresses a class map into a byte budget by (a) aggregating to a coarser
grid if needed and (b) run-length + varint encoding the class raster.
Decoding reconstructs the chart; :func:`map_agreement` scores fidelity.

Wire format: magic ``b"PC1"``, rows, cols, aggregation factor, then RLE
pairs (class byte, varint run length).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ReproError
from repro.raster.grid import GeoTransform, RasterGrid

_MAGIC = b"PC1"


def _varint(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _read_varint(buffer: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(buffer):
            raise ReproError("truncated PCDSS payload")
        byte = buffer[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _rle_encode(values: np.ndarray) -> bytes:
    flat = values.ravel()
    out = bytearray()
    index = 0
    n = flat.size
    while index < n:
        value = flat[index]
        run = 1
        while index + run < n and flat[index + run] == value:
            run += 1
        out.append(int(value) & 0xFF)
        out.extend(_varint(run))
        index += run
    return bytes(out)


def encode_ice_chart(
    stage_map: np.ndarray, byte_budget: int = 2048
) -> bytes:
    """Encode a class map within *byte_budget*, degrading resolution if needed.

    Tries aggregation factors 1, 2, 4, 8, ... until the payload fits; raises
    when even the coarsest feasible chart exceeds the budget.
    """
    stage_map = np.asarray(stage_map)
    if stage_map.ndim != 2:
        raise ReproError("ice chart must be 2-D")
    if stage_map.min() < 0 or stage_map.max() > 255:
        raise ReproError("class values must fit a byte")
    if byte_budget < 16:
        raise ReproError("byte_budget too small for any chart")

    factor = 1
    while True:
        rows = stage_map.shape[0] // factor
        cols = stage_map.shape[1] // factor
        if rows == 0 or cols == 0:
            raise ReproError(
                f"cannot fit chart into {byte_budget} bytes at any resolution"
            )
        if factor == 1:
            aggregated = stage_map
        else:
            grid = RasterGrid(
                stage_map.astype(np.int16), GeoTransform(0.0, float(stage_map.shape[0]), 1.0)
            )
            aggregated = grid.resample(factor, method="mode").data[0].astype(np.int16)
        payload = _rle_encode(aggregated)
        header = (
            _MAGIC
            + _varint(aggregated.shape[0])
            + _varint(aggregated.shape[1])
            + _varint(factor)
        )
        message = header + payload
        if len(message) <= byte_budget:
            return message
        factor *= 2


def decode_ice_chart(message: bytes) -> Tuple[np.ndarray, int]:
    """Decode a PCDSS message; returns (class map, aggregation factor)."""
    if not message.startswith(_MAGIC):
        raise ReproError("not a PCDSS message")
    offset = len(_MAGIC)
    rows, offset = _read_varint(message, offset)
    cols, offset = _read_varint(message, offset)
    factor, offset = _read_varint(message, offset)
    flat = np.empty(rows * cols, dtype=np.int16)
    filled = 0
    while filled < flat.size:
        if offset >= len(message):
            raise ReproError("truncated PCDSS payload")
        value = message[offset]
        offset += 1
        run, offset = _read_varint(message, offset)
        if filled + run > flat.size:
            raise ReproError("PCDSS run overflows chart")
        flat[filled : filled + run] = value
        filled += run
    if offset != len(message):
        raise ReproError("trailing bytes in PCDSS message")
    return flat.reshape(rows, cols), factor


def map_agreement(original: np.ndarray, decoded: np.ndarray, factor: int) -> float:
    """Fraction of original pixels whose decoded (upsampled) class agrees."""
    original = np.asarray(original)
    upsampled = np.repeat(np.repeat(decoded, factor, axis=0), factor, axis=1)
    rows = min(original.shape[0], upsampled.shape[0])
    cols = min(original.shape[1], upsampled.shape[1])
    if rows == 0 or cols == 0:
        raise ReproError("empty maps")
    return float(
        (original[:rows, :cols] == upsampled[:rows, :cols]).mean()
    )
