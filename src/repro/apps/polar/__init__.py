"""Application A2: Polar.

"To produce high resolution ice maps from massive volumes of heterogeneous
Copernicus data ... deliver sea ice concentration and type maps, displaying
stage of development (in accordance with the WMO Sea Ice Nomenclature) ...
at a resolution of 1 km or better", delivered to ships "over restricted
communication links" via a PCDSS-like system.

* :mod:`repro.apps.polar.seaice` — SAR sea-ice classification (WMO stages),
  concentration and type maps
* :mod:`repro.apps.polar.icebergs` — iceberg detection and tracking
* :mod:`repro.apps.polar.pcdss` — bandwidth-constrained product encoding
"""

from repro.apps.polar.seaice import (
    build_ice_classifier,
    classify_ice_scene,
    ice_concentration_map,
    ice_type_map,
    make_ice_training_set,
    train_ice_classifier,
)
from repro.apps.polar.icebergs import IcebergDetection, detect_icebergs, track_icebergs
from repro.apps.polar.metocean import maritime_risk_index, sst_field, wind_field
from repro.apps.polar.pcdss import decode_ice_chart, encode_ice_chart, map_agreement
from repro.apps.polar.routing import Route, plan_route, route_to_geojson

__all__ = [
    "IcebergDetection",
    "build_ice_classifier",
    "classify_ice_scene",
    "decode_ice_chart",
    "detect_icebergs",
    "encode_ice_chart",
    "ice_concentration_map",
    "ice_type_map",
    "make_ice_training_set",
    "map_agreement",
    "maritime_risk_index",
    "plan_route",
    "Route",
    "route_to_geojson",
    "sst_field",
    "track_icebergs",
    "wind_field",
]
