"""Iceberg detection and tracking on SAR scenes.

Icebergs are bright, compact targets against open water. Detection is the
classic CFAR-style contrast test: a pixel group is a candidate when its VV
backscatter exceeds the local open-water background by a margin; connected
candidates become detections with a georeferenced outline. Tracking
associates detections across acquisitions by nearest centroid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.errors import ReproError
from repro.geometry import Point, Polygon
from repro.raster.sentinel import SeaIce, SentinelScene


@dataclass(frozen=True)
class IcebergDetection:
    """One detected iceberg."""

    detection_id: str
    outline: Polygon
    centroid: Point
    area_m2: float
    mean_backscatter_db: float
    day_of_year: int


def detect_icebergs(
    scene: SentinelScene,
    contrast_db: float = 6.0,
    min_pixels: int = 2,
    max_pixels: int = 400,
    background_window: int = 9,
    water_quantile: float = 0.2,
    water_margin_db: float = 3.0,
) -> List[IcebergDetection]:
    """CFAR-style detection of bright compact targets in open water.

    A pixel is a candidate when it exceeds its *local* background (median
    over a ``background_window`` neighbourhood) by ``contrast_db`` **and**
    that local background is dark — at most ``water_margin_db`` above the
    scene's open-water level (the ``water_quantile`` of VV). The water gate
    is what separates icebergs from bright floes inside the pack: targets
    embedded in ice are not detectable by contrast and are excluded, which
    matches operational practice (bergs matter where ships sail).
    """
    if scene.mission != "S1":
        raise ReproError("iceberg detection needs a Sentinel-1 scene")
    if contrast_db <= 0:
        raise ReproError("contrast_db must be positive")
    if background_window < 3:
        raise ReproError("background_window must be >= 3")
    vv = scene.grid.band(0)
    local_background = ndimage.median_filter(vv, size=background_window)
    water_level = float(np.quantile(vv, water_quantile))
    candidates = (vv > local_background + contrast_db) & (
        local_background <= water_level + water_margin_db
    )

    # 8-connectivity so a floe's edge fringe stays one (oversized, hence
    # rejected) component instead of fragmenting into berg-sized pieces.
    labelled, count = ndimage.label(candidates, structure=np.ones((3, 3)))
    detections: List[IcebergDetection] = []
    transform = scene.grid.transform
    size = transform.pixel_size
    for component in range(1, count + 1):
        component_mask = labelled == component
        rows, cols = np.nonzero(component_mask)
        if not (min_pixels <= rows.size <= max_pixels):
            continue
        # Open-water ring test: a true berg floats in water, so the pixels
        # immediately around it must be dark. A floe fragment (corner cap,
        # edge fringe) has bright ice next to it and is rejected here.
        ring = ndimage.binary_dilation(component_mask, iterations=2) & ~component_mask
        # Upper-quartile test: even a partially ice-adjacent fragment (e.g.
        # a floe corner whose ring is ~25% bright ice) fails this.
        if np.quantile(vv[ring], 0.75) > water_level + water_margin_db:
            continue
        min_x = transform.origin_x + cols.min() * size
        max_x = transform.origin_x + (cols.max() + 1) * size
        max_y = transform.origin_y - rows.min() * size
        min_y = transform.origin_y - (rows.max() + 1) * size
        outline = Polygon.box(min_x, min_y, max_x, max_y)
        centroid_x = transform.origin_x + (cols.mean() + 0.5) * size
        centroid_y = transform.origin_y - (rows.mean() + 0.5) * size
        detections.append(
            IcebergDetection(
                detection_id=f"d{scene.day_of_year:03d}_{component:04d}",
                outline=outline,
                centroid=Point(centroid_x, centroid_y),
                area_m2=float(rows.size * size * size),
                mean_backscatter_db=float(vv[rows, cols].mean()),
                day_of_year=scene.day_of_year,
            )
        )
    return detections


def track_icebergs(
    detection_series: Sequence[List[IcebergDetection]],
    max_drift_m: float = 5000.0,
) -> List[List[IcebergDetection]]:
    """Greedy nearest-centroid association across acquisitions.

    Returns tracks (lists of detections in time order). A detection starts a
    new track when no existing track's last position is within
    ``max_drift_m``.
    """
    if max_drift_m <= 0:
        raise ReproError("max_drift_m must be positive")
    tracks: List[List[IcebergDetection]] = []
    for detections in detection_series:
        unmatched = list(detections)
        # Match each open track to its nearest new detection.
        for track in tracks:
            last = track[-1]
            best = None
            best_distance = max_drift_m
            for detection in unmatched:
                dx = detection.centroid.x - last.centroid.x
                dy = detection.centroid.y - last.centroid.y
                distance = (dx * dx + dy * dy) ** 0.5
                if distance <= best_distance:
                    best = detection
                    best_distance = distance
            if best is not None:
                track.append(best)
                unmatched.remove(best)
        for detection in unmatched:
            tracks.append([detection])
    return tracks


def embed_truth_icebergs(
    truth: np.ndarray,
    count: int,
    seed: int = 0,
    berg_value: int = int(SeaIce.OLD_ICE),
    size_pixels: int = 2,
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Plant bright compact targets into an open-water truth field.

    Test/benchmark helper: returns the modified truth and the planted
    (row, col) positions so detector recall can be scored.
    """
    if count < 0:
        raise ReproError("count must be non-negative")
    rng = np.random.default_rng(seed)
    truth = np.asarray(truth).copy()
    height, width = truth.shape
    water = truth == int(SeaIce.OPEN_WATER)
    positions: List[Tuple[int, int]] = []
    attempts = 0
    while len(positions) < count and attempts < count * 50 + 50:
        attempts += 1
        row = int(rng.integers(size_pixels * 3, height - size_pixels * 3))
        col = int(rng.integers(size_pixels * 3, width - size_pixels * 3))
        region = water[
            row - size_pixels * 3 : row + size_pixels * 3,
            col - size_pixels * 3 : col + size_pixels * 3,
        ]
        if not region.all():
            continue  # needs open water around it to be detectable
        if any(abs(row - r) + abs(col - c) < size_pixels * 8 for r, c in positions):
            continue
        truth[row : row + size_pixels, col : col + size_pixels] = berg_value
        positions.append((row, col))
    return truth, positions
