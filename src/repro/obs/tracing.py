"""Hierarchical timing: spans and the tracer that collects them.

A :class:`Span` is one timed region with a name and labels. Spans come in
two flavours:

* ``with tracer.span("name", key=value):`` — lexically scoped; nesting
  follows the ``with`` stack, so the span records its parent.
* ``span = tracer.start_span(...)`` / ``span.end()`` — detached; for
  event-driven code (the discrete-event scheduler) where a region opens
  in one callback and closes in another.

Time comes from the tracer's ``clock`` callable. Simulated subsystems bind
it to their sim-clock (``lambda: simulation.now``) so spans measure
*simulated* seconds; everything else defaults to ``time.perf_counter``.
A tracer whose clock is unset is claimed by the first simulated subsystem
that receives it (see ``Scheduler``), which is how "sim-clock where one
exists, wall-clock elsewhere" is decided.

Aggregates (count/total/min/max per span name) are always kept; individual
span records are retained up to ``max_spans`` so snapshots stay bounded on
million-event runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ObsError

Clock = Callable[[], float]


class Span:
    """One timed region; ``end()`` is idempotent."""

    __slots__ = ("name", "labels", "parent_name", "start_s", "end_s",
                 "status", "_tracer")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        start_s: float,
        tracer: Optional["Tracer"],
        parent_name: Optional[str] = None,
    ):
        self.name = name
        self.labels = labels
        self.parent_name = parent_name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.status = "ok"
        self._tracer = tracer

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ObsError(f"span {self.name!r} has not ended")
        return self.end_s - self.start_s

    def end(self, status: Optional[str] = None) -> None:
        if self.end_s is not None:
            return
        if status is not None:
            self.status = status
        tracer = self._tracer
        if tracer is not None:
            self.end_s = tracer.now()
            tracer._record(self)

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "parent": self.parent_name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s if self.finished else None,
            "status": self.status,
        }


class Tracer:
    """Collects spans; one per :class:`~repro.obs.Observability` bundle."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None, max_spans: int = 2000):
        if max_spans < 0:
            raise ObsError("max_spans must be non-negative")
        self.clock = clock
        self.max_spans = max_spans
        self._finished: List[Span] = []
        self._dropped = 0
        self._aggregates: Dict[str, List[float]] = {}  # name -> [n, sum, min, max]
        self._stack: List[Span] = []

    def now(self) -> float:
        return self.clock() if self.clock is not None else time.perf_counter()

    def start_span(self, name: str, **labels: object) -> Span:
        """A detached span: the caller ends it explicitly."""
        return Span(
            name,
            {str(k): str(v) for k, v in labels.items()},
            self.now(),
            self,
            parent_name=self._stack[-1].name if self._stack else None,
        )

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        """A lexically scoped span; exceptions mark its status ``error``."""
        opened = self.start_span(name, **labels)
        self._stack.append(opened)
        try:
            yield opened
        except BaseException:
            opened.status = "error"
            raise
        finally:
            self._stack.pop()
            opened.end()

    def _record(self, span: Span) -> None:
        aggregate = self._aggregates.get(span.name)
        duration = span.duration_s
        if aggregate is None:
            self._aggregates[span.name] = [1, duration, duration, duration]
        else:
            aggregate[0] += 1
            aggregate[1] += duration
            aggregate[2] = min(aggregate[2], duration)
            aggregate[3] = max(aggregate[3], duration)
        if len(self._finished) < self.max_spans:
            self._finished.append(span)
        else:
            self._dropped += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def finished_spans(self) -> List[Span]:
        return list(self._finished)

    def total_s(self, name: str) -> float:
        """Total recorded duration across spans with this name."""
        aggregate = self._aggregates.get(name)
        return aggregate[1] if aggregate else 0.0

    def span_count(self, name: Optional[str] = None) -> int:
        if name is None:
            return sum(int(a[0]) for a in self._aggregates.values())
        aggregate = self._aggregates.get(name)
        return int(aggregate[0]) if aggregate else 0

    def snapshot(self) -> Dict:
        return {
            "aggregates": [
                {
                    "name": name,
                    "count": int(values[0]),
                    "total_s": values[1],
                    "min_s": values[2],
                    "max_s": values[3],
                }
                for name, values in sorted(self._aggregates.items())
            ],
            "spans": [s.as_dict() for s in self._finished],
            "dropped": self._dropped,
        }


# ---------------------------------------------------------------------------
# Disabled path
# ---------------------------------------------------------------------------

class _NullSpan(Span):
    __slots__ = ()

    def end(self, status: Optional[str] = None) -> None:
        pass


_NULL_SPAN = _NullSpan("null", {}, 0.0, None)


class NullTracer(Tracer):
    """No-op tracer: never reads the clock, never retains anything."""

    enabled = False

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        yield _NULL_SPAN

    def start_span(self, name: str, **labels: object) -> Span:
        return _NULL_SPAN


NULL_TRACER = NullTracer()
