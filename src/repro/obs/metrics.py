"""Labelled metric instruments: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every instrument a run produces. An
instrument is identified by ``(name, frozenset(labels))`` — asking the
registry for the same name+labels twice returns the same object, so hot
paths can cache the instrument once and increment it for free afterwards.

The registry is deliberately tiny and dependency-free: values are exact
Python numbers (counters stay ints as long as callers increment by ints),
so code that reports through a registry instead of a bespoke field keeps
byte-identical accounting. ``snapshot()`` renders everything as plain
JSON-serialisable dicts (see :mod:`repro.obs.export` for the file format).

The null variants (:class:`NullRegistry` and its shared instruments) are
the disabled path: every mutator is a no-op, every accessor returns zero,
and a single shared instance backs all names, so instrumented code needs
no ``if enabled`` checks on the hot path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ObsError

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds — geometric, wide enough to cover
#: microsecond latencies and kilosecond makespans with one scale.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease")
        self._value += amount

    @property
    def value(self) -> Number:
        return self._value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self._value: Number = 0

    def set(self, value: Number) -> None:
        self._value = value

    def inc(self, amount: Number = 1) -> None:
        self._value += amount

    def dec(self, amount: Number = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> Number:
        return self._value


class Histogram:
    """Distribution summary: count/sum/min/max plus cumulative buckets."""

    __slots__ = ("name", "labels", "buckets", "bucket_counts",
                 "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ObsError(f"histogram {name!r} buckets must strictly increase")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> Dict[str, int]:
        """``{upper_bound: observations <= bound}`` with a ``+Inf`` tail."""
        out: Dict[str, int] = {}
        running = 0
        for bound, count in zip(self.buckets, self.bucket_counts):
            running += count
            out[repr(bound)] = running
        out["+Inf"] = running + self.bucket_counts[-1]
        return out


class MetricsRegistry:
    """The per-run instrument store; hand it to every instrumented subsystem."""

    enabled = True

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(
                name, key[1],
                tuple(buckets) if buckets is not None else DEFAULT_BUCKETS,
            )
        return instrument

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def value(self, name: str, **labels: object) -> Number:
        """Current value of a counter/gauge (0 if never touched)."""
        key = (name, _label_key(labels))
        if key in self._counters:
            return self._counters[key].value
        if key in self._gauges:
            return self._gauges[key].value
        return 0

    def snapshot(self) -> Dict[str, List[Dict]]:
        """All instruments as JSON-serialisable records, sorted by identity."""

        def sort_key(instrument):
            return (instrument.name, instrument.labels)

        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for c in sorted(self._counters.values(), key=sort_key)
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for g in sorted(self._gauges.values(), key=sort_key)
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "buckets": h.cumulative_buckets(),
                }
                for h in sorted(self._histograms.values(), key=sort_key)
            ],
        }


# ---------------------------------------------------------------------------
# Disabled path: shared null instruments, zero allocation per call
# ---------------------------------------------------------------------------

class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass

    def inc(self, amount: Number = 1) -> None:
        pass

    def dec(self, amount: Number = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


_NULL_COUNTER = _NullCounter("null", ())
_NULL_GAUGE = _NullGauge("null", ())
_NULL_HISTOGRAM = _NullHistogram("null", ())


class NullRegistry(MetricsRegistry):
    """The no-op registry behind the module-level disabled default."""

    enabled = False

    def counter(self, name: str, **labels: object) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: object) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name, buckets=None, **labels) -> Histogram:
        return _NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()
