"""The ``BENCH_*.json`` snapshot format.

One schema for every benchmark and experiment: a versioned JSON document
bundling the metrics registry and the tracer of an
:class:`~repro.obs.Observability` run, plus free-form ``meta`` (which
experiment, which parameters). The CI observability smoke and the test
suite both go through :func:`validate_snapshot`, so the format is pinned.

``bench_snapshot_path`` centralises where benches write: the directory in
``$REPRO_OBS_DIR`` (default: the working directory), file name
``BENCH_<NAME>.json``.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from repro.errors import ObsError

SCHEMA = "repro.obs/v1"

_METRIC_SECTIONS = ("counters", "gauges", "histograms")
_SPAN_SECTIONS = ("aggregates", "spans", "dropped")


def snapshot_document(obs, meta: Optional[Dict] = None) -> Dict:
    """Render an Observability bundle as the versioned snapshot document."""
    return {
        "schema": SCHEMA,
        "meta": dict(meta or {}),
        "metrics": obs.metrics.snapshot(),
        "spans": obs.tracer.snapshot(),
    }


def write_snapshot(path: str, obs, meta: Optional[Dict] = None) -> str:
    """Write the snapshot document to *path*; returns the path written."""
    document = snapshot_document(obs, meta)
    validate_snapshot(document)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def bench_snapshot_path(name: str) -> str:
    """``$REPRO_OBS_DIR/BENCH_<NAME>.json`` (directory defaults to cwd)."""
    if not name or not name.replace("_", "").isalnum():
        raise ObsError(f"bench snapshot name must be alphanumeric, got {name!r}")
    directory = os.environ.get("REPRO_OBS_DIR", ".")
    return os.path.join(directory, f"BENCH_{name.upper()}.json")


def read_snapshot(path: str) -> Dict:
    """Load and validate a snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    validate_snapshot(document)
    return document


def validate_snapshot(document: Dict) -> None:
    """Raise :class:`ObsError` unless *document* is a well-formed snapshot."""
    if not isinstance(document, dict):
        raise ObsError("snapshot must be a JSON object")
    if document.get("schema") != SCHEMA:
        raise ObsError(
            f"unknown snapshot schema {document.get('schema')!r}; want {SCHEMA}"
        )
    if not isinstance(document.get("meta"), dict):
        raise ObsError("snapshot meta must be an object")
    metrics = document.get("metrics")
    if not isinstance(metrics, dict):
        raise ObsError("snapshot missing metrics section")
    for section in _METRIC_SECTIONS:
        records = metrics.get(section)
        if not isinstance(records, list):
            raise ObsError(f"metrics.{section} must be a list")
        for record in records:
            if not isinstance(record, dict) or "name" not in record:
                raise ObsError(f"metrics.{section} records need a name")
            if section == "histograms":
                missing = {"count", "sum", "buckets"} - set(record)
                if missing:
                    raise ObsError(f"histogram record missing {sorted(missing)}")
            elif "value" not in record:
                raise ObsError(f"metrics.{section} records need a value")
    spans = document.get("spans")
    if not isinstance(spans, dict):
        raise ObsError("snapshot missing spans section")
    for section in _SPAN_SECTIONS:
        if section not in spans:
            raise ObsError(f"spans.{section} missing")
    for aggregate in spans["aggregates"]:
        missing = {"name", "count", "total_s"} - set(aggregate)
        if missing:
            raise ObsError(f"span aggregate missing {sorted(missing)}")
