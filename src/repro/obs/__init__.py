"""Unified observability: metrics + tracing + JSON snapshots.

The paper's platform claims (1M metadata ops/s, allreduce-vs-PS scaling,
locality-aware scheduling) are *measured* claims; this package is how the
stack measures itself. One :class:`Observability` bundle carries

* a :class:`~repro.obs.metrics.MetricsRegistry` — labelled counters,
  gauges and histograms;
* a :class:`~repro.obs.tracing.Tracer` — hierarchical :class:`Span`
  timing, driven by the sim-clock where one exists (the scheduler binds
  an unclaimed tracer to its simulation) and wall-clock elsewhere;
* the ``BENCH_*.json`` snapshot format (:mod:`repro.obs.export`) the
  benchmarks emit.

Instrumented subsystems (``Scheduler``, ``ShardedKVStore``, ``HopsFS``,
``execute_federated``, ``RetryPolicy``, the SPARQL evaluator,
``DataParallelTrainer``, and the E20 durability layer — ``durability.*``
counters for WAL appends, recoveries, detected/served corrupt reads,
scrub repairs and fsck runs) all take an optional ``obs`` argument defaulting
to the module-level :data:`NOOP` — mirroring the ``repro.faults`` pattern:
with observability disabled every instrument call hits a shared null
object, runs are byte-identical to uninstrumented code, and the overhead
is a dict-free method call.

Typical use::

    from repro.obs import Observability
    obs = Observability()
    store = ShardedKVStore(shard_count=8, obs=obs)
    ... run workload ...
    obs.write_snapshot("BENCH_E01.json", meta={"experiment": "E1"})
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.obs.export import (
    SCHEMA,
    bench_snapshot_path,
    read_snapshot,
    snapshot_document,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer


class Observability:
    """The enabled bundle: one registry + one tracer, snapshot helpers."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_spans: int = 2000):
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock, max_spans=max_spans)

    def clock(self) -> Callable[[], float]:
        """The tracer's resolved time source (for non-span timing code)."""
        return self.tracer.now

    def snapshot(self, meta: Optional[Dict] = None) -> Dict:
        return snapshot_document(self, meta)

    def write_snapshot(self, path: str, meta: Optional[Dict] = None) -> str:
        return write_snapshot(path, self, meta)


class _NoopObservability(Observability):
    """The module-level disabled default; a singleton shared by everyone."""

    enabled = False

    def __init__(self):
        self.metrics = NULL_REGISTRY
        self.tracer = NULL_TRACER


#: The disabled default every instrumented subsystem falls back to.
NOOP = _NoopObservability()


def resolve(obs: Optional[Observability]) -> Observability:
    """``obs`` if given, else the shared no-op bundle."""
    return obs if obs is not None else NOOP


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "SCHEMA",
    "Span",
    "Tracer",
    "bench_snapshot_path",
    "read_snapshot",
    "resolve",
    "snapshot_document",
    "validate_snapshot",
    "write_snapshot",
]
