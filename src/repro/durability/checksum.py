"""End-to-end content checksums for block storage (experiment E20).

The simulation does not materialise block bytes, so a replica's "contents"
are modelled as a 64-bit **content fingerprint** — a stable hash of
``(block_id, size, generation)``. Every write refreshes the authoritative
fingerprint; every replica carries its own copy. Silent faults
(:class:`~repro.faults.BitFlip`, :class:`~repro.faults.StaleReplica`)
perturb a *replica's* fingerprint while leaving the authoritative one
alone, which is exactly the disk-rot shape: the namenode believes one
thing, the platter holds another, and only comparing the two can tell.

:class:`BlockChecksums` is the optional ledger a
:class:`~repro.hopsfs.BlockManager` consults:

* ``verify=True`` — reads check the chosen replica and transparently fail
  over to an intact one (``durability.corrupt_reads_detected``); a block
  with no intact replica raises :class:`~repro.errors.BlockCorruption`.
* ``verify=False`` — the ledger still tracks fingerprints (so a bench can
  *count* the corrupt reads a checksum-less deployment serves,
  ``durability.corrupt_reads_served``) but never changes which replica a
  read picks: answers are byte-identical to a manager with no ledger.
* ``None`` (the manager's default) — no ledger at all, the pre-E20 path.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional, Tuple, TYPE_CHECKING

from repro.errors import StorageError
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


def content_fingerprint(block_id: int, size: int, generation: int) -> int:
    """Stable 64-bit fingerprint of one generation of a block's contents."""
    digest = hashlib.blake2b(
        f"block:{block_id}:{size}:{generation}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def flipped_fingerprint(fingerprint: int) -> int:
    """The fingerprint a bit-flipped replica reads back as (never equal)."""
    return fingerprint ^ 0xA5A5_A5A5_A5A5_A5A5


class BlockChecksums:
    """Per-replica content fingerprints with verification accounting."""

    def __init__(self, verify: bool = True,
                 obs: Optional[Observability] = None):
        self.verify = verify
        self._obs = resolve(obs)
        self._size: Dict[int, int] = {}  # block_id -> size
        self._generation: Dict[int, int] = {}  # block_id -> generation
        # (block_id, node_id) -> the fingerprint this replica reads back as
        self._replica: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Lifecycle hooks (called by BlockManager)
    # ------------------------------------------------------------------

    def expected(self, block_id: int) -> int:
        """The authoritative fingerprint of the block's current generation."""
        if block_id not in self._size:
            raise StorageError(f"no checksum tracked for block {block_id}")
        return content_fingerprint(
            block_id, self._size[block_id], self._generation[block_id]
        )

    def generation(self, block_id: int) -> int:
        return self._generation.get(block_id, 0)

    def on_place(self, block_id: int, size: int, node_id: int) -> None:
        """A replica was written in full (allocation or re-replication)."""
        if block_id not in self._size:
            self._size[block_id] = size
            self._generation[block_id] = 0
        self._replica[(block_id, node_id)] = self.expected(block_id)

    def on_drop(self, block_id: int, node_id: int) -> None:
        self._replica.pop((block_id, node_id), None)

    def on_free(self, block_id: int) -> None:
        self._size.pop(block_id, None)
        self._generation.pop(block_id, None)
        for key in [k for k in self._replica if k[0] == block_id]:
            del self._replica[key]

    def on_update(self, block_id: int, node_ids: Iterable[int]) -> int:
        """The block was rewritten: bump its generation, refresh replicas.

        Returns the new generation. A replica that a later
        :class:`~repro.faults.StaleReplica` fault reverts will hold the
        *previous* generation's (still self-consistent!) fingerprint —
        detectable only because fingerprints cover the generation.
        """
        if block_id not in self._size:
            raise StorageError(f"no checksum tracked for block {block_id}")
        self._generation[block_id] += 1
        fingerprint = self.expected(block_id)
        for node_id in node_ids:
            self._replica[(block_id, node_id)] = fingerprint
        return self._generation[block_id]

    # ------------------------------------------------------------------
    # Silent-fault application
    # ------------------------------------------------------------------

    def corrupt_replica(self, block_id: int, node_id: int,
                        kind: str = "bit_flip") -> bool:
        """Rot one replica in place; returns False if it does not exist.

        ``bit_flip`` garbles the fingerprint outright; ``stale`` reverts the
        replica to the previous generation's fingerprint (a no-op at
        generation 0 — a replica that never saw a second write cannot be
        stale).
        """
        key = (block_id, node_id)
        if key not in self._replica:
            return False
        if kind == "bit_flip":
            self._replica[key] = flipped_fingerprint(self._replica[key])
        elif kind == "stale":
            generation = self._generation[block_id]
            if generation == 0:
                return False
            self._replica[key] = content_fingerprint(
                block_id, self._size[block_id], generation - 1
            )
        else:
            raise StorageError(f"unknown corruption kind {kind!r}")
        return True

    def apply_silent_faults(self, injector: "FaultInjector") -> int:
        """Apply the plan's BitFlip/StaleReplica entries; returns count."""
        applied = 0
        for flip in injector.block_bit_flips():
            if self.corrupt_replica(flip.block_id, flip.node_id, "bit_flip"):
                applied += 1
        for stale in injector.block_stale_replicas():
            if self.corrupt_replica(stale.block_id, stale.node_id, "stale"):
                applied += 1
        return applied

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def replica_intact(self, block_id: int, node_id: int) -> bool:
        """Does the replica's fingerprint match the authoritative one?

        An untracked replica (placed before the ledger was attached) is
        treated as intact — there is nothing to compare against.
        """
        stored = self._replica.get((block_id, node_id))
        if stored is None:
            return True
        return stored == self.expected(block_id)

    def repair_replica(self, block_id: int, node_id: int) -> None:
        """Overwrite a replica from an intact copy: fingerprint restored."""
        self._replica[(block_id, node_id)] = self.expected(block_id)

    def note_detected(self, block_id: int, node_id: int) -> None:
        self._obs.metrics.counter(
            "durability.corrupt_reads_detected", node=node_id
        ).inc()

    def note_served(self, block_id: int, node_id: int) -> None:
        self._obs.metrics.counter(
            "durability.corrupt_reads_served", node=node_id
        ).inc()

    @property
    def tracked_replicas(self) -> int:
        return len(self._replica)

    def replicas(self) -> Tuple[Tuple[int, int], ...]:
        """All tracked ``(block_id, node_id)`` pairs (fsck/scrub surface)."""
        return tuple(self._replica)
