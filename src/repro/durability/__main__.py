"""CLI entry: ``python -m repro.durability`` runs the crash-point sweep."""

from repro.durability.harness import main

raise SystemExit(main())
