"""Cross-layer integrity checking — the simulated ``fsck`` (experiment E20).

Three duck-typed checkers, one per layer, each returning an
:class:`FsckReport`:

* :func:`fsck_store` — shard routing is honest (every key lives on the
  shard its partition key hashes to) and, with a durability layer attached,
  replaying the logs reproduces the live dictionaries exactly: **no
  acknowledged write is missing from the durable record, and nothing
  aborted is visible**.
* :func:`fsck_blocks` — block ownership and datanode inventory agree in
  both directions, replication counts are honest (never above target,
  owners unique and alive), byte accounting adds up, and the checksum
  ledger (if any) carries no ghost replicas.
* :func:`fsck_filesystem` — both of the above, plus metadata ↔ block-layer
  referential integrity: every file's block ids exist, no block belongs to
  two files, inode ids are unique.

Checkers accumulate human-readable violations instead of raising on the
first, so one pass reports everything wrong; :meth:`FsckReport.verify`
turns a dirty report into a :class:`~repro.errors.DataCorruption`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.errors import DataCorruption
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hopsfs.blocks import BlockManager
    from repro.hopsfs.filesystem import HopsFS
    from repro.hopsfs.kvstore import ShardedKVStore


@dataclass
class FsckReport:
    """The outcome of one integrity pass."""

    checks: int = 0
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def merge(self, other: "FsckReport") -> "FsckReport":
        self.checks += other.checks
        self.violations.extend(other.violations)
        return self

    def verify(self) -> "FsckReport":
        """Raise :class:`~repro.errors.DataCorruption` if anything is wrong."""
        if not self.ok:
            raise DataCorruption(
                f"fsck found {len(self.violations)} violation(s): "
                + "; ".join(self.violations[:5])
                + ("; ..." if len(self.violations) > 5 else "")
            )
        return self

    def summary(self) -> str:
        state = "clean" if self.ok else f"{len(self.violations)} violation(s)"
        return f"fsck: {self.checks} checks, {state}"


def _note(report: FsckReport, obs: Observability, layer: str) -> FsckReport:
    obs.metrics.counter("durability.fsck_runs", layer=layer).inc()
    if report.violations:
        obs.metrics.counter(
            "durability.fsck_violations", layer=layer
        ).inc(len(report.violations))
    return report


def fsck_store(store: "ShardedKVStore",
               obs: Optional[Observability] = None) -> FsckReport:
    """Check the metadata store: routing honesty + WAL/state agreement."""
    report = FsckReport()
    for shard in range(store.shard_count):
        for pk, key, _ in store.shard_items(shard):
            report.checks += 1
            routed = store.shard_of(pk)
            if routed != shard:
                report.add(
                    f"key ({pk!r}, {key!r}) lives on shard {shard} but "
                    f"routes to shard {routed}"
                )
    durability = getattr(store, "durability", None)
    if durability is not None:
        # The durable record must reproduce the volatile state exactly:
        # a missing entry is a committed write the log lost, an extra one
        # an aborted (or never-acknowledged) write that became visible.
        replayed, _ = durability.recover()
        for shard in range(store.shard_count):
            live = {(pk, key): value
                    for pk, key, value in store.shard_items(shard)}
            report.checks += 1
            for entry in live.keys() - replayed[shard].keys():
                report.add(
                    f"shard {shard}: committed write {entry!r} is absent "
                    "from the durable log"
                )
            for entry in replayed[shard].keys() - live.keys():
                report.add(
                    f"shard {shard}: durable replay resurrects {entry!r}, "
                    "which the live state does not contain"
                )
            for entry in live.keys() & replayed[shard].keys():
                if live[entry] != replayed[shard][entry]:
                    report.add(
                        f"shard {shard}: durable value for {entry!r} "
                        "disagrees with the live state"
                    )
    return _note(report, resolve(obs), "store")


def fsck_blocks(blocks: "BlockManager",
                obs: Optional[Observability] = None) -> FsckReport:
    """Check block ownership ↔ datanode inventory, replication, bytes."""
    report = FsckReport()
    table = blocks.block_table()
    for block_id, (size, owners) in table.items():
        report.checks += 1
        if len(set(owners)) != len(owners):
            report.add(f"block {block_id}: duplicate owners {owners}")
        if len(owners) > blocks.replication:
            report.add(
                f"block {block_id}: {len(owners)} replicas exceed the "
                f"replication target {blocks.replication}"
            )
        for node_id in owners:
            if not 0 <= node_id < len(blocks.nodes):
                report.add(f"block {block_id}: owner {node_id} does not exist")
                continue
            node = blocks.nodes[node_id]
            if not node.alive:
                report.add(
                    f"block {block_id}: owner {node_id} is dead but still "
                    "listed"
                )
            elif node.blocks.get(block_id) != size:
                report.add(
                    f"block {block_id}: datanode {node_id} inventory says "
                    f"{node.blocks.get(block_id)!r} bytes, namenode says {size}"
                )
    for node in blocks.nodes:
        report.checks += 1
        if not node.alive:
            if node.blocks or node.used_bytes:
                report.add(
                    f"datanode {node.node_id} is dead but holds "
                    f"{len(node.blocks)} blocks / {node.used_bytes} bytes"
                )
            continue
        accounted = sum(node.blocks.values())
        if accounted != node.used_bytes:
            report.add(
                f"datanode {node.node_id}: used_bytes {node.used_bytes} != "
                f"sum of held blocks {accounted}"
            )
        for block_id in node.blocks:
            entry = table.get(block_id)
            if entry is None:
                report.add(
                    f"datanode {node.node_id} holds unknown block {block_id}"
                )
            elif node.node_id not in entry[1]:
                report.add(
                    f"datanode {node.node_id} holds block {block_id} but is "
                    "not in its owner list"
                )
    if blocks.checksums is not None:
        report.checks += 1
        owned = {
            (block_id, node_id)
            for block_id, (_, owners) in table.items()
            for node_id in owners
        }
        for block_id, node_id in blocks.checksums.replicas():
            if (block_id, node_id) not in owned:
                report.add(
                    f"checksum ledger tracks replica ({block_id}, {node_id}) "
                    "that no datanode holds"
                )
    return _note(report, resolve(obs), "blocks")


def fsck_filesystem(fs: "HopsFS",
                    obs: Optional[Observability] = None) -> FsckReport:
    """Full pass: store + blocks + metadata ↔ block referential integrity."""
    report = fsck_store(fs.store, obs).merge(fsck_blocks(fs.blocks, obs))
    table = fs.blocks.block_table()
    seen_inodes: dict = {}
    claimed_blocks: dict = {}
    for shard in range(fs.store.shard_count):
        for pk, key, record in fs.store.shard_items(shard):
            if not isinstance(record, dict) or "inode" not in record:
                continue
            report.checks += 1
            inode = record["inode"]
            where = f"({pk!r}, {key!r})"
            if key != "__self__":
                prior = seen_inodes.setdefault(inode, where)
                if prior != where:
                    report.add(
                        f"inode {inode} appears at both {prior} and {where}"
                    )
            for block_id in record.get("blocks") or ():
                if block_id not in table:
                    report.add(
                        f"file {where} references unknown block {block_id}"
                    )
                    continue
                prior = claimed_blocks.setdefault(block_id, where)
                if prior != where:
                    report.add(
                        f"block {block_id} is claimed by both {prior} "
                        f"and {where}"
                    )
    return _note(report, resolve(obs), "filesystem")
