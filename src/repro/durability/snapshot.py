"""Checksummed shard snapshots (experiment E20).

A snapshot is the pickled image of one shard's dictionary plus the WAL
byte offset it covers: recovery restores the image and replays only the
log suffix past that offset. The image carries a CRC taken at capture
time, so a snapshot that rots on "disk" (the seeded
:class:`~repro.faults.SnapshotCorruption` fault, or :meth:`ShardSnapshot.rot`)
is *detected* at restore instead of silently resurrecting garbage state —
recovery then falls back to a from-scratch replay when the full log is
still around, and raises :class:`~repro.errors.SnapshotCorrupted` when the
covered prefix was truncated away.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Any, Dict

from repro.errors import SnapshotCorrupted


class ShardSnapshot:
    """One shard's state image, checksummed, pinned to a WAL offset."""

    def __init__(self, shard: int, data: bytes, crc: int, wal_offset: int,
                 index: int):
        self.shard = shard
        self.data = data
        self.crc = crc
        self.wal_offset = wal_offset
        self.index = index

    @classmethod
    def capture(cls, shard: int, state: Dict[Any, Any], wal_offset: int,
                index: int) -> "ShardSnapshot":
        """Serialise ``state`` as it is right now (a copy, not a view)."""
        data = pickle.dumps(state, protocol=4)
        return cls(shard, data, zlib.crc32(data), wal_offset, index)

    def restore(self) -> Dict[Any, Any]:
        """Verify and deserialise; raises :class:`SnapshotCorrupted`."""
        if zlib.crc32(self.data) != self.crc:
            raise SnapshotCorrupted(
                f"snapshot {self.index} of shard {self.shard} failed its "
                "checksum",
                shard=self.shard,
            )
        state = pickle.loads(self.data)
        if not isinstance(state, dict):
            raise SnapshotCorrupted(
                f"snapshot {self.index} of shard {self.shard} decoded to "
                f"{type(state).__name__}, not a dict",
                shard=self.shard,
            )
        return state

    def rot(self) -> None:
        """Flip one byte of the image in place (silent corruption)."""
        if not self.data:
            # An empty image cannot rot a payload byte; rot the CRC instead.
            self.crc ^= 0xFFFF
            return
        corrupted = bytearray(self.data)
        corrupted[len(corrupted) // 2] ^= 0x40
        self.data = bytes(corrupted)

    @property
    def size_bytes(self) -> int:
        return len(self.data)
