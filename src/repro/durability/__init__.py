"""Durability & data integrity for the simulated platform (experiment E20).

The fault-injection work (E17) made the platform survive *loud* failures —
crashes, outages, timeouts. This package is about the quiet ones: power
loss between a write's acknowledgement and the next checkpoint, a cosmic
ray in a cold replica, a write torn in half by the crash that interrupted
it, a snapshot that rotted on disk. Four pieces:

* :class:`DurabilityLayer` / :class:`WriteAheadLog` — per-shard
  write-ahead logging for :class:`~repro.hopsfs.ShardedKVStore`. Records
  are really framed (length + CRC32 + pickled payload) in a flat byte
  buffer that survives :meth:`~repro.hopsfs.ShardedKVStore.crash`;
  :meth:`~repro.hopsfs.ShardedKVStore.recover` rebuilds every shard from
  its latest checksummed :class:`ShardSnapshot` plus log replay. 2PC
  transactions stage per-participant prepares before any commit marker, and
  recovery applies a transaction iff a marker survives anywhere.
* :class:`BlockChecksums` — end-to-end content fingerprints for
  :class:`~repro.hopsfs.BlockManager` replicas. Verified reads detect
  silent corruption (:class:`~repro.faults.BitFlip`,
  :class:`~repro.faults.StaleReplica`) and fail over to intact copies; the
  :class:`Scrubber` sweeps cold replicas and repairs from healthy siblings.
* :mod:`~repro.durability.fsck` — cross-layer invariant checking: shard
  routing, WAL ↔ state agreement, block ownership ↔ datanode inventory,
  replication honesty, metadata ↔ block referential integrity.
* :class:`~repro.durability.harness.CrashPointHarness` — kills the store
  at every WAL record boundary (clean and torn) and proves the
  all-or-nothing oracle: no committed write lost, no aborted write visible.

Everything defaults **off**: a store or block manager built without these
collaborators runs the exact pre-E20 byte path (the repo's null-object
convention, pinned by the parity suite).
"""

from repro.durability.checksum import (
    BlockChecksums,
    content_fingerprint,
    flipped_fingerprint,
)
from repro.durability.fsck import (
    FsckReport,
    fsck_blocks,
    fsck_filesystem,
    fsck_store,
)
from repro.durability.harness import CrashPointHarness, CrashSweepReport
from repro.durability.scrub import ScrubReport, Scrubber
from repro.durability.snapshot import ShardSnapshot
from repro.durability.wal import (
    DurabilityLayer,
    RecoveryReport,
    WriteAheadLog,
)

__all__ = [
    "BlockChecksums",
    "CrashPointHarness",
    "CrashSweepReport",
    "DurabilityLayer",
    "FsckReport",
    "RecoveryReport",
    "ScrubReport",
    "Scrubber",
    "ShardSnapshot",
    "WriteAheadLog",
    "content_fingerprint",
    "flipped_fingerprint",
    "fsck_blocks",
    "fsck_filesystem",
    "fsck_store",
]
