"""Crash-point recovery harness (experiment E20).

The only convincing argument for a recovery protocol is exhaustion: run a
deterministic workload, then re-run it killing the store at **every WAL
record boundary** — clean crash and torn-write crash both — recover, and
check the all-or-nothing oracle each time:

* every operation acknowledged before the crash is fully visible
  (**zero committed-write loss**);
* the operation in flight at the crash is either fully applied (its commit
  record became durable) or fully absent (**zero aborted-visibility**) —
  never partial;
* :func:`~repro.durability.fsck.fsck_store` comes back clean, i.e. the
  durable logs reproduce the recovered state exactly.

The workload is seeded and mixes single-shard puts/deletes with
multi-shard 2PC transactions, with a mid-run checkpoint so recovery
exercises the snapshot + log-suffix path, not just full replay.

Run it from the command line (the CI recovery-soak job does)::

    python -m repro.durability.harness --seeds 0,1,2
"""

from __future__ import annotations

import argparse
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.fsck import fsck_store
from repro.durability.wal import DurabilityLayer
from repro.errors import SimulatedCrash
from repro.hopsfs.kvstore import ShardedKVStore
from repro.obs import Observability, resolve

#: One workload operation: ("put", pk, key, value) | ("delete", pk, key)
#: | ("transact", writes, deletes)
Op = Tuple[Any, ...]


def make_workload(seed: int, ops: int = 24,
                  shard_count: int = 4) -> List[Op]:
    """A seeded op mix over integer partition keys.

    Integer keys hash to themselves, so shard routing — and therefore the
    exact WAL record sequence — is identical on every run of a seed.
    """
    rng = random.Random(seed)
    partitions = list(range(shard_count * 2))
    keys = [f"k{i}" for i in range(6)]
    out: List[Op] = []
    for i in range(ops):
        roll = rng.random()
        if roll < 0.5:
            out.append(("put", rng.choice(partitions), rng.choice(keys),
                        {"op": i, "seed": seed}))
        elif roll < 0.7:
            out.append(("delete", rng.choice(partitions), rng.choice(keys)))
        else:
            # A multi-shard transaction: 2-3 writes plus maybe a delete,
            # spread over distinct partitions so 2PC really spans shards.
            spread = rng.sample(partitions, rng.randint(2, 3))
            writes = [(pk, rng.choice(keys), {"op": i, "slot": j})
                      for j, pk in enumerate(spread)]
            deletes = (
                [(rng.choice(partitions), rng.choice(keys))]
                if rng.random() < 0.5 else []
            )
            out.append(("transact", writes, deletes))
    return out


def apply_op(store: ShardedKVStore, op: Op) -> None:
    kind = op[0]
    if kind == "put":
        store.put(op[1], op[2], op[3])
    elif kind == "delete":
        store.delete(op[1], op[2])
    elif kind == "transact":
        store.transact(writes=list(op[1]), deletes=list(op[2]))
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown workload op {kind!r}")


def _flatten(shards: List[Dict[Any, Any]]) -> Dict[Any, Any]:
    merged: Dict[Any, Any] = {}
    for shard in shards:
        merged.update(shard)
    return merged


@dataclass
class CrashSweepReport:
    """The outcome of one seed's full crash-point sweep."""

    seed: int
    wal_records: int = 0
    crash_points: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def verify(self) -> "CrashSweepReport":
        if not self.ok:
            raise AssertionError(
                f"crash sweep (seed {self.seed}) failed at "
                f"{len(self.failures)} point(s): " + "; ".join(self.failures[:3])
            )
        return self

    def summary(self) -> str:
        state = "clean" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"seed {self.seed}: {self.crash_points} crash points over "
            f"{self.wal_records} WAL records, {state}"
        )


class CrashPointHarness:
    """Sweeps every WAL record boundary of a seeded workload."""

    def __init__(
        self,
        seed: int = 0,
        ops: int = 24,
        shard_count: int = 4,
        obs: Optional[Observability] = None,
    ):
        self.seed = seed
        self.shard_count = shard_count
        self.workload = make_workload(seed, ops=ops, shard_count=shard_count)
        #: checkpoint (without truncation) midway so half the sweep
        #: recovers via snapshot + suffix instead of full replay
        self.checkpoint_after_op = len(self.workload) // 2
        self._obs = resolve(obs)

    # ------------------------------------------------------------------
    # Oracle
    # ------------------------------------------------------------------

    def oracle_states(self) -> List[Dict[Any, Any]]:
        """``oracle[i]`` = the merged store contents after the first *i* ops."""
        store = ShardedKVStore(shard_count=self.shard_count)
        states: List[Dict[Any, Any]] = [{}]
        for op in self.workload:
            apply_op(store, op)
            states.append(_flatten([
                {(pk, key): value for pk, key, value in store.shard_items(s)}
                for s in range(self.shard_count)
            ]))
        return states

    # ------------------------------------------------------------------
    # Sweep
    # ------------------------------------------------------------------

    def _build_store(self, crash_after: Optional[int],
                     torn: bool) -> ShardedKVStore:
        layer = DurabilityLayer(
            crash_after_records=crash_after, torn_crash=torn, obs=self._obs
        )
        return ShardedKVStore(shard_count=self.shard_count, durability=layer)

    def _run_until_crash(self, store: ShardedKVStore) -> Optional[int]:
        """Apply the workload; returns the op index that crashed, or None."""
        for i, op in enumerate(self.workload):
            try:
                apply_op(store, op)
            except SimulatedCrash:
                return i
            if i + 1 == self.checkpoint_after_op:
                store.checkpoint()
        return None

    def total_wal_records(self) -> int:
        """Dry-run record count — the number of crash points to sweep."""
        store = self._build_store(crash_after=None, torn=False)
        crashed = self._run_until_crash(store)
        assert crashed is None, "dry run must not crash"
        return store.durability.appended_records

    def run(self) -> CrashSweepReport:
        """The full sweep: every boundary, clean and torn, plus a no-crash
        crash/recover round trip."""
        report = CrashSweepReport(seed=self.seed)
        oracle = self.oracle_states()
        report.wal_records = self.total_wal_records()
        for torn in (False, True):
            for k in range(report.wal_records):
                report.crash_points += 1
                self._check_point(k, torn, oracle, report)
        # And the trivial boundary: power loss after the workload finished.
        store = self._build_store(crash_after=None, torn=False)
        self._run_until_crash(store)
        store.crash()
        store.recover()
        self._compare(store, oracle[-1], oracle[-1],
                      "post-workload crash", report)
        self._obs.metrics.counter("durability.harness_sweeps").inc()
        return report

    def _check_point(self, k: int, torn: bool,
                     oracle: List[Dict[Any, Any]],
                     report: CrashSweepReport) -> None:
        where = f"crash@{k}{'/torn' if torn else ''}"
        store = self._build_store(crash_after=k, torn=torn)
        crashed_at = self._run_until_crash(store)
        if crashed_at is None:
            report.failures.append(
                f"{where}: workload finished without hitting the crash point"
            )
            return
        store.crash()
        try:
            store.recover()
        except Exception as error:  # noqa: BLE001 - report, don't abort sweep
            report.failures.append(f"{where}: recovery raised {error!r}")
            return
        # All-or-nothing oracle: everything acknowledged before op
        # ``crashed_at`` visible, the in-flight op fully in or fully out.
        self._compare(store, oracle[crashed_at], oracle[crashed_at + 1],
                      where, report)
        fsck = fsck_store(store, obs=self._obs)
        if not fsck.ok:
            report.failures.append(
                f"{where}: fsck dirty: {fsck.violations[0]}"
            )

    def _compare(self, store: ShardedKVStore,
                 before: Dict[Any, Any], after: Dict[Any, Any],
                 where: str, report: CrashSweepReport) -> None:
        recovered = _flatten([
            {(pk, key): value for pk, key, value in store.shard_items(s)}
            for s in range(store.shard_count)
        ])
        if recovered == before or recovered == after:
            return
        lost = {k for k in before if k not in recovered}
        ghost = {k for k in recovered if k not in before and k not in after}
        detail = []
        if lost:
            detail.append(f"committed writes lost: {sorted(map(str, lost))[:3]}")
        if ghost:
            detail.append(f"phantom entries: {sorted(map(str, ghost))[:3]}")
        if not detail:
            detail.append("partial transaction visible")
        report.failures.append(f"{where}: {'; '.join(detail)}")


def run_sweeps(seeds: List[int], ops: int = 24,
               shard_count: int = 4,
               obs: Optional[Observability] = None) -> List[CrashSweepReport]:
    return [
        CrashPointHarness(seed, ops=ops, shard_count=shard_count, obs=obs).run()
        for seed in seeds
    ]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="E20 crash-point recovery sweep"
    )
    parser.add_argument("--seeds", default="0,1,2",
                        help="comma-separated workload seeds")
    parser.add_argument("--ops", type=int, default=24,
                        help="operations per workload")
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    reports = run_sweeps(seeds, ops=args.ops, shard_count=args.shards)
    for report in reports:
        print(report.summary())
        for failure in report.failures:
            print(f"  FAIL {failure}")
    if any(not r.ok for r in reports):
        return 1
    print(f"recovery soak clean: {len(reports)} seed(s), "
          f"{sum(r.crash_points for r in reports)} crash points")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
