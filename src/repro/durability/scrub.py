"""Background replica scrubbing (experiment E20).

Checksums on the read path only protect the replicas somebody reads; rot on
a cold replica sits undetected until the *healthy* copies fail and the rot
is all that's left. The scrubber closes that window: a sweep walks every
tracked replica, verifies its fingerprint against the authoritative one,
and rewrites corrupt replicas from an intact copy on the same block.
Replicas with no intact sibling left are reported as unrepairable — the
operator's signal that a block is one failure away from serving garbage
(with verification on) or already serving it (off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.errors import StorageError
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hopsfs.blocks import BlockManager


@dataclass
class ScrubReport:
    """One sweep's findings."""

    replicas_scanned: int = 0
    corrupt_found: int = 0
    repaired: int = 0
    unrepairable: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every detectably-corrupt replica had a healthy copy to heal from."""
        return not self.unrepairable

    def summary(self) -> str:
        return (
            f"scrub: {self.replicas_scanned} replicas, "
            f"{self.corrupt_found} corrupt, {self.repaired} repaired, "
            f"{len(self.unrepairable)} unrepairable"
        )


class Scrubber:
    """Sweeps a :class:`~repro.hopsfs.BlockManager`'s replicas for rot."""

    def __init__(self, blocks: "BlockManager",
                 obs: Optional[Observability] = None):
        if blocks.checksums is None:
            raise StorageError(
                "scrubbing needs a checksum ledger: a BlockManager without "
                "one has no notion of replica contents to verify"
            )
        self._blocks = blocks
        self._obs = resolve(obs)
        self.sweeps = 0

    def sweep(self) -> ScrubReport:
        """Verify every replica on every live datanode; repair what it can.

        Deterministic order (block id, then owner order), so a seeded fault
        plan always produces the same report.
        """
        checksums = self._blocks.checksums
        report = ScrubReport()
        for block_id, (_, owners) in sorted(self._blocks.block_table().items()):
            live = [o for o in owners if self._blocks.nodes[o].alive]
            intact = [o for o in live
                      if checksums.replica_intact(block_id, o)]
            for node_id in live:
                report.replicas_scanned += 1
                if checksums.replica_intact(block_id, node_id):
                    continue
                report.corrupt_found += 1
                checksums.note_detected(block_id, node_id)
                if intact:
                    # Rewrite from any intact sibling: the repaired replica
                    # takes the authoritative fingerprint.
                    checksums.repair_replica(block_id, node_id)
                    report.repaired += 1
                    self._obs.metrics.counter(
                        "durability.scrub_repairs", node=node_id
                    ).inc()
                else:
                    report.unrepairable.append((block_id, node_id))
                    self._obs.metrics.counter(
                        "durability.scrub_unrepairable", node=node_id
                    ).inc()
        self.sweeps += 1
        self._obs.metrics.counter("durability.scrub_sweeps").inc()
        return report
