"""Per-shard write-ahead logging for the metadata store (experiment E20).

Real framing, real serialisation, real checksums: every record is pickled,
length-prefixed and CRC-protected in a flat byte buffer per shard — the
buffer *is* the simulated disk, and it survives a :meth:`crash` that wipes
the store's volatile dictionaries. Because the bytes are real, the silent
faults are too: a :class:`~repro.faults.TornWrite` leaves a genuine partial
record that replay must recognise by its failing CRC, and a mid-log flip
is indistinguishable from rot — :class:`~repro.errors.WALCorrupted`.

Record kinds::

    put         {pk, key, value}            single-shard write
    delete      {pk, key}                   single-shard delete
    txn-prepare {txn, writes, deletes}      this shard's slice of a 2PC txn
    txn-commit  {txn}                       the commit marker

2PC ordering is the crux: a transaction appends its ``txn-prepare`` record
to *every* participant's log before the first ``txn-commit`` marker lands
anywhere. Recovery therefore decides commit globally — a transaction is
committed iff its marker survives in **any** participant's log (the
coordinator's decision is durable once written once), and a prepare with no
marker anywhere is an abort and replays as nothing. That single rule is
what makes the crash-point sweep in :mod:`repro.durability.harness` come
out clean at every record boundary.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import SimulatedCrash, StorageError, WALCorrupted
from repro.obs import Observability, resolve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.durability.snapshot import ShardSnapshot

#: Record framing: big-endian (payload length, payload CRC32).
_HEADER = struct.Struct(">II")

PUT = "put"
DELETE = "delete"
TXN_PREPARE = "txn-prepare"
TXN_COMMIT = "txn-commit"


def encode_record(record: Dict[str, Any]) -> bytes:
    """Frame one record: header(length, crc32) + pickled payload."""
    payload = pickle.dumps(record, protocol=4)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """One shard's append-only log over a flat byte buffer."""

    def __init__(self, shard: int):
        self.shard = shard
        self.buffer = bytearray()
        self.record_count = 0
        #: byte offset the retained buffer starts at (>0 after truncation)
        self.base_offset = 0

    @property
    def size(self) -> int:
        """Total log length in bytes, counting any truncated prefix."""
        return self.base_offset + len(self.buffer)

    def append(self, record: Dict[str, Any], torn: bool = False) -> int:
        """Append one record; returns the log size after the append.

        ``torn=True`` writes only a prefix of the frame — the crash-mid-write
        artifact replay must discard.
        """
        frame = encode_record(record)
        if torn:
            # Header plus half the payload: enough to look like a record,
            # not enough to checksum. Always at least one byte short.
            keep = _HEADER.size + (len(frame) - _HEADER.size) // 2
            frame = frame[: min(keep, len(frame) - 1)]
        self.buffer.extend(frame)
        if not torn:
            self.record_count += 1
        return self.size

    def records(self, from_offset: int = 0) -> Tuple[List[Dict[str, Any]], bool]:
        """Decode records from byte offset ``from_offset`` to the tail.

        Returns ``(records, torn_tail)``. A short or CRC-failing *final*
        frame is the expected crash artifact and is discarded
        (``torn_tail=True``); a bad frame with valid data after it cannot be
        explained by a crash and raises :class:`WALCorrupted`.
        """
        records, torn, _ = self._scan(from_offset)
        return records, torn

    def _scan(
        self, from_offset: int
    ) -> Tuple[List[Dict[str, Any]], bool, int]:
        """Decode from ``from_offset``; also returns the last valid buffer
        position (relative to the retained buffer) for tail repair."""
        if from_offset < self.base_offset:
            raise StorageError(
                f"WAL prefix before offset {self.base_offset} was truncated; "
                f"cannot replay from {from_offset}"
            )
        position = from_offset - self.base_offset
        data = self.buffer
        out: List[Dict[str, Any]] = []
        index = 0
        while position < len(data):
            if position + _HEADER.size > len(data):
                return out, True, position  # torn header at the tail
            length, crc = _HEADER.unpack_from(data, position)
            start = position + _HEADER.size
            end = start + length
            if end > len(data):
                return out, True, position  # torn payload at the tail
            payload = bytes(data[start:end])
            if zlib.crc32(payload) != crc:
                if end == len(data):
                    return out, True, position  # torn final frame
                raise WALCorrupted(
                    f"WAL record {index} on shard {self.shard} failed its "
                    "CRC with valid records after it",
                    shard=self.shard,
                    record_index=index,
                )
            out.append(pickle.loads(payload))
            position = end
            index += 1
        return out, False, position

    def repair_tail(self) -> int:
        """Drop a torn tail so post-recovery appends frame cleanly.

        Returns the number of garbage bytes discarded (0 for a clean log).
        """
        _, torn, valid_end = self._scan(self.base_offset)
        if not torn:
            return 0
        dropped = len(self.buffer) - valid_end
        del self.buffer[valid_end:]
        return dropped

    def truncate_before(self, offset: int) -> int:
        """Drop the prefix below byte ``offset`` (post-checkpoint cleanup).

        Returns the number of bytes released. After truncation a recovery
        that cannot use the covering snapshot has nothing to replay from.
        """
        if offset < self.base_offset or offset > self.size:
            raise StorageError(
                f"cannot truncate WAL to offset {offset}: retained range is "
                f"[{self.base_offset}, {self.size}]"
            )
        dropped = offset - self.base_offset
        del self.buffer[:dropped]
        self.base_offset = offset
        return dropped


@dataclass
class RecoveryReport:
    """What one :meth:`DurabilityLayer.recover` run found and did."""

    shards: int = 0
    records_replayed: int = 0
    torn_tails_discarded: int = 0
    committed_txns: int = 0
    aborted_txns: int = 0
    snapshots_used: int = 0
    snapshot_fallbacks: int = 0
    markers_healed: int = 0

    def merge_shard(self, replayed: int, torn: bool) -> None:
        self.shards += 1
        self.records_replayed += replayed
        if torn:
            self.torn_tails_discarded += 1


class DurabilityLayer:
    """The WAL set + snapshot store one :class:`ShardedKVStore` writes through.

    Optional collaborator following the ``repro.faults`` null-object
    pattern: a store built without one runs the exact pre-E20 byte path.
    ``crash_after_records`` arms a crash point for the recovery harness —
    the append that would make the durable record count exceed it raises
    :class:`~repro.errors.SimulatedCrash` instead (``torn_crash=True``
    additionally leaves that record's torn prefix on disk first).
    """

    def __init__(
        self,
        injector: Optional["FaultInjector"] = None,
        obs: Optional[Observability] = None,
        crash_after_records: Optional[int] = None,
        torn_crash: bool = False,
    ):
        self._injector = injector
        self._obs = resolve(obs)
        self.crash_after_records = crash_after_records
        self.torn_crash = torn_crash
        self.logs: List[WriteAheadLog] = []
        self.snapshots: List[Optional["ShardSnapshot"]] = []
        self._snapshots_taken: List[int] = []
        self.appended_records = 0
        self._next_txn = 0

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------

    def bind(self, shard_count: int) -> None:
        """Attach to a store; one WAL per shard. Idempotent per store."""
        if self.logs:
            if len(self.logs) != shard_count:
                raise StorageError(
                    f"durability layer already bound to {len(self.logs)} "
                    f"shards; cannot rebind to {shard_count}"
                )
            return
        self.logs = [WriteAheadLog(shard) for shard in range(shard_count)]
        self.snapshots = [None] * shard_count
        self._snapshots_taken = [0] * shard_count

    def _require_bound(self) -> None:
        if not self.logs:
            raise StorageError("durability layer is not bound to a store")

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def _append(self, shard: int, record: Dict[str, Any]) -> None:
        """One durable append, honouring torn-write faults + crash points."""
        log = self.logs[shard]
        torn = False
        if self._injector is not None and self._injector.wal_torn(
            shard, log.record_count
        ):
            torn = True
        crash_here = (
            self.crash_after_records is not None
            and self.appended_records >= self.crash_after_records
        )
        if crash_here and self.torn_crash:
            torn = True
        if crash_here and not torn:
            raise SimulatedCrash(
                f"crash point: {self.appended_records} records durable, "
                f"append to shard {shard} never started",
                records_durable=self.appended_records,
            )
        log.append(record, torn=torn)
        metrics = self._obs.metrics
        metrics.counter("durability.wal_appends", shard=shard,
                        kind=record["kind"], torn=torn).inc()
        if torn:
            # A torn write *is* a crash: no writer survives one.
            raise SimulatedCrash(
                f"torn append on shard {shard}: "
                f"{self.appended_records} records durable",
                records_durable=self.appended_records,
            )
        self.appended_records += 1

    def log_put(self, shard: int, pk: Any, key: Any, value: Any) -> None:
        self._append(shard, {"kind": PUT, "pk": pk, "key": key, "value": value})

    def log_delete(self, shard: int, pk: Any, key: Any) -> None:
        self._append(shard, {"kind": DELETE, "pk": pk, "key": key})

    def log_transaction(
        self,
        by_shard: Dict[int, Tuple[List[Tuple[Any, Any, Any]],
                                  List[Tuple[Any, Any]]]],
    ) -> int:
        """Durably stage one 2PC transaction; returns its txn id.

        Prepares land on every participant before any commit marker does —
        the ordering recovery's any-marker-means-committed rule depends on.
        """
        self._require_bound()
        txn = self._next_txn
        self._next_txn += 1
        participants = sorted(by_shard)
        for shard in participants:
            writes, deletes = by_shard[shard]
            self._append(shard, {
                "kind": TXN_PREPARE, "txn": txn,
                "writes": list(writes), "deletes": list(deletes),
            })
        for shard in participants:
            self._append(shard, {"kind": TXN_COMMIT, "txn": txn})
        return txn

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint(self, shard: int, state: Dict[Any, Any],
                   truncate: bool = False) -> "ShardSnapshot":
        """Snapshot one shard's state at its current WAL offset.

        ``truncate=True`` releases the covered log prefix — cheaper disk,
        but a corrupt snapshot then has no full-replay fallback.
        """
        from repro.durability.snapshot import ShardSnapshot

        self._require_bound()
        index = self._snapshots_taken[shard]
        self._snapshots_taken[shard] += 1
        snapshot = ShardSnapshot.capture(
            shard, state, wal_offset=self.logs[shard].size, index=index
        )
        if self._injector is not None and self._injector.snapshot_corrupted(
            shard, index
        ):
            snapshot.rot()
        self.snapshots[shard] = snapshot
        self._obs.metrics.counter("durability.snapshots", shard=shard).inc()
        if truncate:
            self.logs[shard].truncate_before(snapshot.wal_offset)
        return snapshot

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def committed_txns(self) -> Set[int]:
        """Txn ids with a commit marker in *any* participant's log."""
        committed: Set[int] = set()
        for log in self.logs:
            records, _ = log.records(log.base_offset)
            for record in records:
                if record["kind"] == TXN_COMMIT:
                    committed.add(record["txn"])
        return committed

    def recover(self) -> Tuple[List[Dict[Any, Any]], RecoveryReport]:
        """Rebuild every shard from snapshot + WAL replay.

        The commit decision is global (see :meth:`committed_txns`), so a 2PC
        transaction either replays on all its participants or on none.
        """
        from repro.errors import SnapshotCorrupted

        self._require_bound()
        report = RecoveryReport()
        committed = self.committed_txns()
        seen_txns: Set[int] = set()
        shards: List[Dict[Any, Any]] = []
        for shard, log in enumerate(self.logs):
            # Drop crash garbage first so post-recovery appends frame
            # cleanly after the last whole record.
            torn = log.repair_tail() > 0
            state: Dict[Any, Any] = {}
            from_offset = log.base_offset
            snapshot = self.snapshots[shard]
            if snapshot is not None:
                try:
                    state = snapshot.restore()
                    from_offset = snapshot.wal_offset
                    report.snapshots_used += 1
                except SnapshotCorrupted:
                    if log.base_offset > 0:
                        raise SnapshotCorrupted(
                            f"snapshot for shard {shard} is corrupt and the "
                            "covered WAL prefix was truncated: state lost",
                            shard=shard,
                        )
                    state = {}
                    from_offset = 0
                    report.snapshot_fallbacks += 1
                    self._obs.metrics.counter(
                        "durability.snapshot_fallbacks", shard=shard
                    ).inc()
            records, _ = log.records(from_offset)
            replayed = self._replay(state, records, committed, seen_txns)
            report.merge_shard(replayed, torn)
            report.markers_healed += self._heal_markers(log, committed)
            shards.append(state)
        report.committed_txns = len(committed & seen_txns)
        report.aborted_txns = len(seen_txns - committed)
        metrics = self._obs.metrics
        metrics.counter("durability.recoveries").inc()
        metrics.counter("durability.replayed_records").inc(
            report.records_replayed
        )
        if report.torn_tails_discarded:
            metrics.counter("durability.torn_tails_discarded").inc(
                report.torn_tails_discarded
            )
        if report.markers_healed:
            metrics.counter("durability.markers_healed").inc(
                report.markers_healed
            )
        return shards, report

    @staticmethod
    def _heal_markers(log: WriteAheadLog, committed: Set[int]) -> int:
        """Complete the commit point locally for globally-committed txns.

        A crash between a transaction's markers can leave a participant
        holding a prepare with the decision only durable elsewhere; writing
        the missing local marker now keeps the decision survivable even if
        the *other* participant's log is later checkpoint-truncated.
        """
        records, _ = log.records(log.base_offset)
        local_markers = {
            r["txn"] for r in records if r["kind"] == TXN_COMMIT
        }
        local_prepares = {
            r["txn"] for r in records if r["kind"] == TXN_PREPARE
        }
        healed = 0
        for txn in sorted((local_prepares & committed) - local_markers):
            log.append({"kind": TXN_COMMIT, "txn": txn})
            healed += 1
        return healed

    @staticmethod
    def _replay(
        state: Dict[Any, Any],
        records: List[Dict[str, Any]],
        committed: Set[int],
        seen_txns: Set[int],
    ) -> int:
        """Apply one shard's record stream to ``state`` in log order."""
        applied = 0
        for record in records:
            kind = record["kind"]
            if kind == PUT:
                state[(record["pk"], record["key"])] = record["value"]
            elif kind == DELETE:
                state.pop((record["pk"], record["key"]), None)
            elif kind == TXN_PREPARE:
                seen_txns.add(record["txn"])
                if record["txn"] in committed:
                    for pk, key, value in record["writes"]:
                        state[(pk, key)] = value
                    for pk, key in record["deletes"]:
                        state.pop((pk, key), None)
            elif kind == TXN_COMMIT:
                pass  # consumed globally by committed_txns()
            else:
                raise WALCorrupted(f"unknown WAL record kind {kind!r}")
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(log.size for log in self.logs)

    @property
    def total_records(self) -> int:
        return sum(log.record_count for log in self.logs)
