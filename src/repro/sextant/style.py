"""Layer styling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class LayerStyle:
    """Stroke/fill styling for a vector layer."""

    stroke: str = "#333333"
    fill: str = "#77aadd"
    fill_opacity: float = 0.6
    stroke_width: float = 1.0
    point_radius: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fill_opacity <= 1.0:
            raise ReproError("fill_opacity must be in [0, 1]")
        if self.stroke_width < 0 or self.point_radius <= 0:
            raise ReproError("invalid stroke width or point radius")


#: A categorical palette (ColorBrewer Set3-ish) for class values.
_DEFAULT_COLORS = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
)


class ClassPalette:
    """Maps integer class values to colors (with optional names)."""

    def __init__(
        self,
        colors: Optional[Dict[int, str]] = None,
        names: Optional[Dict[int, str]] = None,
    ):
        self._colors = dict(colors or {})
        self._names = dict(names or {})

    def color(self, class_value: int) -> str:
        if class_value in self._colors:
            return self._colors[class_value]
        return _DEFAULT_COLORS[class_value % len(_DEFAULT_COLORS)]

    def name(self, class_value: int) -> str:
        return self._names.get(class_value, f"class {class_value}")

    @classmethod
    def for_classes(cls, values: Sequence[int], names: Optional[Sequence[str]] = None) -> "ClassPalette":
        colors = {
            int(v): _DEFAULT_COLORS[i % len(_DEFAULT_COLORS)]
            for i, v in enumerate(values)
        }
        name_map = (
            {int(v): n for v, n in zip(values, names)} if names is not None else None
        )
        return cls(colors, name_map)
