"""Low-level SVG rendering of geometries onto a map viewport."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape, quoteattr

from repro.errors import ReproError
from repro.geometry import (
    BoundingBox,
    Geometry,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.sextant.style import LayerStyle


class SVGCanvas:
    """An SVG drawing surface with a map-extent to pixel transform.

    Map y grows north; SVG y grows down — the transform flips it. The
    extent is fitted into ``width x height`` preserving aspect ratio.
    """

    def __init__(self, extent: BoundingBox, width: int = 600, height: int = 600, padding: int = 10):
        if width < 2 * padding + 10 or height < 2 * padding + 10:
            raise ReproError("canvas too small for its padding")
        if extent.width == 0 or extent.height == 0:
            extent = extent.expand(max(extent.width, extent.height, 1.0) * 0.05)
        self.extent = extent
        self.width = width
        self.height = height
        self.padding = padding
        scale_x = (width - 2 * padding) / extent.width
        scale_y = (height - 2 * padding) / extent.height
        self._scale = min(scale_x, scale_y)
        self._elements: List[str] = []

    def to_pixel(self, x: float, y: float) -> Tuple[float, float]:
        px = self.padding + (x - self.extent.min_x) * self._scale
        py = self.padding + (self.extent.max_y - y) * self._scale
        return px, py

    # ------------------------------------------------------------------
    # Drawing
    # ------------------------------------------------------------------

    def draw_geometry(
        self, geometry: Geometry, style: LayerStyle, tooltip: Optional[str] = None
    ) -> None:
        if isinstance(geometry, (MultiPoint, MultiLineString, MultiPolygon)):
            for part in geometry:
                self.draw_geometry(part, style, tooltip)
            return
        if isinstance(geometry, Point):
            self._draw_point(geometry, style, tooltip)
        elif isinstance(geometry, LineString):
            self._draw_line(geometry, style, tooltip)
        elif isinstance(geometry, Polygon):
            self._draw_polygon(geometry, style, tooltip)
        else:
            raise ReproError(f"cannot render {type(geometry).__name__}")

    def _title(self, tooltip: Optional[str]) -> str:
        if tooltip is None:
            return ""
        return f"<title>{escape(tooltip)}</title>"

    def _draw_point(self, point: Point, style: LayerStyle, tooltip: Optional[str]) -> None:
        px, py = self.to_pixel(point.x, point.y)
        self._elements.append(
            f'<circle cx="{px:.2f}" cy="{py:.2f}" r="{style.point_radius}" '
            f'fill={quoteattr(style.fill)} stroke={quoteattr(style.stroke)} '
            f'stroke-width="{style.stroke_width}">'
            f"{self._title(tooltip)}</circle>"
        )

    def _draw_line(self, line: LineString, style: LayerStyle, tooltip: Optional[str]) -> None:
        points = " ".join(
            f"{px:.2f},{py:.2f}"
            for px, py in (self.to_pixel(x, y) for x, y in line.coords)
        )
        self._elements.append(
            f'<polyline points="{points}" fill="none" '
            f'stroke={quoteattr(style.stroke)} stroke-width="{style.stroke_width}">'
            f"{self._title(tooltip)}</polyline>"
        )

    def _draw_polygon(self, polygon: Polygon, style: LayerStyle, tooltip: Optional[str]) -> None:
        paths = []
        for ring in polygon.rings:
            commands = " ".join(
                ("M" if i == 0 else "L") + f" {px:.2f} {py:.2f}"
                for i, (px, py) in enumerate(self.to_pixel(x, y) for x, y in ring[:-1])
            )
            paths.append(commands + " Z")
        self._elements.append(
            f'<path d="{" ".join(paths)}" fill-rule="evenodd" '
            f'fill={quoteattr(style.fill)} fill-opacity="{style.fill_opacity}" '
            f'stroke={quoteattr(style.stroke)} stroke-width="{style.stroke_width}">'
            f"{self._title(tooltip)}</path>"
        )

    def draw_rect(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        fill: str,
        opacity: float = 1.0,
    ) -> None:
        """A filled rectangle in map coordinates (raster cells)."""
        px0, py1 = self.to_pixel(min_x, min_y)
        px1, py0 = self.to_pixel(max_x, max_y)
        self._elements.append(
            f'<rect x="{px0:.2f}" y="{py0:.2f}" width="{px1 - px0:.2f}" '
            f'height="{py1 - py0:.2f}" fill={quoteattr(fill)} '
            f'fill-opacity="{opacity}" stroke="none"/>'
        )

    def draw_text(self, px: float, py: float, text: str, size: int = 12) -> None:
        """Text at pixel coordinates (legends, titles)."""
        self._elements.append(
            f'<text x="{px:.2f}" y="{py:.2f}" font-size="{size}" '
            f'font-family="sans-serif">{escape(text)}</text>'
        )

    def draw_legend_swatch(self, px: float, py: float, fill: str, label: str) -> None:
        self._elements.append(
            f'<rect x="{px:.2f}" y="{py:.2f}" width="12" height="12" '
            f'fill={quoteattr(fill)} stroke="#333"/>'
        )
        self.draw_text(px + 16, py + 10, label, size=11)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def render(self, background: str = "#ffffff") -> str:
        body = "\n".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="100%" height="100%" fill={quoteattr(background)}/>\n'
            f"{body}\n</svg>\n"
        )
