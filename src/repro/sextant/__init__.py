"""Sextant: visualizing time-evolving linked geospatial data.

Re-implements the role of Sextant [5] ("Visualizing time-evolving linked
geospatial data") for this stack: vector layers straight from GeoSPARQL
query results, class-map raster layers, styling, legends, and temporal
snapshots — all rendered to standalone SVG.
"""

from repro.sextant.style import ClassPalette, LayerStyle
from repro.sextant.svg import SVGCanvas
from repro.sextant.map import SextantMap, sparql_layer
from repro.sextant.temporal import temporal_frames

__all__ = [
    "ClassPalette",
    "LayerStyle",
    "SVGCanvas",
    "SextantMap",
    "sparql_layer",
    "temporal_frames",
]
