"""The Sextant map: layers from geometries, rasters, and SPARQL results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.geometry import BoundingBox, Geometry
from repro.geosparql.literals import is_geometry_literal, literal_geometry
from repro.geosparql.store import GeoStore
from repro.raster.grid import RasterGrid
from repro.sextant.style import ClassPalette, LayerStyle
from repro.sextant.svg import SVGCanvas
from repro.sparql import Variable


@dataclass
class _VectorLayer:
    name: str
    features: List[Tuple[Geometry, Optional[str]]]
    style: LayerStyle


@dataclass
class _RasterLayer:
    name: str
    grid: RasterGrid
    palette: ClassPalette
    opacity: float
    max_cells: int


class SextantMap:
    """A multi-layer map rendered to SVG.

    Layers draw bottom-up in insertion order; the extent defaults to the
    union of all layer extents.
    """

    def __init__(self, width: int = 600, height: int = 600, title: Optional[str] = None):
        self.width = width
        self.height = height
        self.title = title
        self._layers: List[Union[_VectorLayer, _RasterLayer]] = []
        self._legend: List[Tuple[str, str]] = []  # (color, label)

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------

    def add_vector_layer(
        self,
        name: str,
        features: Sequence[Union[Geometry, Tuple[Geometry, str]]],
        style: Optional[LayerStyle] = None,
        legend: bool = True,
    ) -> None:
        """Add geometries (optionally (geometry, tooltip) pairs)."""
        style = style or LayerStyle()
        normalised: List[Tuple[Geometry, Optional[str]]] = []
        for feature in features:
            if isinstance(feature, tuple):
                geometry, tooltip = feature
                normalised.append((geometry, str(tooltip)))
            else:
                normalised.append((feature, None))
        if not normalised:
            raise ReproError(f"layer {name!r} has no features")
        self._layers.append(_VectorLayer(name, normalised, style))
        if legend:
            self._legend.append((style.fill, name))

    def add_raster_layer(
        self,
        name: str,
        grid: RasterGrid,
        palette: Optional[ClassPalette] = None,
        opacity: float = 0.9,
        max_cells: int = 64,
        legend: bool = True,
    ) -> None:
        """Add a class-map raster (band 0 holds integer class values).

        Rasters larger than ``max_cells`` per side are mode-downsampled so
        the SVG stays small.
        """
        if not 0.0 < opacity <= 1.0:
            raise ReproError("opacity must be in (0, 1]")
        palette = palette or ClassPalette()
        self._layers.append(_RasterLayer(name, grid, palette, opacity, max_cells))
        if legend:
            for value in np.unique(grid.band(0)).astype(int):
                self._legend.append((palette.color(value), palette.name(value)))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def extent(self) -> BoundingBox:
        boxes: List[BoundingBox] = []
        for layer in self._layers:
            if isinstance(layer, _VectorLayer):
                boxes.extend(g.bbox for g, _ in layer.features)
            else:
                boxes.append(layer.grid.bbox)
        if not boxes:
            raise ReproError("map has no layers")
        return BoundingBox.union_all(boxes)

    def render(self, extent: Optional[BoundingBox] = None) -> str:
        extent = extent or self.extent()
        canvas = SVGCanvas(extent, self.width, self.height)
        for layer in self._layers:
            if isinstance(layer, _RasterLayer):
                self._render_raster(canvas, layer)
            else:
                for geometry, tooltip in layer.features:
                    canvas.draw_geometry(geometry, layer.style, tooltip)
        if self.title:
            canvas.draw_text(10, 18, self.title, size=14)
        for index, (color, label) in enumerate(self._legend):
            canvas.draw_legend_swatch(10, 30 + index * 18, color, label)
        return canvas.render()

    @staticmethod
    def _render_raster(canvas: SVGCanvas, layer: _RasterLayer) -> None:
        grid = layer.grid
        factor = max(
            1,
            (grid.height + layer.max_cells - 1) // layer.max_cells,
            (grid.width + layer.max_cells - 1) // layer.max_cells,
        )
        if factor > 1:
            grid = grid.resample(factor, method="mode")
        band = grid.band(0)
        size = grid.transform.pixel_size
        for row in range(grid.height):
            for col in range(grid.width):
                x = grid.transform.origin_x + col * size
                y = grid.transform.origin_y - (row + 1) * size
                canvas.draw_rect(
                    x, y, x + size, y + size,
                    fill=layer.palette.color(int(band[row, col])),
                    opacity=layer.opacity,
                )

    def save(self, path: str, extent: Optional[BoundingBox] = None) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render(extent))


def sparql_layer(
    store: GeoStore,
    query: str,
    geometry_variable: str = "wkt",
    label_variable: Optional[str] = None,
) -> List[Tuple[Geometry, str]]:
    """Run a SPARQL query and collect (geometry, tooltip) features.

    Solutions must bind ``geometry_variable`` to a ``geo:wktLiteral``;
    ``label_variable`` (if given) provides the tooltip.
    """
    solutions = store.query(query)
    if isinstance(solutions, bool):
        raise ReproError("sparql_layer needs a SELECT query")
    geometry_var = Variable(geometry_variable)
    label_var = Variable(label_variable) if label_variable else None
    features: List[Tuple[Geometry, str]] = []
    for solution in solutions:
        term = solution.get(geometry_var)
        if term is None or not is_geometry_literal(term):
            continue
        label = ""
        if label_var is not None and label_var in solution:
            label = str(solution[label_var])
        features.append((literal_geometry(term), label))
    if not features:
        raise ReproError("query returned no geometry bindings")
    return features
