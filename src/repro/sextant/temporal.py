"""Temporal snapshots: maps of time-evolving linked data."""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geometry import Geometry
from repro.geosparql.literals import is_geometry_literal, literal_geometry
from repro.geosparql.store import GeoStore
from repro.geosparql.temporal import is_temporal_literal, literal_period, period_overlaps
from repro.sextant.map import SextantMap
from repro.sextant.style import LayerStyle
from repro.sparql import Variable


def temporal_frames(
    store: GeoStore,
    query: str,
    instants: Sequence[str],
    geometry_variable: str = "wkt",
    time_variable: str = "t",
    label_variable: Optional[str] = None,
    style: Optional[LayerStyle] = None,
    width: int = 600,
    height: int = 600,
    window_days: float = 0.0,
) -> List[Tuple[str, str]]:
    """Render one SVG frame per instant showing the features valid then.

    The query must bind ``geometry_variable`` to a wktLiteral and
    ``time_variable`` to a temporal literal (period or instant). A frame at
    instant *i* shows features whose validity overlaps ``[i, i +
    window_days)`` — use a non-zero window when features carry instant
    timestamps (acquisitions) rather than periods. Returns
    ``[(instant, svg), ...]``; all frames share the same extent so the
    sequence animates cleanly.
    """
    if not instants:
        raise ReproError("need at least one instant")
    if window_days < 0:
        raise ReproError("window_days must be non-negative")
    solutions = store.query(query)
    if isinstance(solutions, bool):
        raise ReproError("temporal_frames needs a SELECT query")

    geometry_var = Variable(geometry_variable)
    time_var = Variable(time_variable)
    label_var = Variable(label_variable) if label_variable else None
    features: List[Tuple[Geometry, Tuple[datetime, datetime], str]] = []
    for solution in solutions:
        geometry_term = solution.get(geometry_var)
        time_term = solution.get(time_var)
        if geometry_term is None or time_term is None:
            continue
        if not is_geometry_literal(geometry_term) or not is_temporal_literal(time_term):
            continue
        label = ""
        if label_var is not None and label_var in solution:
            label = str(solution[label_var])
        features.append(
            (literal_geometry(geometry_term), literal_period(time_term), label)
        )
    if not features:
        raise ReproError("query returned no spatiotemporal bindings")

    # Shared extent over all features, so frames align.
    from repro.geometry import BoundingBox

    extent = BoundingBox.union_all(g.bbox for g, _, _ in features)

    from datetime import timedelta

    frames: List[Tuple[str, str]] = []
    for instant_text in instants:
        instant = datetime.fromisoformat(instant_text)
        frame_period = (instant, instant + timedelta(days=window_days))
        valid = [
            (geometry, label)
            for geometry, period, label in features
            if period_overlaps(frame_period, period)
        ]
        frame_map = SextantMap(width=width, height=height, title=instant_text)
        if valid:
            frame_map.add_vector_layer("valid", valid, style=style)
            frames.append((instant_text, frame_map.render(extent)))
        else:
            # An empty frame: render just the canvas at the shared extent.
            empty = SextantMap(width=width, height=height, title=instant_text)
            empty.add_vector_layer(
                "extent",
                [_extent_outline(extent)],
                style=LayerStyle(fill="none", fill_opacity=0.0, stroke="#dddddd"),
                legend=False,
            )
            frames.append((instant_text, empty.render(extent)))
    return frames


def _extent_outline(extent) -> Geometry:
    from repro.geometry import Polygon

    if extent.width == 0 or extent.height == 0:
        extent = extent.expand(max(extent.width, extent.height, 1.0) * 0.05)
    return Polygon.box(extent.min_x, extent.min_y, extent.max_x, extent.max_y)
