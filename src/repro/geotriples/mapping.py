"""R2RML-lite mapping model.

A :class:`TriplesMap` describes how one record stream becomes RDF:

* a **subject template** like ``http://ex.org/field/{id}`` filled from record
  attributes,
* an optional rdf:type,
* a list of :class:`ObjectMap` entries producing one predicate-object pair
  each — from a column (typed literal), a template (IRI), a constant, or a
  geometry column (emitted as the GeoSPARQL ``geo:hasGeometry`` /
  ``geo:asWKT`` pattern).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import MappingError

_TEMPLATE_VAR = re.compile(r"\{([A-Za-z_][A-Za-z0-9_]*)\}")


def template_variables(template: str) -> List[str]:
    """Attribute names referenced by a ``{name}`` template."""
    return _TEMPLATE_VAR.findall(template)


def expand_template(template: str, record: Dict[str, Any]) -> str:
    """Fill a template from a record; missing attributes raise MappingError."""

    def replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in record:
            raise MappingError(f"record missing attribute {name!r} for template {template!r}")
        return str(record[name])

    return _TEMPLATE_VAR.sub(replace, template)


@dataclass(frozen=True)
class ObjectMap:
    """One predicate-object rule. Exactly one source must be set."""

    predicate: str
    column: Optional[str] = None
    template: Optional[str] = None
    constant: Optional[str] = None
    is_geometry: bool = False
    datatype: Optional[str] = None
    language: Optional[str] = None

    def __post_init__(self) -> None:
        sources = [
            s for s in (self.column, self.template, self.constant) if s is not None
        ]
        if len(sources) != 1:
            raise MappingError(
                f"ObjectMap for {self.predicate!r} must set exactly one of "
                "column/template/constant"
            )
        if self.is_geometry and self.column is None:
            raise MappingError("geometry object maps must use a column source")
        if self.datatype is not None and self.language is not None:
            raise MappingError("object map cannot set both datatype and language")


@dataclass
class TriplesMap:
    """A mapping from one logical source to RDF."""

    subject_template: str
    type_iri: Optional[str] = None
    object_maps: List[ObjectMap] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not template_variables(self.subject_template) and "{" in self.subject_template:
            raise MappingError(
                f"malformed subject template {self.subject_template!r}"
            )
        if not self.subject_template.startswith("http"):
            raise MappingError("subject template must produce HTTP IRIs")

    def add(self, object_map: ObjectMap) -> "TriplesMap":
        """Append an object map (chainable)."""
        self.object_maps.append(object_map)
        return self

    @property
    def geometry_maps(self) -> List[ObjectMap]:
        return [m for m in self.object_maps if m.is_geometry]
