"""GeoTriples: transforming geospatial data into RDF graphs.

Re-implementation of the algorithmic core of GeoTriples [16] ("Transforming
geospatial data into RDF graphs using R2RML and RML mappings"): declarative
mappings from record streams (rows/features with attributes and geometries)
to RDF triples, following the GeoSPARQL feature/geometry modelling pattern.
"""

from repro.geotriples.mapping import ObjectMap, TriplesMap
from repro.geotriples.transform import transform_records, transform_to_store

__all__ = [
    "ObjectMap",
    "TriplesMap",
    "transform_records",
    "transform_to_store",
]
