"""Executing mappings over record streams."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional

from repro.errors import MappingError
from repro.geometry.primitives import Geometry
from repro.geosparql.literals import geometry_literal
from repro.geosparql.store import GeoStore
from repro.rdf.namespace import GEO, RDF
from repro.rdf.term import IRI, Literal, Triple, make_triple
from repro.geotriples.mapping import ObjectMap, TriplesMap, expand_template


def transform_records(
    records: Iterable[Dict[str, Any]], mapping: TriplesMap
) -> Iterator[Triple]:
    """Apply *mapping* to each record, yielding RDF triples.

    Geometry columns must hold :class:`~repro.geometry.primitives.Geometry`
    values; they are emitted via the GeoSPARQL pattern::

        <feature> geo:hasGeometry <feature/geom> .
        <feature/geom> geo:asWKT "..."^^geo:wktLiteral .
    """
    for record in records:
        subject = IRI(expand_template(mapping.subject_template, record))
        if mapping.type_iri is not None:
            yield make_triple(subject, RDF.type, IRI(mapping.type_iri))
        for object_map in mapping.object_maps:
            yield from _apply_object_map(subject, object_map, record)


def _apply_object_map(
    subject: IRI, object_map: ObjectMap, record: Dict[str, Any]
) -> Iterator[Triple]:
    predicate = IRI(object_map.predicate)
    if object_map.is_geometry:
        value = record.get(object_map.column)
        if value is None:
            return
        if not isinstance(value, Geometry):
            raise MappingError(
                f"geometry column {object_map.column!r} holds "
                f"{type(value).__name__}, expected Geometry"
            )
        geometry_iri = IRI(f"{subject.value}/geom")
        yield make_triple(subject, GEO.hasGeometry, geometry_iri)
        yield make_triple(geometry_iri, GEO.asWKT, geometry_literal(value))
        return
    if object_map.constant is not None:
        yield make_triple(subject, predicate, _constant_term(object_map.constant))
        return
    if object_map.template is not None:
        yield make_triple(
            subject, predicate, IRI(expand_template(object_map.template, record))
        )
        return
    value = record.get(object_map.column)
    if value is None:
        return  # nullable column: no triple
    yield make_triple(subject, predicate, _literal_from(value, object_map))


def _constant_term(constant: str):
    if constant.startswith("http://") or constant.startswith("https://"):
        return IRI(constant)
    return Literal(constant)


def _literal_from(value: Any, object_map: ObjectMap) -> Literal:
    if object_map.datatype is not None:
        return Literal(str(value), datatype=object_map.datatype)
    if object_map.language is not None:
        return Literal(str(value), language=object_map.language)
    if isinstance(value, (bool, int, float)):
        return Literal.from_python(value)
    return Literal(str(value))


def transform_to_store(
    records: Iterable[Dict[str, Any]],
    mapping: TriplesMap,
    store: Optional[GeoStore] = None,
) -> GeoStore:
    """Run a mapping and load the result into a (new) GeoStore."""
    if store is None:
        store = GeoStore()
    store.bulk_load(transform_records(records, mapping))
    return store
