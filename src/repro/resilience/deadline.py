"""Request deadlines: one time budget propagated end-to-end.

A :class:`Deadline` is created once at the edge of the serving path (one per
query/request) and handed down through every layer that does work on its
behalf — catalog -> federation executor -> endpoint, HopsFS filesystem ->
kvstore — so a single slow shard or flapping endpoint cannot silently consume
the whole request's time. Layers interact with it two ways:

* **clocked** deadlines watch a clock callable (``time.monotonic``, or a
  simulation's ``lambda: sim.now``): elapsed time accrues on its own;
* **charged** deadlines (no clock) are advanced explicitly by the simulated
  costs each layer already computes — the KV store charges its per-op
  latency, :class:`~repro.faults.RetryPolicy` charges its backoff waits.

Both kinds answer :meth:`remaining`/:meth:`check` identically, so downstream
code never cares which flavour it was handed. ``check()`` raises the shared
:class:`~repro.errors.TimeoutExceeded`, which the rest of the fault stack
already understands (retryable, counts as a transient terminal failure —
it never marks an endpoint dead).

:data:`NO_DEADLINE` is the shared null object: infinite budget, ``charge``
is a no-op, ``check`` never raises. Subsystems accept
``deadline: Optional[Deadline] = None`` and skip all deadline logic when
unset, keeping the disabled path byte-identical to pre-resilience code.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import FaultError, TimeoutExceeded


class Deadline:
    """A finite time budget for one request.

    ``budget_s`` is the total allowance; ``clock`` (optional) is the time
    source the deadline watches. With no clock, only explicit
    :meth:`charge` calls consume budget — the mode the simulated stores
    use, where cost is computed rather than measured.
    """

    __slots__ = ("budget_s", "label", "_clock", "_started_at", "_charged_s")

    def __init__(
        self,
        budget_s: float,
        clock: Optional[Callable[[], float]] = None,
        label: str = "request",
    ):
        if budget_s < 0:
            raise FaultError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = budget_s
        self.label = label
        self._clock = clock
        self._started_at = clock() if clock is not None else 0.0
        self._charged_s = 0.0

    # ------------------------------------------------------------------
    # Budget accounting
    # ------------------------------------------------------------------

    @property
    def clocked(self) -> bool:
        """True when a clock drives this deadline (charges still count)."""
        return self._clock is not None

    def elapsed(self) -> float:
        """Time consumed so far: clock drift (if clocked) plus charges."""
        drift = self._clock() - self._started_at if self._clock else 0.0
        return drift + self._charged_s

    def remaining(self) -> float:
        """Budget left; never negative (an expired deadline reports 0)."""
        return max(0.0, self.budget_s - self.elapsed())

    @property
    def expired(self) -> bool:
        return self.elapsed() > self.budget_s

    def charge(self, seconds: float) -> None:
        """Consume *seconds* of budget explicitly (simulated work)."""
        if seconds < 0:
            raise FaultError(f"cannot charge negative time ({seconds})")
        self._charged_s += seconds

    def check(self, what: str = "") -> None:
        """Raise :class:`TimeoutExceeded` if the budget is gone.

        Layers call this *before* starting a unit of work, so a request
        that is already out of time fails fast instead of doing work whose
        result nobody is waiting for.
        """
        if self.expired:
            where = f" at {what}" if what else ""
            raise TimeoutExceeded(
                f"deadline for {self.label} exceeded{where}: "
                f"{self.elapsed():.6g}s elapsed of {self.budget_s:.6g}s budget"
            )

    def allows(self, seconds: float) -> bool:
        """Would spending *seconds* more still fit in the budget?"""
        return self.elapsed() + seconds <= self.budget_s

    def derive(self, budget_s: float, label: Optional[str] = None) -> "Deadline":
        """A child deadline capped at *budget_s*, never wider than this one.

        The child shares the parent's clock (and so its notion of time) but
        accounts independently: the E23 governor uses this to narrow a
        tenant's remaining request deadline down to the per-execution cap
        without letting a generous cap extend an almost-expired request.
        """
        return Deadline(
            min(self.remaining(), budget_s),
            clock=self._clock,
            label=label if label is not None else self.label,
        )

    def __repr__(self) -> str:
        return (
            f"Deadline({self.label!r}, budget={self.budget_s:.6g}s, "
            f"remaining={self.remaining():.6g}s)"
        )


class _NoDeadline(Deadline):
    """The shared disabled default: an infinite, incorruptible budget."""

    __slots__ = ()

    def __init__(self):
        super().__init__(math.inf, clock=None, label="none")

    def charge(self, seconds: float) -> None:
        pass

    def check(self, what: str = "") -> None:
        pass

    @property
    def expired(self) -> bool:
        return False

    def allows(self, seconds: float) -> bool:
        return True


#: Shared null deadline — never expires, charging it is a no-op.
NO_DEADLINE = _NoDeadline()
