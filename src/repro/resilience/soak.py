"""Deterministic chaos soak: the resilience layer under sustained abuse.

A self-contained serving simulation — ``servers`` workers draining a FIFO
queue of requests against named backends — driven for a long, seeded
schedule of misbehaviour from an extended :class:`~repro.faults.FaultPlan`:

* **endpoint flaps** (:class:`~repro.faults.EndpointFlap`) take backends
  down for sim-time windows; an unprotected server burns the full request
  timeout discovering this, a protected one trips the backend's circuit
  breaker and fails the rest of the window fast;
* **overload bursts** (:class:`~repro.faults.OverloadBurst`) multiply the
  arrival rate; an unprotected queue grows without bound and every request
  in it goes stale, a protected admission controller sheds the excess
  (batch traffic first) at the door;
* per-request **deadlines** (:class:`~repro.resilience.Deadline` on the
  sim clock) let the protected side drop queued work that already expired
  instead of serving answers nobody is waiting for.

Everything is deterministic: arrivals, priorities and backend choices come
from seeded streams, the fault schedule is a pure function of the seed, and
the discrete-event clock (:class:`~repro.cluster.simclock.Simulation`)
replaces wall time. Running the same :class:`SoakConfig` twice yields the
same :class:`SoakReport`, bit for bit — which is what lets CI run a short
soak as a regression gate.

The report's :meth:`SoakReport.verify` checks the liveness and accounting
invariants the soak exists to prove: every arrival is accounted for in
exactly one terminal state, no admission ticket leaks, the queue drains,
and the simulation terminates.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster.simclock import Simulation
from repro.errors import CircuitOpen, FaultError
from repro.faults.injector import (
    EndpointFlap,
    FaultInjector,
    FaultPlan,
    OverloadBurst,
)
from repro.obs import Observability, resolve
from repro.resilience.admission import (
    AdmissionController,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
)
from repro.resilience.breaker import CircuitBreakerSet, _derive_seed
from repro.resilience.deadline import Deadline


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's knobs. The defaults describe a cluster that is
    healthy at the base arrival rate and melts under the chaos plan."""

    seed: int = 0
    requests: int = 1200
    backends: int = 4
    servers: int = 8
    arrival_rate: float = 60.0  #: base requests/s, before burst multipliers
    service_time_s: float = 0.1  #: a healthy backend's service time
    timeout_s: float = 1.0  #: time burned discovering a dead backend
    deadline_s: float = 0.5  #: per-request latency target
    batch_fraction: float = 0.4  #: share of arrivals in the batch class
    #: chaos shape (consumed by :func:`soak_plan`)
    flaps_per_backend: int = 3
    flap_down_s: float = 2.0
    burst_count: int = 3
    burst_duration_s: float = 3.0
    burst_factor: float = 5.0

    def __post_init__(self) -> None:
        if self.requests < 1 or self.backends < 1 or self.servers < 1:
            raise FaultError("soak needs >= 1 request, backend and server")
        if min(self.arrival_rate, self.service_time_s, self.timeout_s,
               self.deadline_s) <= 0:
            raise FaultError("soak rates and times must be positive")
        if not 0.0 <= self.batch_fraction <= 1.0:
            raise FaultError("batch_fraction must be in [0, 1]")

    def backend_names(self) -> Tuple[str, ...]:
        return tuple(f"backend-{i}" for i in range(self.backends))


def soak_plan(config: SoakConfig) -> FaultPlan:
    """The seeded chaos schedule: flapping backends + demand bursts.

    A pure function of the config — the soak's one source of randomness
    besides the workload streams, fully consumed here.
    """
    rng = random.Random(_derive_seed(config.seed, "soak-plan"))
    horizon = config.requests / config.arrival_rate
    flaps = []
    for name in config.backend_names():
        for _ in range(config.flaps_per_backend):
            down = rng.uniform(0.0, max(horizon - config.flap_down_s, 0.1))
            flaps.append(
                EndpointFlap(name, down, down + config.flap_down_s)
            )
    bursts = []
    for _ in range(config.burst_count):
        start = rng.uniform(0.0, max(horizon - config.burst_duration_s, 0.1))
        bursts.append(
            OverloadBurst(start, config.burst_duration_s, config.burst_factor)
        )
    return FaultPlan(
        seed=config.seed,
        endpoint_flaps=tuple(flaps),
        overload_bursts=tuple(bursts),
    )


@dataclass
class SoakReport:
    """Outcome of one soak run; every arrival lands in exactly one bucket."""

    protected: bool
    arrivals: int = 0
    ok: int = 0  #: completed within the deadline (goodput)
    late: int = 0  #: completed, but past the deadline
    failed: int = 0  #: backend down (burned timeout) or breaker fast-fail
    shed: int = 0  #: rejected at admission
    expired: int = 0  #: dropped from the queue, deadline already gone
    fast_failures: int = 0  #: the failed subset rejected by an open breaker
    duration_s: float = 0.0
    events_processed: int = 0
    breaker_opens: int = 0
    breaker_rejections: int = 0
    admission_high_water: int = 0
    latencies_s: List[float] = field(default_factory=list)
    #: set by verify(): leftover queue/servers/tickets at the end of the run
    residual: Dict[str, int] = field(default_factory=dict)

    @property
    def goodput(self) -> float:
        """Requests served within deadline per second of simulated time."""
        if self.duration_s <= 0:
            return 0.0
        return self.ok / self.duration_s

    def latency_percentile(self, q: float) -> float:
        """Percentile over *completed* request latencies (ok + late)."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(0.99)

    def verify(self) -> None:
        """Raise :class:`FaultError` on any liveness/accounting violation."""
        accounted = self.ok + self.late + self.failed + self.shed + self.expired
        if accounted != self.arrivals:
            raise FaultError(
                f"soak accounting leak: {self.arrivals} arrivals but "
                f"{accounted} terminal outcomes"
            )
        if len(self.latencies_s) != self.ok + self.late:
            raise FaultError("latency samples disagree with completions")
        for name, value in self.residual.items():
            if value != 0:
                raise FaultError(f"soak did not drain: {name}={value}")
        if self.events_processed < self.arrivals:
            raise FaultError("simulation ended before processing arrivals")

    def summary(self) -> Dict[str, float]:
        return {
            "protected": float(self.protected),
            "arrivals": float(self.arrivals),
            "ok": float(self.ok),
            "late": float(self.late),
            "failed": float(self.failed),
            "shed": float(self.shed),
            "expired": float(self.expired),
            "goodput_rps": self.goodput,
            "p99_latency_s": self.p99_latency_s,
            "breaker_opens": float(self.breaker_opens),
            "duration_s": self.duration_s,
        }


@dataclass
class _Request:
    index: int
    arrived_at: float
    backend: str
    priority: int
    deadline: Optional[Deadline]
    ticket: object = None


class _Soak:
    """One run of the serving simulation (protected or bare)."""

    def __init__(self, config: SoakConfig, protected: bool,
                 obs: Optional[Observability] = None):
        self.config = config
        self.protected = protected
        self.obs = resolve(obs)
        self.sim = Simulation()
        self.injector = FaultInjector(soak_plan(config))
        self.queue: Deque[_Request] = deque()
        self.free_servers = config.servers
        self.report = SoakReport(protected=protected)
        if protected:
            self.admission: Optional[AdmissionController] = AdmissionController(
                max_in_flight=config.servers,
                max_queue=4 * config.servers,
                priority_floor=PRIORITY_INTERACTIVE,
                scope="soak",
                obs=obs,
            )
            self.breakers: Optional[CircuitBreakerSet] = CircuitBreakerSet(
                clock=lambda: self.sim.now,
                seed=_derive_seed(config.seed, "soak-breakers"),
                obs=obs,
                failure_threshold=3,
                window=8,
                recovery_time_s=config.flap_down_s / 2.0,
                half_open_probes=1,
                probe_admit=0.5,
            )
        else:
            self.admission = None
            self.breakers = None

    # ------------------------------------------------------------------
    # Workload generation
    # ------------------------------------------------------------------

    def _arrival_times(self) -> List[float]:
        """Exponential interarrivals, inflated inside overload bursts."""
        rng = random.Random(_derive_seed(self.config.seed, "soak-arrivals"))
        times: List[float] = []
        now = 0.0
        for _ in range(self.config.requests):
            rate = self.config.arrival_rate * self.injector.arrival_multiplier(
                now
            )
            now += rng.expovariate(rate)
            times.append(now)
        return times

    def _requests(self) -> List[_Request]:
        rng = random.Random(_derive_seed(self.config.seed, "soak-requests"))
        backends = self.config.backend_names()
        requests = []
        for index, at_s in enumerate(self._arrival_times()):
            requests.append(
                _Request(
                    index=index,
                    arrived_at=at_s,
                    backend=backends[rng.randrange(len(backends))],
                    priority=(
                        PRIORITY_BATCH
                        if rng.random() < self.config.batch_fraction
                        else PRIORITY_INTERACTIVE
                    ),
                    deadline=None,
                )
            )
        return requests

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def run(self) -> SoakReport:
        for request in self._requests():
            self.sim.schedule_at(
                request.arrived_at,
                lambda request=request: self._arrive(request),
            )
        self.sim.run()
        report = self.report
        report.duration_s = self.sim.now
        report.events_processed = self.sim.events_processed
        if self.breakers is not None:
            report.breaker_opens = self.breakers.total_opens()
            report.breaker_rejections = self.breakers.total_rejections()
        if self.admission is not None:
            report.admission_high_water = self.admission.high_water
            report.residual["admission_in_flight"] = self.admission.in_flight
        report.residual["queued"] = len(self.queue)
        report.residual["busy_servers"] = (
            self.config.servers - self.free_servers
        )
        return report

    def _arrive(self, request: _Request) -> None:
        self.report.arrivals += 1
        if self.admission is not None:
            request.ticket = self.admission.try_admit(request.priority)
            if request.ticket is None:
                self.report.shed += 1
                return
            request.deadline = Deadline(
                self.config.deadline_s,
                clock=lambda: self.sim.now,
                label=f"request-{request.index}",
            )
        self.queue.append(request)
        self._drain()

    def _drain(self) -> None:
        while self.free_servers > 0 and self.queue:
            request = self.queue.popleft()
            if request.deadline is not None and request.deadline.expired:
                # Stale before service even began: drop it for free instead
                # of burning a server on an answer nobody is waiting for.
                self.report.expired += 1
                self._settle(request)
                continue
            if self.breakers is not None:
                breaker = self.breakers.for_key(request.backend)
                try:
                    breaker.before_call()
                except CircuitOpen:
                    self.report.failed += 1
                    self.report.fast_failures += 1
                    self._settle(request)
                    continue
            self._serve(request)

    def _serve(self, request: _Request) -> None:
        self.free_servers -= 1
        down = self.injector.endpoint_down_at(request.backend, self.sim.now)
        busy = self.config.timeout_s if down else self.config.service_time_s
        self.sim.schedule(
            busy, lambda: self._finish(request, failed=down)
        )

    def _finish(self, request: _Request, failed: bool) -> None:
        self.free_servers += 1
        if self.breakers is not None:
            breaker = self.breakers.for_key(request.backend)
            if failed:
                breaker.record_failure()
            else:
                breaker.record_success()
        if failed:
            self.report.failed += 1
        else:
            latency = self.sim.now - request.arrived_at
            self.report.latencies_s.append(latency)
            if latency <= self.config.deadline_s:
                self.report.ok += 1
            else:
                self.report.late += 1
        self._settle(request)
        self._drain()

    def _settle(self, request: _Request) -> None:
        if request.ticket is not None:
            request.ticket.release()
            request.ticket = None


def run_soak(
    config: SoakConfig,
    protected: bool = True,
    obs: Optional[Observability] = None,
) -> SoakReport:
    """Run one deterministic soak; returns its verified-able report."""
    return _Soak(config, protected, obs=obs).run()


def main() -> int:  # pragma: no cover - exercised via CI smoke
    """Quickstart entry point: ``python -m repro.resilience.soak``."""
    config = SoakConfig()
    for protected in (False, True):
        report = run_soak(config, protected=protected)
        report.verify()
        label = "protected" if protected else "unprotected"
        print(f"[{label}] " + " ".join(
            f"{key}={value:.4g}" for key, value in report.summary().items()
            if key != "protected"
        ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
