"""Overload resilience: deadlines, circuit breakers, admission control (E18).

The fault layer (:mod:`repro.faults`, experiment E17) makes individual
failures survivable; this package makes *overload* survivable — the regime
where nothing is broken but demand exceeds capacity and naive systems melt
into metastable failure (every request admitted, every request too late).
Three cooperating mechanisms, each following the repo's disabled-by-default
contract (optional argument, shared null object, byte-identical path when
unset):

* :class:`~repro.resilience.deadline.Deadline` — one end-to-end time
  budget per request, propagated catalog -> federation executor ->
  endpoint and HopsFS filesystem -> kvstore; clocked (watches a clock
  callable) or charge-driven (advanced by simulated costs). Expiry raises
  the stack's existing :class:`~repro.errors.TimeoutExceeded`.
* :class:`~repro.resilience.breaker.CircuitBreaker` /
  :class:`~repro.resilience.breaker.CircuitBreakerSet` — deterministic
  three-state breakers (closed/open/half-open, rolling failure window,
  seeded half-open probes) per federation endpoint and per kvstore shard,
  failing fast with :class:`~repro.errors.CircuitOpen`.
* :class:`~repro.resilience.admission.AdmissionController` — a bulkhead
  with priority-classed load shedding
  (:class:`~repro.errors.Overloaded`) guarding the catalog service, the
  federation executor, and scheduler submission.

:mod:`repro.resilience.soak` drives all three through a long, seeded chaos
schedule (flapping backends, overload bursts) and checks the liveness and
accounting invariants; ``python -m repro.resilience.soak`` prints the
protected-vs-unprotected comparison, and benchmark E18 measures it.
"""

from repro.errors import CircuitOpen, Overloaded
from repro.resilience.admission import (
    NULL_ADMISSION,
    PRIORITY_BATCH,
    PRIORITY_INTERACTIVE,
    AdmissionController,
    AdmissionTicket,
)
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    NULL_BREAKER,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
    CircuitBreakerSet,
)
from repro.resilience.deadline import NO_DEADLINE, Deadline
from repro.resilience.soak import SoakConfig, SoakReport, run_soak, soak_plan

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "CLOSED",
    "CircuitBreaker",
    "CircuitBreakerSet",
    "CircuitOpen",
    "Deadline",
    "HALF_OPEN",
    "NO_DEADLINE",
    "NULL_ADMISSION",
    "NULL_BREAKER",
    "OPEN",
    "Overloaded",
    "PRIORITY_BATCH",
    "PRIORITY_INTERACTIVE",
    "STATE_CODES",
    "SoakConfig",
    "SoakReport",
    "run_soak",
    "soak_plan",
]
