"""Admission control: a bulkhead with priority-classed load shedding.

An :class:`AdmissionController` bounds how much work a serving component
(the catalog service, the federation executor, the scheduler's submission
path) accepts at once. Capacity has two tiers:

* up to ``max_in_flight`` admissions run in the *fast* region — everything
  is admitted;
* between ``max_in_flight`` and ``max_in_flight + max_queue`` the
  controller is *under pressure*: only requests whose priority class is at
  least ``priority_floor`` are admitted (the queue is reserved for traffic
  worth waiting for), lower classes are shed with a retryable
  :class:`~repro.errors.Overloaded`;
* at full capacity everything is shed.

Shedding early and cheaply is the point: a shed request costs microseconds
and tells the client to back off, while an admitted-then-timed-out request
burns a server for its whole deadline — the metastable-overload failure
mode this layer exists to prevent.

Priorities are small ints, higher = more important; the conventional
classes are :data:`PRIORITY_BATCH` (0) and :data:`PRIORITY_INTERACTIVE`
(1). The controller is deliberately clock-free and deterministic: it is a
pair of counters plus a policy, usable both from synchronous code (nested
``with controller.admit():`` blocks) and from discrete-event simulations
(admit at the arrival event, release at the terminal event).

:data:`NULL_ADMISSION` is the shared disabled default — it admits
everything and keeps no state, so subsystems accepting
``admission: Optional[AdmissionController] = None`` stay byte-identical
when the argument is unset.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FaultError, Overloaded
from repro.obs import Observability, resolve

PRIORITY_BATCH = 0
PRIORITY_INTERACTIVE = 1


class AdmissionTicket:
    """Proof of admission; release it exactly once (context manager)."""

    __slots__ = ("_controller", "priority", "_released")

    def __init__(self, controller: Optional["AdmissionController"], priority: int):
        self._controller = controller
        self.priority = priority
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        if self._controller is not None:
            self._controller._release(self)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


#: Shared pre-released ticket handed out by the null controller.
_NULL_TICKET = AdmissionTicket(None, PRIORITY_INTERACTIVE)


class AdmissionController:
    """The bulkhead guarding one serving component."""

    def __init__(
        self,
        max_in_flight: int = 64,
        max_queue: int = 64,
        priority_floor: int = PRIORITY_INTERACTIVE,
        scope: str = "default",
        obs: Optional[Observability] = None,
    ):
        if max_in_flight < 1:
            raise FaultError("max_in_flight must be >= 1")
        if max_queue < 0:
            raise FaultError("max_queue must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.priority_floor = priority_floor
        self.scope = scope
        self._obs = resolve(obs)
        self._in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.high_water = 0
        self._gauge = self._obs.metrics.gauge(
            "resilience.in_flight", scope=scope
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def capacity(self) -> int:
        return self.max_in_flight + self.max_queue

    @property
    def under_pressure(self) -> bool:
        return self._in_flight >= self.max_in_flight

    def admit(self, priority: int = PRIORITY_INTERACTIVE) -> AdmissionTicket:
        """Admit one request or raise :class:`Overloaded` (shed)."""
        if self._in_flight >= self.capacity:
            self._shed(priority, "capacity")
        if self.under_pressure and priority < self.priority_floor:
            self._shed(priority, "pressure")
        self._in_flight += 1
        self.admitted += 1
        self.high_water = max(self.high_water, self._in_flight)
        self._gauge.set(self._in_flight)
        self._obs.metrics.counter(
            "resilience.admitted", scope=self.scope, priority=priority
        ).inc()
        return AdmissionTicket(self, priority)

    def try_admit(
        self, priority: int = PRIORITY_INTERACTIVE
    ) -> Optional[AdmissionTicket]:
        """Like :meth:`admit` but returns None instead of raising."""
        try:
            return self.admit(priority)
        except Overloaded:
            return None

    def _shed(self, priority: int, reason: str) -> None:
        self.shed += 1
        self._obs.metrics.counter(
            "resilience.shed", scope=self.scope, priority=priority,
            reason=reason,
        ).inc()
        raise Overloaded(
            f"{self.scope} overloaded ({reason}): {self._in_flight} in flight "
            f"of {self.capacity} capacity",
            scope=self.scope,
            priority=priority,
            reason=reason,
        )

    def _release(self, ticket: AdmissionTicket) -> None:
        if self._in_flight <= 0:
            raise FaultError(
                f"{self.scope}: release without a matching admission"
            )
        self._in_flight -= 1
        self._gauge.set(self._in_flight)

    def __repr__(self) -> str:
        return (
            f"AdmissionController({self.scope!r}, in_flight={self._in_flight}/"
            f"{self.max_in_flight}+{self.max_queue}, admitted={self.admitted}, "
            f"shed={self.shed})"
        )


class _NullAdmission(AdmissionController):
    """The shared disabled controller: everything is admitted for free."""

    def __init__(self):
        super().__init__(scope="null")

    def admit(self, priority: int = PRIORITY_INTERACTIVE) -> AdmissionTicket:
        return _NULL_TICKET

    def try_admit(
        self, priority: int = PRIORITY_INTERACTIVE
    ) -> Optional[AdmissionTicket]:
        return _NULL_TICKET

    def _release(self, ticket: AdmissionTicket) -> None:
        pass


#: Shared null controller — admits everything, sheds nothing.
NULL_ADMISSION = _NullAdmission()
