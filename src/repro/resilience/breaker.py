"""Deterministic circuit breakers: fail fast instead of hammering.

A :class:`CircuitBreaker` guards one dependency (a federation endpoint, a
metadata shard) with the classic three-state machine:

* **closed** — calls flow through; outcomes land in a rolling window, and
  ``failure_threshold`` failures within the last ``window`` calls trip the
  breaker open;
* **open** — every call raises :class:`~repro.errors.CircuitOpen`
  immediately (microseconds, not a burned timeout). After the recovery
  window — ``recovery_time_s`` on a clocked breaker, ``recovery_calls``
  rejected calls on an unclocked one — the breaker moves to half-open;
* **half-open** — a *seeded* trickle of probe calls is admitted (each
  arriving call is admitted with probability ``probe_admit``, drawn from
  the breaker's own ``random.Random(seed)`` stream, so two runs replay the
  same probe schedule). ``half_open_probes`` consecutive probe successes
  close the breaker; one probe failure re-opens it.

Determinism mirrors :mod:`repro.faults`: no wall-clock unless the caller
provides one, and every random draw comes from a seeded per-breaker stream.
:class:`CircuitBreakerSet` stamps out one breaker per key (endpoint name,
shard id) with stable per-key seeds derived from its base seed.

The disabled path is the usual null object: :data:`NULL_BREAKER` admits
everything and records nothing, and subsystems accept
``breakers: Optional[CircuitBreakerSet] = None``, skipping all breaker
logic when unset.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple, Type, TypeVar

from repro.errors import CircuitOpen, FaultError
from repro.obs import Observability, resolve

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker state (resilience.breaker_state).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


def _derive_seed(seed: int, key: object) -> int:
    """Stable per-key stream seed (same recipe as the fault injector)."""
    digest = hashlib.blake2b(
        f"{seed}:breaker:{key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class CircuitBreaker:
    """One dependency's three-state breaker."""

    def __init__(
        self,
        name: str = "default",
        failure_threshold: int = 5,
        window: int = 16,
        recovery_time_s: float = 30.0,
        recovery_calls: int = 16,
        half_open_probes: int = 2,
        probe_admit: float = 0.5,
        clock: Optional[Callable[[], float]] = None,
        seed: int = 0,
        failure_types: Tuple[Type[BaseException], ...] = (FaultError,),
        obs: Optional[Observability] = None,
    ):
        if failure_threshold < 1:
            raise FaultError("failure_threshold must be >= 1")
        if window < failure_threshold:
            raise FaultError("window must be >= failure_threshold")
        if recovery_time_s < 0 or recovery_calls < 1:
            raise FaultError("recovery window must be positive")
        if half_open_probes < 1:
            raise FaultError("half_open_probes must be >= 1")
        if not 0.0 < probe_admit <= 1.0:
            raise FaultError("probe_admit must be in (0, 1]")
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.recovery_time_s = recovery_time_s
        self.recovery_calls = recovery_calls
        self.half_open_probes = half_open_probes
        self.probe_admit = probe_admit
        self.failure_types = failure_types
        self._clock = clock
        self._rng = random.Random(seed)
        self._obs = resolve(obs)
        self._state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._rejections_while_open = 0
        self._probe_successes = 0
        self.opens = 0
        self.closes = 0
        self.rejections = 0
        self.probes = 0
        self._state_gauge = self._obs.metrics.gauge(
            "resilience.breaker_state", breaker=name
        )

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        # Unclocked breakers measure recovery in rejected calls instead.
        return float(self._rejections_while_open)

    def _transition(self, state: str) -> None:
        self._state = state
        self._state_gauge.set(STATE_CODES[state])

    def _trip_open(self) -> None:
        self.opens += 1
        self._opened_at = self._now()
        self._rejections_while_open = 0
        self._probe_successes = 0
        self._outcomes.clear()
        self._transition(OPEN)
        self._obs.metrics.counter(
            "resilience.breaker_opens", breaker=self.name
        ).inc()

    def _recovery_elapsed(self) -> bool:
        if self._clock is not None:
            return self._now() - self._opened_at >= self.recovery_time_s
        return self._rejections_while_open >= self.recovery_calls

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpen` when the breaker says no."""
        if self._state == OPEN:
            if self._recovery_elapsed():
                self._transition(HALF_OPEN)
                self._probe_successes = 0
            else:
                self._rejections_while_open += 1
                self._reject()
        if self._state == HALF_OPEN:
            if self._rng.random() < self.probe_admit:
                self.probes += 1
                self._obs.metrics.counter(
                    "resilience.breaker_probes", breaker=self.name
                ).inc()
                return
            self._reject()

    def _reject(self) -> None:
        self.rejections += 1
        self._obs.metrics.counter(
            "resilience.breaker_rejections", breaker=self.name
        ).inc()
        raise CircuitOpen(
            f"circuit breaker {self.name!r} is {self._state}", breaker=self.name
        )

    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self.closes += 1
                self._outcomes.clear()
                self._transition(CLOSED)
                self._obs.metrics.counter(
                    "resilience.breaker_closes", breaker=self.name
                ).inc()
            return
        if self._state == CLOSED:
            self._outcomes.append(False)

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            # One failed probe is proof enough: back to open, new window.
            self._trip_open()
            return
        if self._state == CLOSED:
            self._outcomes.append(True)
            if sum(self._outcomes) >= self.failure_threshold:
                self._trip_open()

    # ------------------------------------------------------------------
    # Convenience wrapper
    # ------------------------------------------------------------------

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker; failures of ``failure_types`` count."""
        self.before_call()
        try:
            result = fn()
        except self.failure_types:
            self.record_failure()
            raise
        self.record_success()
        return result

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self._state}, "
            f"opens={self.opens}, rejections={self.rejections})"
        )


class _NullBreaker(CircuitBreaker):
    """The shared disabled breaker: admits everything, records nothing."""

    def __init__(self):
        super().__init__(name="null")

    def before_call(self) -> None:
        pass

    def record_success(self) -> None:
        pass

    def record_failure(self) -> None:
        pass

    def call(self, fn: Callable[[], T]) -> T:
        return fn()


#: Shared null breaker — always closed, never trips.
NULL_BREAKER = _NullBreaker()


class CircuitBreakerSet:
    """A family of breakers, one per dependency key, sharing configuration.

    ``for_key(key)`` lazily creates (and memoises) the key's breaker with a
    stable derived seed, so endpoint "weather" probes on the same schedule
    in every run regardless of which other breakers exist.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        seed: int = 0,
        obs: Optional[Observability] = None,
        **breaker_kwargs,
    ):
        self._clock = clock
        self._seed = seed
        self._obs = obs
        self._kwargs = breaker_kwargs
        self._breakers: Dict[object, CircuitBreaker] = {}

    def for_key(self, key: object) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                name=str(key),
                clock=self._clock,
                seed=_derive_seed(self._seed, key),
                obs=self._obs,
                **self._kwargs,
            )
            self._breakers[key] = breaker
        return breaker

    def items(self):
        return self._breakers.items()

    def __len__(self) -> int:
        return len(self._breakers)

    def open_count(self) -> int:
        return sum(1 for b in self._breakers.values() if b.state == OPEN)

    def total_opens(self) -> int:
        return sum(b.opens for b in self._breakers.values())

    def total_rejections(self) -> int:
        return sum(b.rejections for b in self._breakers.values())
