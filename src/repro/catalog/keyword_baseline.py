"""The classic catalogue baseline: extent + parameters + keywords only.

This models what the paper says today's hubs offer — "access data by drawing
an area of interest on the map and specifying search parameters" — and
demonstrates the capability gap: knowledge queries raise
:class:`CapabilityError` because the information simply is not indexed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CatalogError
from repro.geometry import BoundingBox
from repro.raster.products import Product


class CapabilityError(CatalogError):
    """Raised when a query exceeds what a keyword catalogue can express."""


@dataclass(frozen=True)
class _Record:
    product_id: str
    mission: str
    product_type: str
    sensing_time: str
    bbox: BoundingBox
    keywords: Tuple[str, ...]


class KeywordCatalog:
    """A flat record list searched by extent, parameters, and keywords."""

    def __init__(self):
        self._records: List[_Record] = []

    def add_product(self, product: Product, keywords: Tuple[str, ...] = ()) -> None:
        self._records.append(
            _Record(
                product_id=product.product_id,
                mission=product.mission.value,
                product_type=product.product_type,
                sensing_time=product.sensing_time.isoformat(),
                bbox=product.footprint.bbox,
                keywords=tuple(k.lower() for k in keywords),
            )
        )

    def __len__(self) -> int:
        return len(self._records)

    def search(
        self,
        bbox: Optional[Tuple[float, float, float, float]] = None,
        start_time: Optional[str] = None,
        end_time: Optional[str] = None,
        mission: Optional[str] = None,
        product_type: Optional[str] = None,
        keyword: Optional[str] = None,
    ) -> List[str]:
        """Classic search; returns product ids."""
        window = BoundingBox(*bbox) if bbox is not None else None
        results = []
        for record in self._records:
            if mission is not None and record.mission != mission:
                continue
            if product_type is not None and record.product_type != product_type:
                continue
            if start_time is not None and record.sensing_time < start_time:
                continue
            if end_time is not None and record.sensing_time > end_time:
                continue
            if window is not None and not record.bbox.intersects(window):
                continue
            if keyword is not None and keyword.lower() not in record.keywords:
                continue
            results.append(record.product_id)
        return results

    def count_icebergs_embedded(self, region_name: str, year: int) -> int:
        """The semantic query the keyword catalogue cannot answer."""
        raise CapabilityError(
            "keyword catalogues index products, not extracted knowledge: "
            f"cannot count icebergs embedded in {region_name!r} in {year}"
        )
