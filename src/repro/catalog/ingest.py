"""Ingesting products and extracted knowledge into the catalogue store."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.catalog import model
from repro.errors import CatalogError
from repro.geometry.primitives import Geometry
from repro.geosparql.literals import geometry_literal
from repro.geosparql.store import GeoStore
from repro.rdf.namespace import GEO, RDF
from repro.rdf.term import IRI, Literal, make_triple
from repro.rdf.term import XSD_DATETIME, XSD_INTEGER
from repro.raster.products import Product


def product_iri(product: Product) -> IRI:
    return IRI(f"http://extremeearth.eu/product/{product.product_id}")


def ingest_products(store: GeoStore, products: Iterable[Product]) -> int:
    """Load product metadata records; returns the triple count added."""

    def triples():
        for product in products:
            subject = product_iri(product)
            geom_iri = IRI(subject.value + "/footprint")
            yield make_triple(subject, RDF.type, model.PRODUCT)
            yield make_triple(subject, model.MISSION, Literal(product.mission.value))
            yield make_triple(
                subject, model.PRODUCT_TYPE, Literal(product.product_type)
            )
            yield make_triple(subject, model.LEVEL, Literal(product.level.value))
            yield make_triple(
                subject,
                model.SENSING_TIME,
                Literal(product.sensing_time.isoformat(), datatype=XSD_DATETIME),
            )
            yield make_triple(
                subject,
                model.SIZE_BYTES,
                Literal(str(product.size_bytes), datatype=XSD_INTEGER),
            )
            yield make_triple(subject, GEO.hasGeometry, geom_iri)
            yield make_triple(geom_iri, GEO.asWKT, geometry_literal(product.footprint))

    return store.bulk_load(triples())


def ingest_knowledge(
    store: GeoStore,
    entity_iri: str,
    entity_class: IRI,
    geometry: Geometry,
    observed_at: Optional[str] = None,
    derived_from: Optional[IRI] = None,
    properties: Sequence = (),
) -> None:
    """Register one extracted knowledge entity (iceberg, ice region, field).

    ``properties`` is a sequence of (predicate IRI, term) pairs for
    class-specific attributes (region name, crop type, ...).
    """
    if not entity_iri.startswith("http"):
        raise CatalogError(f"entity IRI must be absolute: {entity_iri!r}")
    subject = IRI(entity_iri)
    geom_iri = IRI(entity_iri + "/geom")
    store.add(subject, RDF.type, entity_class)
    store.add(subject, GEO.hasGeometry, geom_iri)
    store.add(geom_iri, GEO.asWKT, geometry_literal(geometry))
    if observed_at is not None:
        store.add(
            subject,
            model.OBSERVED_AT,
            Literal(observed_at, datatype=XSD_DATETIME),
        )
    if derived_from is not None:
        store.add(subject, model.DERIVED_FROM, derived_from)
    for predicate, term in properties:
        store.add(subject, predicate, term)
