"""The semantic catalogue service.

Overload resilience (experiment E18): the catalogue optionally takes an
:class:`~repro.resilience.AdmissionController` guarding query entry (shed
queries raise the retryable :class:`~repro.errors.Overloaded`), and every
query accepts an optional :class:`~repro.resilience.Deadline` checked
around evaluation. Both default to off — the unguarded path is
byte-identical to the pre-E18 service.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.catalog import model
from repro.catalog.ingest import ingest_knowledge, ingest_products
from repro.errors import CatalogError
from repro.geometry import Geometry, Polygon, contains, intersects
from repro.geosparql.literals import geometry_literal, literal_geometry
from repro.geosparql.store import GeoStore
from repro.rdf.namespace import GEO
from repro.rdf.term import IRI, Literal
from repro.raster.products import Product
from repro.sparql import Variable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.plan import PlanCache
    from repro.resilience.admission import AdmissionController
    from repro.resilience.deadline import Deadline

_PREFIXES = (
    "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
    "PREFIX geof: <http://www.opengis.net/def/function/geosparql/> "
    "PREFIX eop: <http://extremeearth.eu/product#> "
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
)


class SemanticCatalog:
    """A catalogue that answers both classic and knowledge queries.

    Classic search (bbox / time window / mission / product type) compiles to
    GeoSPARQL; knowledge queries run arbitrary SPARQL over the same store —
    "the knowledge hidden in Sentinel satellite images" is just more triples.
    """

    def __init__(
        self,
        store: Optional[GeoStore] = None,
        admission: Optional["AdmissionController"] = None,
        plan_cache: Optional["PlanCache"] = None,
    ):
        self.store = store if store is not None else GeoStore()
        self._admission = admission
        if plan_cache is not None:
            # The catalogue's queries all run through its store, so the
            # cache simply rides on it (keys are per-store, see PlanCache).
            self.store.plan_cache = plan_cache

    @property
    def plan_cache(self) -> Optional["PlanCache"]:
        return self.store.plan_cache

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add_products(self, products) -> int:
        return ingest_products(self.store, products)

    def add_iceberg(
        self,
        iceberg_id: str,
        geometry: Geometry,
        observed_at: str,
        derived_from: Optional[IRI] = None,
    ) -> None:
        ingest_knowledge(
            self.store,
            f"http://extremeearth.eu/knowledge/iceberg/{iceberg_id}",
            model.ICEBERG,
            geometry,
            observed_at=observed_at,
            derived_from=derived_from,
        )

    def add_ice_region(
        self, region_id: str, name: str, geometry: Geometry, observed_at: str
    ) -> None:
        ingest_knowledge(
            self.store,
            f"http://extremeearth.eu/knowledge/region/{region_id}",
            model.ICE_REGION,
            geometry,
            observed_at=observed_at,
            properties=[(model.REGION_NAME, Literal(name))],
        )

    def add_crop_field(
        self, field_id: str, crop: str, geometry: Geometry
    ) -> None:
        ingest_knowledge(
            self.store,
            f"http://extremeearth.eu/knowledge/field/{field_id}",
            model.CROP_FIELD,
            geometry,
            properties=[(model.CROP_TYPE, Literal(crop))],
        )

    def add_content_summary(
        self, product: IRI, fractions: Dict[str, float]
    ) -> None:
        """Attach a class-composition summary to a product.

        ``fractions`` maps class names (e.g. "FIRST_YEAR_ICE") to their
        scene fraction — the per-product knowledge the C1 classifiers emit.
        """
        for class_name, fraction in fractions.items():
            if not 0.0 <= fraction <= 1.0:
                raise CatalogError(
                    f"content fraction for {class_name!r} out of [0, 1]: {fraction}"
                )
            node = IRI(f"{product.value}/content/{class_name}")
            self.store.add(product, model.HAS_CONTENT, node)
            self.store.add(node, model.CONTENT_CLASS, Literal(class_name))
            self.store.add(
                node, model.CONTENT_FRACTION, Literal.from_python(float(fraction))
            )

    def search_by_content(
        self, class_name: str, min_fraction: float = 0.0
    ) -> List[Tuple[IRI, float]]:
        """Products containing *class_name* above *min_fraction*, best first.

        The query classic catalogues cannot express: search by what is *in*
        the imagery, not by acquisition parameters.
        """
        solutions = self.query(
            "SELECT ?p ?fr WHERE { ?p eop:hasContent ?c . "
            f'?c eop:contentClass "{class_name}" . '
            "?c eop:contentFraction ?fr . "
            f"FILTER (?fr >= {min_fraction}) }} ORDER BY DESC(?fr)"
        )
        return [
            (solution[Variable("p")], float(solution[Variable("fr")].to_python()))
            for solution in solutions
        ]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> int:
        """Dump the catalogue to N-Triples; returns the triple count."""
        return self.store.save_ntriples(path)

    @classmethod
    def load(cls, path: str) -> "SemanticCatalog":
        """Restore a catalogue dump (spatial index rebuilt on load)."""
        from repro.geosparql.store import GeoStore

        return cls(store=GeoStore.from_ntriples(path))

    @property
    def triple_count(self) -> int:
        return len(self.store)

    # ------------------------------------------------------------------
    # Classic catalogue search
    # ------------------------------------------------------------------

    def search_products(
        self,
        bbox: Optional[Tuple[float, float, float, float]] = None,
        start_time: Optional[str] = None,
        end_time: Optional[str] = None,
        mission: Optional[str] = None,
        product_type: Optional[str] = None,
        deadline: Optional["Deadline"] = None,
        priority: int = 1,
    ) -> List[IRI]:
        """Search by the classic hub parameters; returns product IRIs."""
        patterns = ["?p rdf:type eop:Product ."]
        filters = []
        if mission is not None:
            patterns.append(f'?p eop:mission "{mission}" .')
        if product_type is not None:
            patterns.append(f'?p eop:productType "{product_type}" .')
        if start_time is not None or end_time is not None:
            patterns.append("?p eop:sensingTime ?t .")
            if start_time is not None:
                filters.append(f'STR(?t) >= "{start_time}"')
            if end_time is not None:
                filters.append(f'STR(?t) <= "{end_time}"')
        if bbox is not None:
            min_x, min_y, max_x, max_y = bbox
            window = geometry_literal(Polygon.box(min_x, min_y, max_x, max_y))
            patterns.append("?p geo:hasGeometry ?g . ?g geo:asWKT ?wkt .")
            filters.append(
                f'geof:sfIntersects(?wkt, "{window.lexical}"^^geo:wktLiteral)'
            )
        filter_text = " ".join(f"FILTER ({f})" for f in filters)
        query = (
            "SELECT DISTINCT ?p WHERE { "
            + " ".join(patterns)
            + " "
            + filter_text
            + " }"
        )
        solutions = self.query(query, deadline=deadline, priority=priority)
        return [s[Variable("p")] for s in solutions]

    # ------------------------------------------------------------------
    # Knowledge queries
    # ------------------------------------------------------------------

    def query(
        self,
        sparql: str,
        deadline: Optional["Deadline"] = None,
        priority: int = 1,
    ):
        """Run raw SPARQL (prefixes for geo/geof/eop/rdf are prepended).

        With an admission controller attached the query takes a ticket
        (classed by ``priority``) for the duration of evaluation; a
        ``deadline`` is checked before and after evaluation, so an
        exhausted budget fails with
        :class:`~repro.errors.TimeoutExceeded` instead of returning late.
        """
        if self._admission is None and deadline is None:
            return self.store.query(_PREFIXES + sparql)
        ticket = (
            self._admission.admit(priority=priority)
            if self._admission is not None
            else None
        )
        try:
            if deadline is not None:
                deadline.check("catalog.query")
            result = self.store.query(_PREFIXES + sparql)
            if deadline is not None:
                deadline.check("catalog.query")
            return result
        finally:
            if ticket is not None:
                ticket.release()

    def count_icebergs_embedded(self, region_name: str, year: int) -> int:
        """The paper's flagship query: icebergs embedded in a named ice
        region at its maximum extent in a given year.

        Implementation: take the region's largest observed geometry that
        year, then count icebergs observed that year whose geometry lies
        within it.
        """
        regions = self.query(
            'SELECT ?g ?t WHERE { ?r rdf:type eop:IceRegion . '
            f'?r eop:regionName "{region_name}" . '
            "?r eop:observedAt ?t . ?r geo:hasGeometry ?geom . ?geom geo:asWKT ?g }"
        )
        year_prefix = str(year)
        candidates = []
        for solution in regions:
            observed = str(solution[Variable("t")])
            if observed.startswith(year_prefix):
                geometry = literal_geometry(solution[Variable("g")])
                candidates.append(geometry)
        if not candidates:
            raise CatalogError(
                f"no observations of region {region_name!r} in {year}"
            )
        maximum_extent = max(candidates, key=lambda g: getattr(g, "area", 0.0))

        icebergs = self.query(
            "SELECT ?b ?g ?t WHERE { ?b rdf:type eop:Iceberg . "
            "?b eop:observedAt ?t . ?b geo:hasGeometry ?geom . ?geom geo:asWKT ?g }"
        )
        embedded = set()
        for solution in icebergs:
            observed = str(solution[Variable("t")])
            if not observed.startswith(year_prefix):
                continue
            geometry = literal_geometry(solution[Variable("g")])
            if contains(maximum_extent, geometry):
                embedded.add(solution[Variable("b")])
        return len(embedded)
