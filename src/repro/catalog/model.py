"""The catalogue ontology.

Product metadata mirrors a Copernicus hub record; knowledge entities are the
classes the ExtremeEarth deep-learning pipelines extract from imagery (sea-ice
objects for the Polar TEP, crop fields for Food Security).
"""

from __future__ import annotations

from repro.rdf.namespace import Namespace

#: ExtremeEarth product & knowledge vocabulary.
EOP = Namespace("http://extremeearth.eu/product#")

# Product classes and properties.
PRODUCT = EOP.Product
MISSION = EOP.mission
PRODUCT_TYPE = EOP.productType
LEVEL = EOP.processingLevel
SENSING_TIME = EOP.sensingTime
SIZE_BYTES = EOP.sizeBytes

# Knowledge classes (extracted content).
ICEBERG = EOP.Iceberg
ICE_REGION = EOP.IceRegion
CROP_FIELD = EOP.CropField

# Knowledge properties.
OBSERVED_AT = EOP.observedAt  # xsd:dateTime of the detection
EMBEDDED_IN = EOP.embeddedIn  # iceberg -> ice region
REGION_NAME = EOP.regionName
CROP_TYPE = EOP.cropType
DERIVED_FROM = EOP.derivedFrom  # knowledge entity -> source product

# Content summaries ("the knowledge hidden in Sentinel satellite images"):
# per-product class composition extracted by the classifiers.
HAS_CONTENT = EOP.hasContent  # product -> content node
CONTENT_CLASS = EOP.contentClass  # content node -> class name literal
CONTENT_FRACTION = EOP.contentFraction  # content node -> fraction (double)
