"""Semantic catalogue services (Challenge C4).

"Currently, Copernicus data catalogues ... allow a user to access data by
drawing an area of interest on the map and specifying search parameters such
as sensing date, mission, satellite platform, product type etc. The new
semantics-based catalogue we will develop in ExtremeEarth will expose the
knowledge hidden in Sentinel satellite images ... and will allow a user to
ask sophisticated queries such as 'How many icebergs were embedded in the
Norske Øer Ice Barrier at its maximum extent in 2017?'"

* :mod:`repro.catalog.model` — the EO product/knowledge ontology
* :mod:`repro.catalog.ingest` — products + extracted knowledge -> RDF
* :class:`~repro.catalog.service.SemanticCatalog` — classic search *and*
  knowledge queries (including the iceberg query) over a GeoStore
* :class:`~repro.catalog.keyword_baseline.KeywordCatalog` — the classic
  extent/keyword catalogue that cannot answer the semantic query (E9)
"""

from repro.catalog.model import EOP
from repro.catalog.ingest import ingest_knowledge, ingest_products
from repro.catalog.service import SemanticCatalog
from repro.catalog.keyword_baseline import CapabilityError, KeywordCatalog

__all__ = [
    "CapabilityError",
    "EOP",
    "ingest_knowledge",
    "ingest_products",
    "KeywordCatalog",
    "SemanticCatalog",
]
