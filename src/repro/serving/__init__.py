"""The multi-tenant serving gateway (experiment E21).

The paper's platform is a front door for "millions of users" hitting a
Copernicus-scale catalogue; this package is that front door, scaled down
to a deterministic model. One :class:`Gateway` sits in front of the
catalogue, the SPARQL store and the federation executor and gives a shared
platform its multi-tenant manners:

* **identity and quotas** (:mod:`repro.serving.tenant`) — API-key
  authentication, deterministic token-bucket rate quotas and per-tenant
  in-flight caps, rejecting excess with typed
  :class:`~repro.errors.QuotaExceeded` + exact retry-after hints;
* **weighted-fair queueing** (:mod:`repro.serving.wfq`) — virtual-time
  fair scheduling across tenants, so one bursty tenant queues behind its
  own backlog instead of starving everyone;
* **request coalescing** (:mod:`repro.serving.coalesce`) — concurrent
  identical queries (same backend, text, options, content version) share
  one execution, each member keeping its *own* deadline;
* **graceful degradation** — internal E18 signals
  (:class:`~repro.errors.Overloaded`, :class:`~repro.errors.CircuitOpen`)
  and the E23 governor's :class:`~repro.errors.QueryBudgetExceeded` /
  :class:`~repro.errors.QueryCancelled` are translated into per-tenant
  :class:`~repro.errors.Shed`, never leaked raw;
* **query governance** (E23) — with a
  :class:`~repro.sparql.governor.BudgetPolicy` attached, each execution
  carries a :class:`~repro.sparql.governor.QueryBudget` (deadline narrowed
  to the per-query cap, row/byte ceilings, the coalesce entry's cancel
  token) that the engines enforce at their checkpoints, and
  :meth:`Gateway.kill` stops a runaway mid-flight.

The gateway composes with — never duplicates — the earlier layers: E18's
:class:`~repro.resilience.AdmissionController` is its shared bulkhead,
E18's :class:`~repro.resilience.Deadline` bounds every member
individually, and the coalescing key reuses the
:attr:`~repro.rdf.graph.Graph.version` counter E19's
:class:`~repro.cache.PlanCache` invalidates on. With every knob at its
default the gateway is byte-identical to direct backend access (pinned by
the parity suite), matching the E17–E20 disabled-path convention.

:mod:`repro.serving.workload` generates seeded open-loop traffic (Zipf
tenant skew, diurnal swell, flash bursts) and :mod:`repro.serving.soak`
plays it protected-vs-unprotected on the sim clock (``python -m
repro.serving.soak``); benchmark E21 measures tenant fairness (Jain's
index), p99 and duplicate executions avoided.
"""

from repro.errors import AuthFailed, QuotaExceeded, ServingError, Shed
from repro.serving.backends import (
    Backend,
    CallableBackend,
    CatalogBackend,
    DistBackend,
    FederationBackend,
    StoreBackend,
)
from repro.serving.coalesce import CoalesceEntry, Coalescer
from repro.serving.gateway import Gateway, GatewayRequest
from repro.serving.soak import (
    ServingSoakConfig,
    ServingSoakReport,
    TenantOutcome,
    jain_index,
    run_comparison,
    run_serving_soak,
)
from repro.serving.tenant import (
    TenantConfig,
    TenantRegistry,
    TenantSession,
    TokenBucket,
)
from repro.serving.wfq import WeightedFairQueue
from repro.serving.workload import (
    Arrival,
    WorkloadConfig,
    burst_windows,
    generate_arrivals,
    rate_at,
    zipf_weights,
)

__all__ = [
    "Arrival",
    "AuthFailed",
    "Backend",
    "CallableBackend",
    "CatalogBackend",
    "DistBackend",
    "CoalesceEntry",
    "Coalescer",
    "FederationBackend",
    "Gateway",
    "GatewayRequest",
    "QuotaExceeded",
    "ServingError",
    "ServingSoakConfig",
    "ServingSoakReport",
    "Shed",
    "StoreBackend",
    "TenantConfig",
    "TenantOutcome",
    "TenantRegistry",
    "TenantSession",
    "TokenBucket",
    "WeightedFairQueue",
    "WorkloadConfig",
    "burst_windows",
    "generate_arrivals",
    "jain_index",
    "rate_at",
    "run_comparison",
    "run_serving_soak",
    "zipf_weights",
]
