"""A deterministic weighted-fair queue over tenants.

Classic virtual-time fair queueing (start-time tags, finish-tag ordering):
each tenant's items are stamped with

* ``start  = max(virtual_time, tenant's last finish tag)``
* ``finish = start + cost / weight``

and the queue always dispatches the smallest finish tag. The virtual clock
advances to the start tag of each dispatched item, so an idle tenant
re-enters at the current virtual time — it is never owed credit for time
it spent away (work conservation), and it can never be starved: every
competitor's tags strictly increase by at least ``cost/weight`` per item,
so only finitely many later arrivals can sort below any queued item.

The guarantees the property suite pins down:

* **work conservation** — ``pop`` yields an item whenever the queue is
  non-empty; nothing is ever withheld;
* **no starvation** — once pushed, an item is dispatched within a bounded
  number of dispatches (bound derived from tags and weights);
* **weight-proportional throughput** — under sustained backlog each
  tenant's dispatch share converges to ``weight / total_weight``.

Determinism: ties on the finish tag break by push sequence number, so two
identical push/pop traces dispatch identically. No clocks, no randomness.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import ServingError


class WeightedFairQueue:
    """Finish-tag-ordered fair queue; items are opaque, tenants are keys."""

    def __init__(self):
        self._heap: List[Tuple[float, int, float, str, object]] = []
        self._sequence = itertools.count()
        self._virtual = 0.0
        self._last_finish: Dict[str, float] = {}
        self._pending: Dict[str, int] = {}
        self.pushed = 0
        self.popped = 0

    # ------------------------------------------------------------------
    # Queue discipline
    # ------------------------------------------------------------------

    def push(
        self, tenant: str, weight: float, item: object, cost: float = 1.0
    ) -> float:
        """Enqueue *item* for *tenant*; returns its finish tag."""
        if weight <= 0:
            raise ServingError(f"WFQ weight must be > 0, got {weight}")
        if cost <= 0:
            raise ServingError(f"WFQ cost must be > 0, got {cost}")
        start = max(self._virtual, self._last_finish.get(tenant, 0.0))
        finish = start + cost / weight
        self._last_finish[tenant] = finish
        heapq.heappush(
            self._heap, (finish, next(self._sequence), start, tenant, item)
        )
        self._pending[tenant] = self._pending.get(tenant, 0) + 1
        self.pushed += 1
        return finish

    def pop(self) -> Optional[Tuple[str, object]]:
        """Dispatch the item with the smallest finish tag; None if empty."""
        if not self._heap:
            return None
        finish, _, start, tenant, item = heapq.heappop(self._heap)
        self._virtual = max(self._virtual, start)
        remaining = self._pending[tenant] - 1
        if remaining:
            self._pending[tenant] = remaining
        else:
            del self._pending[tenant]
        self.popped += 1
        return tenant, item

    def peek(self) -> Optional[Tuple[str, object]]:
        """The next dispatch without removing it; None if empty."""
        if not self._heap:
            return None
        _, _, _, tenant, item = self._heap[0]
        return tenant, item

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def virtual_time(self) -> float:
        return self._virtual

    def pending(self, tenant: Optional[str] = None) -> int:
        """Queued items for one tenant (or in total)."""
        if tenant is None:
            return len(self._heap)
        return self._pending.get(tenant, 0)

    def queued_tenants(self) -> List[str]:
        return sorted(self._pending)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:
        return (
            f"WeightedFairQueue(depth={len(self._heap)}, "
            f"tenants={len(self._pending)}, v={self._virtual:.6g})"
        )
