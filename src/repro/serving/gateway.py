"""The multi-tenant serving gateway: one front door for every query path.

A :class:`Gateway` sits in front of the catalogue, the SPARQL store and the
federation executor and applies, in order, the controls a shared platform
owes its tenants:

1. **authentication** — the API key resolves to a
   :class:`~repro.serving.tenant.TenantSession` or fails with the
   non-retryable :class:`~repro.errors.AuthFailed`;
2. **per-tenant quotas** — the tenant's token bucket and in-flight cap
   reject excess with :class:`~repro.errors.QuotaExceeded` and an exact
   ``retry_after_s`` hint, before the request costs the platform anything;
3. **platform admission** — an optional shared E18
   :class:`~repro.resilience.AdmissionController` bulkhead; an internal
   :class:`~repro.errors.Overloaded` is translated into the typed
   per-tenant :class:`~repro.errors.Shed`, never leaked raw;
4. **coalescing** — an identical in-flight query (same backend, text,
   options and content version; see :mod:`repro.serving.coalesce`) absorbs
   the request as a follower: no new execution, outcome fanned out once;
5. **weighted-fair queueing** — fresh executions enter a
   :class:`~repro.serving.wfq.WeightedFairQueue` keyed by tenant weight,
   so a bursty tenant queues behind its own backlog, not everyone else's.

The gateway is execution-agnostic: callers drain it. The synchronous path
(:meth:`query`) dispatches and executes inline and is byte-identical to
direct backend access when every knob is at its default (no quotas, no
admission, one tenant) — the parity suite pins this. The event-driven path
(:meth:`submit` / :meth:`next_dispatch` / :meth:`complete`) lets a
simulation own timing: the E21 soak harness dispatches entries onto
simulated servers and completes them at service-finish events.

Ticket discipline (audited, and asserted leak-free by the soak): every
admitted request holds exactly one admission ticket from admit to
settlement and releases it exactly once — on result delivery, on typed
rejection, on deadline expiry while queued or coalesced, and on every
exception path (submit unwinds its own ticket before re-raising).
Deadlines are never shared: each coalesced member keeps its own
:class:`~repro.resilience.Deadline`, checked at dispatch and again at
fan-out, so a follower that ran out of time gets
:class:`~repro.errors.TimeoutExceeded`, never a late result.

With a :class:`~repro.sparql.governor.BudgetPolicy` attached (E23), every
execution on a budget-capable backend carries a derived
:class:`~repro.sparql.governor.QueryBudget` — the member deadline narrowed
to the per-query cap, row/byte ceilings, and the coalesce entry's
:class:`~repro.sparql.governor.CancelToken` so :meth:`Gateway.kill` stops a
runaway mid-flight. The engine's typed
:class:`~repro.errors.QueryBudgetExceeded` / :class:`~repro.errors.QueryCancelled`
never leak: both translate to per-tenant :class:`~repro.errors.Shed` at
fan-out, exactly like the E18 overload signals.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.cache.plan import PlanCache
from repro.errors import (
    CircuitOpen,
    Overloaded,
    PartitionUnavailable,
    QueryBudgetExceeded,
    QueryCancelled,
    ServingError,
    Shed,
    TimeoutExceeded,
)
from repro.obs import Observability, resolve
from repro.resilience.admission import AdmissionController, AdmissionTicket
from repro.resilience.deadline import Deadline
from repro.serving.coalesce import Coalescer, CoalesceEntry, RUNNING
from repro.serving.tenant import TenantConfig, TenantRegistry, TenantSession
from repro.serving.wfq import WeightedFairQueue
from repro.sparql.governor import BudgetPolicy, QueryBudget

#: Outcome categories a settled request lands in (exactly one each).
OK = "ok"
FAILED = "failed"
EXPIRED = "expired"


class GatewayRequest:
    """One tenant request travelling through the gateway."""

    __slots__ = (
        "api_key", "kind", "query", "options", "priority", "deadline",
        "cost", "session", "ticket", "submitted_at", "settled", "category",
        "result", "error", "entry", "follower",
    )

    def __init__(
        self,
        api_key: str,
        query: str,
        kind: str = "default",
        options=None,
        priority: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        cost: float = 1.0,
    ):
        self.api_key = api_key
        self.kind = kind
        self.query = query
        self.options = options
        self.priority = priority
        self.deadline = deadline
        self.cost = cost
        # Filled in by the gateway:
        self.session: Optional[TenantSession] = None
        self.ticket: Optional[AdmissionTicket] = None
        self.submitted_at = 0.0
        self.settled = False
        self.category: Optional[str] = None
        self.result = None
        self.error: Optional[BaseException] = None
        self.entry: Optional[CoalesceEntry] = None
        self.follower = False

    def __repr__(self) -> str:
        state = self.category if self.settled else "in-flight"
        tenant = self.session.name if self.session is not None else "?"
        return f"GatewayRequest({tenant!r}, kind={self.kind!r}, {state})"


class Backend:
    """One query path behind the gateway. Subclasses adapt real engines."""

    kind = "default"

    #: Set True in adapters whose ``execute`` accepts a ``budget=`` kwarg
    #: (an E23 :class:`~repro.sparql.governor.QueryBudget`). The gateway
    #: only passes one when this is set, so pre-E23 adapters — and test
    #: doubles with the old signature — keep working unchanged.
    supports_budget = False

    def execute(self, query: str, options=None,
                deadline: Optional[Deadline] = None, priority: int = 1):
        raise NotImplementedError

    def version(self):
        """Content-version component of the coalescing key (hashable)."""
        return 0


class Gateway:
    """The front door. See the module docstring for the control pipeline."""

    def __init__(
        self,
        backends,
        clock: Optional[Callable[[], float]] = None,
        admission: Optional[AdmissionController] = None,
        coalesce: bool = True,
        shed_retry_after_s: float = 0.1,
        obs: Optional[Observability] = None,
        budget_policy: Optional[BudgetPolicy] = None,
        injector=None,
    ):
        if isinstance(backends, Backend):
            backends = {backends.kind: backends}
        if not backends:
            raise ServingError("gateway needs at least one backend")
        self._backends: Dict[str, Backend] = dict(backends)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._admission = admission
        self._coalesce_enabled = coalesce
        self._shed_retry_after_s = shed_retry_after_s
        self._budget_policy = budget_policy
        self._injector = injector
        self._obs = resolve(obs)
        self.tenants = TenantRegistry(clock=self._clock)
        self.queue = WeightedFairQueue()
        self.coalescer = Coalescer()
        self._solo_keys = itertools.count()
        # Ticket audit: every issued ticket must be released exactly once.
        self.tickets_issued = 0
        self.tickets_released = 0
        self.executions = 0
        self._depth_gauge = self._obs.metrics.gauge("serving.queue_depth")

    # ------------------------------------------------------------------
    # Tenants
    # ------------------------------------------------------------------

    def register_tenant(self, config: TenantConfig) -> TenantSession:
        return self.tenants.register(config)

    def backend(self, kind: str) -> Backend:
        try:
            return self._backends[kind]
        except KeyError:
            raise ServingError(
                f"no backend {kind!r}; have {sorted(self._backends)}"
            ) from None

    # ------------------------------------------------------------------
    # Intake
    # ------------------------------------------------------------------

    def submit(self, request: GatewayRequest) -> GatewayRequest:
        """Admit one request: auth -> quota -> bulkhead -> coalesce/queue.

        On return the request is in flight (queued leader or attached
        follower). Typed rejections raise before the request holds any
        platform state; once a ticket is held, every exit path releases it
        exactly once.
        """
        now = self._clock()
        metrics = self._obs.metrics
        try:
            session = self.tenants.authenticate(request.api_key)
        except Exception:
            metrics.counter("serving.auth_failures").inc()
            raise
        request.session = session
        session.submitted += 1
        metrics.counter("serving.requests", tenant=session.name).inc()
        try:
            session.check_quota(now)
        except Exception as exc:
            metrics.counter(
                "serving.quota_rejected", tenant=session.name,
                reason=getattr(exc, "reason", "rate"),
            ).inc()
            raise
        ticket: Optional[AdmissionTicket] = None
        if self._admission is not None:
            try:
                priority = (
                    request.priority
                    if request.priority is not None
                    else session.config.priority
                )
                ticket = self._admission.admit(priority)
                self.tickets_issued += 1
            except Overloaded as exc:
                session.shed += 1
                metrics.counter(
                    "serving.shed", tenant=session.name, reason="overloaded"
                ).inc()
                raise Shed(
                    f"platform overloaded; retry after "
                    f"{self._shed_retry_after_s}s",
                    tenant=session.name,
                    retry_after_s=self._shed_retry_after_s,
                    reason="overloaded",
                ) from exc
        request.ticket = ticket
        request.submitted_at = now
        session.in_flight += 1
        try:
            backend = self.backend(request.kind)
            if self._coalesce_enabled:
                key = (
                    request.kind,
                    request.query,
                    PlanCache.options_key(request.options),
                    backend.version(),
                )
                entry = self.coalescer.lookup(key)
            else:
                key = (request.kind, "", None, next(self._solo_keys))
                entry = None
            if entry is not None:
                self.coalescer.attach(entry, request)
                request.follower = True
                session.coalesced += 1
                metrics.counter(
                    "serving.coalesced", tenant=session.name
                ).inc()
            else:
                entry = self.coalescer.open(key, request)
                self.queue.push(
                    session.name, session.weight, entry, cost=request.cost
                )
            request.entry = entry
            self._depth_gauge.set(len(self.queue))
        except BaseException:
            # Exception path of the ticket audit: unwind our own state so
            # the ticket (and the tenant's in-flight slot) cannot leak.
            session.in_flight -= 1
            if request.ticket is not None:
                request.ticket.release()
                self.tickets_released += 1
                request.ticket = None
            raise
        return request

    # ------------------------------------------------------------------
    # Dispatch / completion (event-driven path)
    # ------------------------------------------------------------------

    def next_dispatch(self) -> Optional[CoalesceEntry]:
        """Pop the next entry to execute, per weighted-fair order.

        Members whose deadline already ran out are settled here with
        :class:`~repro.errors.TimeoutExceeded` (fail fast — no server time
        for answers nobody is waiting for); an entry whose members *all*
        expired is dropped and the next one considered. Returns None when
        the queue is empty.
        """
        while True:
            popped = self.queue.pop()
            if popped is None:
                self._depth_gauge.set(0)
                return None
            _, entry = popped
            alive = False
            for member in list(entry.members):
                if member.settled:
                    continue
                if member.deadline is not None and member.deadline.expired:
                    self._settle_expired(member, "dispatch")
                else:
                    alive = True
            if alive:
                entry.state = RUNNING
                self._depth_gauge.set(len(self.queue))
                return entry
            self.coalescer.close(entry)

    def execution_deadline(self, entry: CoalesceEntry) -> Optional[Deadline]:
        """The deadline to hand the backend: the first live member's own."""
        for member in entry.members:
            if not member.settled:
                return member.deadline
        return None

    # ------------------------------------------------------------------
    # Query governance (experiment E23)
    # ------------------------------------------------------------------

    def budget_for(self, entry: CoalesceEntry) -> Optional[QueryBudget]:
        """Derive the E23 :class:`QueryBudget` for one execution, or None.

        The budget wires the entry's :class:`CancelToken` (so :meth:`kill`
        reaches inside the engine) and narrows the dispatching member's own
        deadline down to ``policy.max_seconds`` via
        :meth:`~repro.resilience.Deadline.derive` — a generous per-query cap
        never widens an almost-expired request, and an execution with no
        member deadline gets a fresh charge-driven one.
        """
        policy = self._budget_policy
        if policy is None or not policy.enabled:
            return None
        deadline = self.execution_deadline(entry)
        if policy.max_seconds is not None:
            if deadline is not None:
                deadline = deadline.derive(policy.max_seconds, label="execution")
            else:
                deadline = Deadline(policy.max_seconds, label="execution")
        leader = entry.leader
        tenant = leader.session.name if leader.session is not None else "?"
        return QueryBudget(
            deadline=deadline,
            max_rows=policy.max_rows,
            max_bytes=policy.max_bytes,
            cancel=entry.cancel,
            label=f"{entry.key[0]}:{tenant}",
            injector=self._injector,
            checkpoint_charge_s=policy.checkpoint_charge_s,
            row_charge_s=policy.row_charge_s,
        )

    def kill(self, entry: CoalesceEntry, reason: str = "killed by operator") -> None:
        """Request cooperative cancellation of an in-flight entry.

        Only the token flips here — the entry is *not* settled or closed:
        a running execution raises :class:`~repro.errors.QueryCancelled` at
        its next engine checkpoint and settles through the normal
        :meth:`complete` fan-out, so followers get typed errors and every
        ticket releases exactly once. Killing a queued entry makes its
        eventual execution fail at the first checkpoint.
        """
        entry.cancel.cancel(reason)
        self._obs.metrics.counter("governor.kill_requests").inc()

    def complete(
        self,
        entry: CoalesceEntry,
        result=None,
        error: Optional[BaseException] = None,
    ) -> List[GatewayRequest]:
        """Fan one execution's outcome out to every member, exactly once.

        Followers inherit the leader's outcome — result or (translated)
        error — unless their own deadline expired while the execution ran,
        in which case they get :class:`~repro.errors.TimeoutExceeded`
        instead of a late answer. Returns the members settled here.
        """
        if entry.state != RUNNING:
            raise ServingError("complete() on an entry that is not running")
        self.executions += 1
        self._obs.metrics.counter(
            "serving.executions", kind=entry.key[0]
        ).inc()
        settled = []
        for member in entry.members:
            if member.settled:
                continue
            if member.deadline is not None and member.deadline.expired:
                self._settle_expired(member, "fan-out")
            elif error is not None:
                self._settle(
                    member, FAILED, error=self._translate(error, member)
                )
            else:
                self._settle(member, OK, result=result)
            settled.append(member)
        self.coalescer.close(entry)
        return settled

    # ------------------------------------------------------------------
    # Synchronous convenience path
    # ------------------------------------------------------------------

    def query(
        self,
        api_key: str,
        query: str,
        kind: str = "default",
        options=None,
        priority: Optional[int] = None,
        deadline: Optional[Deadline] = None,
        cost: float = 1.0,
    ):
        """Submit, execute and settle one request inline.

        Returns the backend result or raises the request's settled error.
        Identical queries cannot overlap on this single-threaded path, so
        coalescing never engages here — which is exactly why the default
        gateway is byte-identical to direct backend access.
        """
        request = GatewayRequest(
            api_key, query, kind=kind, options=options,
            priority=priority, deadline=deadline, cost=cost,
        )
        self.submit(request)
        while not request.settled:
            entry = self.next_dispatch()
            if entry is None:
                raise ServingError(
                    "request neither settled nor queued"
                )  # pragma: no cover - internal invariant
            self.execute(entry)
        if request.error is not None:
            raise request.error
        return request.result

    def execute(self, entry: CoalesceEntry) -> List[GatewayRequest]:
        """Run a dispatched entry on its backend and fan out the outcome.

        With a budget policy set and a budget-capable backend, the derived
        :class:`QueryBudget` rides along and its enforcement counters are
        recorded as ``governor.*`` metrics whichever way the execution ends.
        """
        backend = self.backend(entry.key[0])
        leader = entry.leader
        budget = self.budget_for(entry)
        kwargs = {}
        if budget is not None and backend.supports_budget:
            kwargs["budget"] = budget
        try:
            result = backend.execute(
                leader.query,
                options=leader.options,
                deadline=self.execution_deadline(entry),
                priority=(
                    leader.priority
                    if leader.priority is not None
                    else leader.session.config.priority
                ),
                **kwargs,
            )
        except Exception as exc:
            self._record_budget(budget, exc)
            return self.complete(entry, error=exc)
        self._record_budget(budget, None)
        return self.complete(entry, result=result)

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------

    def _settle(
        self,
        request: GatewayRequest,
        category: str,
        result=None,
        error: Optional[BaseException] = None,
    ) -> None:
        if request.settled:
            raise ServingError(
                f"request settled twice: {request!r}"
            )
        request.settled = True
        request.category = category
        request.result = result
        request.error = error
        session = request.session
        session.in_flight -= 1
        if request.ticket is not None:
            request.ticket.release()
            self.tickets_released += 1
            request.ticket = None
        metrics = self._obs.metrics
        if category == OK:
            session.ok += 1
            metrics.counter("serving.ok", tenant=session.name).inc()
            metrics.histogram(
                "serving.latency_s", tenant=session.name
            ).observe(self._clock() - request.submitted_at)
        elif category == EXPIRED:
            session.expired += 1
            metrics.counter("serving.expired", tenant=session.name).inc()
        else:
            session.failed += 1
            metrics.counter("serving.failed", tenant=session.name).inc()

    def _settle_expired(self, request: GatewayRequest, where: str) -> None:
        self._settle(
            request,
            EXPIRED,
            error=TimeoutExceeded(
                f"deadline expired at {where} for tenant "
                f"{request.session.name!r}"
            ),
        )

    def _record_budget(
        self, budget: Optional[QueryBudget], error: Optional[BaseException]
    ) -> None:
        """Emit one execution's ``governor.*`` metrics (kills by reason)."""
        if budget is None:
            return
        if isinstance(error, QueryBudgetExceeded):
            outcome, kill_reason = "budget", error.resource
        elif isinstance(error, QueryCancelled):
            outcome, kill_reason = "cancelled", "cancelled"
        elif isinstance(error, TimeoutExceeded):
            outcome, kill_reason = "deadline", "deadline"
        elif error is not None:
            outcome, kill_reason = "failed", None
        else:
            outcome, kill_reason = "ok", None
        budget.record(self._obs, outcome=outcome)
        if kill_reason is not None:
            self._obs.metrics.counter(
                "governor.kills", reason=kill_reason
            ).inc()

    def _translate(
        self, error: BaseException, request: GatewayRequest
    ) -> BaseException:
        """Internal overload signals become typed per-tenant errors."""
        tenant = request.session.name
        if isinstance(error, QueryBudgetExceeded):
            return Shed(
                f"query exceeded its resource budget ({error.resource}); "
                f"retry after {self._shed_retry_after_s}s",
                tenant=tenant,
                retry_after_s=self._shed_retry_after_s,
                reason="query_budget",
            )
        if isinstance(error, QueryCancelled):
            return Shed(
                f"query cancelled; retry after {self._shed_retry_after_s}s",
                tenant=tenant,
                retry_after_s=self._shed_retry_after_s,
                reason="cancelled",
            )
        if isinstance(error, PartitionUnavailable):
            # E25: a distributed query lost every replica of a partition.
            # Transient by design (replicas get re-placed), so it sheds —
            # come back later — rather than failing the tenant outright.
            return Shed(
                f"store partition unavailable ({error.partition}); retry "
                f"after {self._shed_retry_after_s}s",
                tenant=tenant,
                retry_after_s=self._shed_retry_after_s,
                reason="partition_unavailable",
            )
        if isinstance(error, Overloaded):
            return Shed(
                f"backend overloaded; retry after {self._shed_retry_after_s}s",
                tenant=tenant,
                retry_after_s=self._shed_retry_after_s,
                reason="overloaded",
            )
        if isinstance(error, CircuitOpen):
            return Shed(
                f"backend circuit open; retry after "
                f"{self._shed_retry_after_s}s",
                tenant=tenant,
                retry_after_s=self._shed_retry_after_s,
                reason="breaker_open",
            )
        return error

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def assert_drained(self) -> None:
        """Raise :class:`ServingError` unless the gateway is fully idle.

        The soak harness calls this after every run: any queued entry,
        live coalesce key, tenant in-flight count, unreleased ticket or
        bulkhead residue is a leak, and leaks fail the run.
        """
        problems = []
        if len(self.queue):
            problems.append(f"queue depth {len(self.queue)}")
        if self.coalescer.in_flight:
            problems.append(
                f"{self.coalescer.in_flight} coalesce entries in flight"
            )
        for name, session in sorted(self.tenants.sessions.items()):
            if session.in_flight:
                problems.append(f"tenant {name!r} in_flight={session.in_flight}")
        if self.tickets_issued != self.tickets_released:
            problems.append(
                f"ticket leak: issued={self.tickets_issued} "
                f"released={self.tickets_released}"
            )
        if self._admission is not None and self._admission.in_flight:
            problems.append(
                f"admission in_flight={self._admission.in_flight}"
            )
        if problems:
            raise ServingError("gateway not drained: " + "; ".join(problems))

    def __repr__(self) -> str:
        return (
            f"Gateway(backends={sorted(self._backends)}, "
            f"tenants={len(self.tenants)}, queue={len(self.queue)}, "
            f"executions={self.executions})"
        )
