"""Backend adapters: the real query engines behind the gateway.

Each adapter maps the gateway's uniform ``execute(query, options,
deadline, priority)`` call onto one engine's own entry point, and exposes
the engine's **content version** for the coalescing key — the same
monotonic :attr:`~repro.rdf.graph.Graph.version` counter E19's
:class:`~repro.cache.PlanCache` keys compiled plans on, so coalescing and
plan caching invalidate on exactly the same mutations.

The adapters add nothing else on the call path — no extra arguments, no
result reshaping — which is what makes the disabled-path parity suite's
claim (`gateway with defaults == direct access`, byte for byte) hold.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.resilience.deadline import Deadline
from repro.serving.gateway import Backend
from repro.sparql.governor import with_budget


class StoreBackend(Backend):
    """Raw (Geo)SPARQL over a :class:`~repro.geosparql.store.GeoStore`.

    The store's own entry point takes no deadline — the gateway enforces
    the request's budget at dispatch and fan-out instead — so the executed
    call is exactly ``store.query(text, options)``. An E23
    :class:`~repro.sparql.governor.QueryBudget` rides into the engines on
    the compile options (which never reach plan-cache or coalescing keys);
    with no budget the call is byte-identical to the pre-E23 adapter.
    """

    kind = "sparql"
    supports_budget = True

    def __init__(self, store):
        self.store = store

    def version(self) -> int:
        return self.store.content_version

    def execute(self, query: str, options=None,
                deadline: Optional[Deadline] = None, priority: int = 1,
                budget=None):
        if budget is not None:
            options = with_budget(options, budget)
        return self.store.query(query, options=options)


class DistBackend(Backend):
    """Distributed SPARQL (E25) over a shared :class:`DistRuntime`.

    Forces ``engine="dist"`` and pins the runtime onto the compile options
    (both excluded from plan-cache and coalescing keys, like budgets), so
    tenants share one partitioned store and one fault-injection campaign.
    A partition losing every replica surfaces as
    :class:`~repro.errors.PartitionUnavailable`, which the gateway
    translates to a retryable per-tenant :class:`~repro.errors.Shed`.
    """

    kind = "sparql"
    supports_budget = True

    def __init__(self, graph, runtime, registry=None):
        self.graph = graph
        self.runtime = runtime
        self.registry = registry

    def version(self) -> int:
        return self.graph.version

    def execute(self, query: str, options=None,
                deadline: Optional[Deadline] = None, priority: int = 1,
                budget=None):
        import dataclasses

        from repro.sparql.algebra import CompileOptions
        from repro.sparql.evaluator import _EMPTY_REGISTRY, evaluate

        options = dataclasses.replace(
            options if options is not None else CompileOptions(),
            engine="dist",
            dist=self.runtime,
        )
        if budget is not None:
            options = with_budget(options, budget)
        registry = self.registry if self.registry is not None else _EMPTY_REGISTRY
        return evaluate(self.graph, query, registry, options)


class CatalogBackend(Backend):
    """The :class:`~repro.catalog.SemanticCatalog` knowledge-query path.

    The catalogue already understands deadlines and admission priorities
    (E18), so both are passed straight through.
    """

    kind = "catalog"

    def __init__(self, catalog):
        self.catalog = catalog

    def version(self) -> int:
        return self.catalog.store.content_version

    def execute(self, query: str, options=None,
                deadline: Optional[Deadline] = None, priority: int = 1):
        return self.catalog.query(query, deadline=deadline, priority=priority)


class FederationBackend(Backend):
    """Federated execution over a fixed endpoint set.

    The coalescing version is the tuple of every member graph's version,
    so a mutation at *any* endpoint moves the key. Executor options
    (retry policy, breakers, result cache, ...) are bound at construction
    — they are platform wiring, not tenant-visible request state.
    """

    kind = "federation"

    def __init__(self, endpoints: Sequence, **executor_options):
        self.endpoints = list(endpoints)
        self.executor_options = dict(executor_options)

    def version(self):
        return tuple(
            (endpoint.name, endpoint.graph.version)
            for endpoint in self.endpoints
        )

    def execute(self, query: str, options=None,
                deadline: Optional[Deadline] = None, priority: int = 1):
        from repro.federation.executor import execute_federated

        return execute_federated(
            query,
            self.endpoints,
            deadline=deadline,
            priority=priority,
            **self.executor_options,
        )


class CallableBackend(Backend):
    """Adapt any ``f(query) -> result`` (tests, synthetic soak stores)."""

    def __init__(self, fn, kind: str = "default", version_fn=None):
        self.fn = fn
        self.kind = kind
        self._version_fn = version_fn

    def version(self):
        return self._version_fn() if self._version_fn is not None else 0

    def execute(self, query: str, options=None,
                deadline: Optional[Deadline] = None, priority: int = 1):
        return self.fn(query)
