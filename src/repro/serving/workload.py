"""Seeded open-loop workload: Zipf tenant skew, diurnal swell, flash bursts.

Open-loop means arrivals do not wait for responses — the defining property
of internet-facing traffic, and the reason overload is survivable only by
shedding: the offered rate is whatever the world sends, not what the
server finishes. The generator is a pure function of its config:

* **tenant skew** — tenant *k* (0-based) arrives with probability
  proportional to ``1/(k+1)**zipf_s``; at the default ``zipf_s=1.5`` the
  heaviest of 8 tenants offers ~52% of all traffic, the lightest ~2% —
  the regime where FIFO serving starves the tail and weighted-fair
  queueing visibly does not;
* **diurnal swell** — the base rate is modulated by a sinusoid
  (``1 + amplitude * sin(2*pi*t/period)``), the compressed day/night cycle
  of a public catalogue;
* **flash bursts** — seeded windows multiply the instantaneous rate by
  ``burst_factor`` (a new Sentinel acquisition drops, everyone queries at
  once);
* **query skew** — queries are drawn Zipf-style from a small hot pool, so
  concurrent duplicates are common: the coalescing opportunity is in the
  workload, not bolted on.

Arrivals come from a thinning (acceptance-rejection) sampler over the
time-varying rate, all randomness from per-purpose seeded streams (same
derivation recipe as :mod:`repro.faults`), so the same config yields the
same arrival list, byte for byte.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ServingError
from repro.resilience.admission import PRIORITY_BATCH, PRIORITY_INTERACTIVE
from repro.resilience.breaker import _derive_seed


def zipf_weights(count: int, s: float) -> List[float]:
    """Normalised Zipf(s) weights for ranks 1..count."""
    if count < 1:
        raise ServingError("zipf_weights needs count >= 1")
    raw = [1.0 / (rank ** s) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class _ZipfPicker:
    """Inverse-CDF draw from a Zipf distribution, deterministic per stream."""

    def __init__(self, count: int, s: float, rng: random.Random):
        self._cumulative = []
        running = 0.0
        for weight in zipf_weights(count, s):
            running += weight
            self._cumulative.append(running)
        self._cumulative[-1] = 1.0  # guard float drift at the top
        self._rng = rng

    def pick(self) -> int:
        return bisect.bisect_left(self._cumulative, self._rng.random())


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of one generated workload (all knobs seeded/deterministic)."""

    seed: int = 21
    tenants: int = 8
    requests: int = 20_000
    zipf_s: float = 1.5  #: tenant skew exponent
    base_rate: float = 600.0  #: aggregate arrivals/s at the diurnal mean
    diurnal_amplitude: float = 0.5  #: rate swings +-50% over the "day"
    diurnal_period_s: float = 40.0  #: compressed day length
    burst_count: int = 4
    burst_factor: float = 4.0
    burst_duration_s: float = 4.0
    query_pool: int = 32  #: distinct queries in circulation
    query_zipf_s: float = 1.1  #: hot-query skew (drives coalescing)
    batch_fraction: float = 0.25  #: share of arrivals in the batch class

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.requests < 1 or self.query_pool < 1:
            raise ServingError("workload needs >= 1 tenant, request and query")
        if self.base_rate <= 0 or self.diurnal_period_s <= 0:
            raise ServingError("workload rates and periods must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ServingError("diurnal_amplitude must be in [0, 1)")
        if self.burst_count < 0 or self.burst_factor < 1:
            raise ServingError("bursts must be non-negative and >= 1x")
        if not 0.0 <= self.batch_fraction <= 1.0:
            raise ServingError("batch_fraction must be in [0, 1]")

    def tenant_names(self) -> Tuple[str, ...]:
        return tuple(f"tenant-{i}" for i in range(self.tenants))

    def horizon_s(self) -> float:
        """Rough arrival horizon used to place bursts."""
        return self.requests / self.base_rate


@dataclass(frozen=True)
class Arrival:
    """One generated request: when, who, what, which class."""

    at_s: float
    tenant: int
    query: int
    priority: int


def burst_windows(config: WorkloadConfig) -> Tuple[Tuple[float, float], ...]:
    """The seeded flash-crowd windows (start, end), sorted by start."""
    rng = random.Random(_derive_seed(config.seed, "workload-bursts"))
    horizon = config.horizon_s()
    windows = []
    for _ in range(config.burst_count):
        start = rng.uniform(
            0.0, max(horizon - config.burst_duration_s, 0.1)
        )
        windows.append((start, start + config.burst_duration_s))
    return tuple(sorted(windows))


def rate_at(config: WorkloadConfig, windows, at_s: float) -> float:
    """Instantaneous offered rate: diurnal sinusoid times burst factor."""
    rate = config.base_rate * (
        1.0
        + config.diurnal_amplitude
        * math.sin(2.0 * math.pi * at_s / config.diurnal_period_s)
    )
    for start, end in windows:
        if start <= at_s < end:
            rate *= config.burst_factor
            break
    return rate


def generate_arrivals(config: WorkloadConfig) -> List[Arrival]:
    """The full seeded arrival list, time-ordered."""
    windows = burst_windows(config)
    peak = (
        config.base_rate
        * (1.0 + config.diurnal_amplitude)
        * max(config.burst_factor, 1.0)
    )
    time_rng = random.Random(_derive_seed(config.seed, "workload-arrivals"))
    tenant_picker = _ZipfPicker(
        config.tenants, config.zipf_s,
        random.Random(_derive_seed(config.seed, "workload-tenants")),
    )
    query_picker = _ZipfPicker(
        config.query_pool, config.query_zipf_s,
        random.Random(_derive_seed(config.seed, "workload-queries")),
    )
    class_rng = random.Random(_derive_seed(config.seed, "workload-classes"))
    arrivals: List[Arrival] = []
    now = 0.0
    while len(arrivals) < config.requests:
        now += time_rng.expovariate(peak)
        # Thinning: accept with probability rate(t)/peak.
        if time_rng.random() >= rate_at(config, windows, now) / peak:
            continue
        arrivals.append(
            Arrival(
                at_s=now,
                tenant=tenant_picker.pick(),
                query=query_picker.pick(),
                priority=(
                    PRIORITY_BATCH
                    if class_rng.random() < config.batch_fraction
                    else PRIORITY_INTERACTIVE
                ),
            )
        )
    return arrivals
