"""Tenants: API-key identity, token-bucket quotas, per-tenant accounting.

A :class:`TenantConfig` is the immutable contract one tenant signed up for:
an API key, a weighted-fair-queue weight, and two independent quotas —

* a **rate quota** (``rate`` requests/s sustained, up to ``burst`` at
  once), enforced by a deterministic :class:`TokenBucket` that refills
  continuously from a caller-supplied clock (wall or sim); and
* an **in-flight cap** (``max_in_flight``), the tenant's private bulkhead:
  requests the tenant already has inside the gateway, queued or executing.

Both default to unlimited so the parity contract holds: a gateway built
from default tenants admits exactly what direct access would.

A :class:`TenantSession` is the live half — bucket state, in-flight count
and outcome counters — created by :class:`TenantRegistry.register` and
looked up by :meth:`TenantRegistry.authenticate` on every request. The
registry raises the non-retryable :class:`~repro.errors.AuthFailed` for an
unknown key; quota rejections raise
:class:`~repro.errors.QuotaExceeded` with an exact ``retry_after_s`` hint
(time until the bucket refills one token), computed — like everything here
— without ever reading a wall clock the caller did not provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import AuthFailed, QuotaExceeded, ServingError
from repro.resilience.admission import PRIORITY_INTERACTIVE


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity, weight and quotas (immutable)."""

    name: str
    api_key: str
    weight: float = 1.0  #: weighted-fair-queue share
    rate: Optional[float] = None  #: sustained requests/s; None = unlimited
    burst: float = 4.0  #: token-bucket depth (max requests at once)
    max_in_flight: Optional[int] = None  #: concurrent requests; None = unlimited
    priority: int = PRIORITY_INTERACTIVE  #: admission class for the bulkhead

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ServingError(f"tenant weight must be > 0, got {self.weight}")
        if self.rate is not None and self.rate <= 0:
            raise ServingError(f"tenant rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ServingError(f"tenant burst must be >= 1, got {self.burst}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ServingError("tenant max_in_flight must be >= 1")


class TokenBucket:
    """A deterministic token bucket: ``rate`` tokens/s, depth ``burst``.

    Refill is continuous and computed lazily from the clock at each
    :meth:`try_take`, so two runs on the same clock trace behave
    identically. The bucket never reads a clock on its own.
    """

    __slots__ = ("rate", "burst", "_tokens", "_refilled_at")

    def __init__(self, rate: float, burst: float, now: float = 0.0):
        if rate <= 0 or burst < 1:
            raise ServingError(
                f"token bucket needs rate > 0 and burst >= 1 "
                f"(got rate={rate}, burst={burst})"
            )
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._refilled_at = now

    def _refill(self, now: float) -> None:
        if now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
        self._refilled_at = max(self._refilled_at, now)

    @property
    def tokens(self) -> float:
        """Tokens available as of the last refill (introspection only)."""
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Take one token at time *now*; False if the bucket is empty."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self, now: float) -> float:
        """Seconds from *now* until one whole token will be available."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class TenantSession:
    """One tenant's live serving state: quota bucket, in-flight, counters."""

    def __init__(self, config: TenantConfig, now: float = 0.0):
        self.config = config
        self.bucket = (
            TokenBucket(config.rate, config.burst, now)
            if config.rate is not None
            else None
        )
        self.in_flight = 0
        # Outcome accounting; every submitted request lands in exactly one.
        self.submitted = 0
        self.ok = 0  #: results delivered (within deadline when one was set)
        self.failed = 0  #: settled with a non-quota, non-shed error
        self.quota_rejected = 0
        self.shed = 0
        self.expired = 0  #: deadline ran out while queued/coalesced
        self.coalesced = 0  #: served as a follower of a shared execution

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def weight(self) -> float:
        return self.config.weight

    def check_quota(self, now: float) -> None:
        """Raise :class:`QuotaExceeded` unless this request may enter."""
        config = self.config
        if (
            config.max_in_flight is not None
            and self.in_flight >= config.max_in_flight
        ):
            self.quota_rejected += 1
            raise QuotaExceeded(
                f"tenant {config.name!r} has {self.in_flight} requests in "
                f"flight of {config.max_in_flight} allowed",
                tenant=config.name,
                retry_after_s=0.0,
                reason="in_flight",
            )
        if self.bucket is not None and not self.bucket.try_take(now):
            self.quota_rejected += 1
            raise QuotaExceeded(
                f"tenant {config.name!r} exceeded {config.rate}/s "
                f"(burst {config.burst})",
                tenant=config.name,
                retry_after_s=self.bucket.retry_after(now),
                reason="rate",
            )

    def __repr__(self) -> str:
        return (
            f"TenantSession({self.config.name!r}, in_flight={self.in_flight}, "
            f"ok={self.ok}, quota_rejected={self.quota_rejected}, "
            f"shed={self.shed})"
        )


class TenantRegistry:
    """API-key -> session lookup for every tenant the gateway knows."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._by_key: Dict[str, TenantSession] = {}
        self._by_name: Dict[str, TenantSession] = {}
        self.auth_failures = 0

    def register(self, config: TenantConfig) -> TenantSession:
        if config.api_key in self._by_key:
            raise ServingError(
                f"API key already registered (tenant "
                f"{self._by_key[config.api_key].name!r})"
            )
        if config.name in self._by_name:
            raise ServingError(f"tenant {config.name!r} already registered")
        session = TenantSession(config, now=self._clock())
        self._by_key[config.api_key] = session
        self._by_name[config.name] = session
        return session

    def authenticate(self, api_key: str) -> TenantSession:
        session = self._by_key.get(api_key)
        if session is None:
            self.auth_failures += 1
            raise AuthFailed(f"unknown API key {api_key!r}")
        return session

    def session(self, name: str) -> TenantSession:
        try:
            return self._by_name[name]
        except KeyError:
            raise AuthFailed(f"unknown tenant {name!r}") from None

    @property
    def sessions(self) -> Dict[str, TenantSession]:
        return dict(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)
