"""Request coalescing: concurrent identical queries share one execution.

The in-flight table maps a **tenant-visible key** — ``(backend kind, query
text, options identity, backend content version)`` — to the one
:class:`CoalesceEntry` currently queued or executing for it. The first
request with a fresh key becomes the *leader* and is enqueued for
execution; every later identical request, from *any* tenant, attaches as a
*follower* and never reaches a backend. When the leader's execution
settles, the outcome fans out to every member **exactly once**.

Two rules keep sharing honest:

* the key includes the backend's content version (the same monotonic
  counter E19's :class:`~repro.cache.PlanCache` keys on), so a query
  submitted after a store mutation can never share a pre-mutation
  execution; and
* sharing an *execution* never shares a *deadline* — each member keeps its
  own :class:`~repro.resilience.Deadline`, and a follower whose budget
  runs out before the leader finishes is settled with
  :class:`~repro.errors.TimeoutExceeded`, never handed a late result (the
  gateway enforces this at fan-out).

Entries live from submit to settlement: an entry mid-execution still
accepts followers, which is where most of the duplicate-execution savings
come from under bursty traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ServingError
from repro.sparql.governor import CancelToken

QUEUED = "queued"
RUNNING = "running"

CoalesceKey = Tuple[str, str, Optional[tuple], int]


class CoalesceEntry:
    """One shared execution: a leader plus any number of followers.

    ``cancel`` is the execution's E23 kill switch: the gateway wires it
    into the :class:`~repro.sparql.governor.QueryBudget` it derives for the
    leader's execution, so :meth:`~repro.serving.gateway.Gateway.kill` can
    stop a running entry cooperatively — the engine unwinds at its next
    checkpoint and the outcome fans out through the normal settle path.
    """

    __slots__ = ("key", "members", "state", "cancel")

    def __init__(self, key: CoalesceKey, leader: object):
        self.key = key
        self.members: List[object] = [leader]
        self.state = QUEUED
        self.cancel = CancelToken()

    @property
    def leader(self) -> object:
        return self.members[0]

    @property
    def followers(self) -> List[object]:
        return self.members[1:]

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return (
            f"CoalesceEntry(kind={self.key[0]!r}, members={len(self.members)}, "
            f"state={self.state})"
        )


class Coalescer:
    """The in-flight table; one entry per live tenant-visible key."""

    def __init__(self):
        self._entries: Dict[CoalesceKey, CoalesceEntry] = {}
        self.opened = 0  #: entries created (= executions requested)
        self.attached = 0  #: followers that shared an execution

    def lookup(self, key: CoalesceKey) -> Optional[CoalesceEntry]:
        return self._entries.get(key)

    def open(self, key: CoalesceKey, leader: object) -> CoalesceEntry:
        """Create the entry for a fresh key; *leader* will execute."""
        if key in self._entries:
            raise ServingError(f"coalesce key already in flight: {key!r}")
        entry = CoalesceEntry(key, leader)
        self._entries[key] = entry
        self.opened += 1
        return entry

    def attach(self, entry: CoalesceEntry, follower: object) -> None:
        """Add a follower to a live (queued or running) entry."""
        if self._entries.get(entry.key) is not entry:
            raise ServingError("cannot attach to a settled coalesce entry")
        entry.members.append(follower)
        self.attached += 1

    def close(self, entry: CoalesceEntry) -> None:
        """Retire a settled entry; its key is immediately reusable."""
        live = self._entries.pop(entry.key, None)
        if live is not entry:
            raise ServingError("coalesce entry closed twice")

    @property
    def in_flight(self) -> int:
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"Coalescer(in_flight={len(self._entries)}, opened={self.opened}, "
            f"attached={self.attached})"
        )
