"""The E21 serving soak: one abusive tenant vs everyone, with and without
the gateway.

The same seeded open-loop workload (:mod:`repro.serving.workload` — Zipf
tenant skew, diurnal swell, flash bursts; several times the backend's
capacity at the peaks) is played twice against the same simulated backend
pool on the same discrete-event clock:

* **unprotected** — requests hit the backends directly through one FIFO
  queue: nothing is ever refused, the backlog during overload grows
  without bound, and the heavy tenant's flood inflates every tenant's
  latency equally — the few answers that still make their deadline are
  distributed like the *offered* load, i.e. almost all to the abuser;
* **protected** — requests go through the :class:`~repro.serving.Gateway`:
  per-tenant token buckets clip each tenant near its fair share,
  weighted-fair queueing keeps burst service even, the E18 bulkhead bounds
  the in-gateway population (so queue wait stays under the deadline), and
  coalescing lets concurrent identical queries share executions.

The report measures what the issue asks for: per-tenant goodput and its
Jain fairness index (``(sum x)^2 / (n * sum x^2)`` over per-tenant
within-deadline completions — 1.0 is perfectly even, ``1/n`` is one tenant
taking everything), p99 latency, and duplicate executions avoided by
coalescing. :meth:`ServingSoakReport.verify` enforces the accounting and
**ticket-leak** invariants: every arrival lands in exactly one terminal
bucket, and at the end of the run the gateway must be fully drained — no
queued entry, no live coalesce key, no tenant in-flight residue, and
``tickets_issued == tickets_released`` (a ticket outliving its request
fails the soak).

Everything is a pure function of the seed; ``python -m repro.serving.soak
--smoke`` runs a short protected-vs-unprotected comparison and writes a
``BENCH_E21.json`` snapshot for the CI gate.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.cluster.simclock import Simulation
from repro.errors import QuotaExceeded, ServingError, Shed
from repro.obs import Observability, resolve
from repro.resilience.admission import AdmissionController, PRIORITY_INTERACTIVE
from repro.resilience.breaker import _derive_seed
from repro.resilience.deadline import Deadline
from repro.serving.backends import CallableBackend
from repro.serving.gateway import Gateway, GatewayRequest, OK
from repro.serving.tenant import TenantConfig
from repro.serving.workload import Arrival, WorkloadConfig, generate_arrivals


def jain_index(values) -> float:
    """Jain's fairness index; 1.0 = perfectly even, 1/n = winner-take-all."""
    values = list(values)
    if not values:
        return 0.0
    total = float(sum(values))
    squares = sum(v * v for v in values)
    if squares <= 0.0:
        return 0.0
    return (total * total) / (len(values) * squares)


@dataclass(frozen=True)
class ServingSoakConfig:
    """One soak run. Defaults: ~6x capacity offered at the diurnal mean,
    the heaviest of 8 Zipf(1.5) tenants alone offering ~3x capacity."""

    seed: int = 21
    requests: int = 20_000
    tenants: int = 8
    servers: int = 8
    service_time_s: float = 0.008  #: base per-query service time
    service_spread: float = 0.25  #: per-query multiplier in [1-s, 1+s]
    deadline_s: float = 0.5
    base_rate: float = 6000.0  #: aggregate offered requests/s (mean)
    zipf_s: float = 1.5
    diurnal_amplitude: float = 0.4
    diurnal_period_s: float = 10.0
    burst_count: int = 3
    burst_factor: float = 3.0
    burst_duration_s: float = 2.0
    query_pool: int = 32
    query_zipf_s: float = 1.1
    batch_fraction: float = 0.25
    quota_headroom: float = 1.12  #: tenant rate = fair share * headroom
    quota_burst: float = 32.0
    admission_queue_factor: int = 8  #: bulkhead queue = factor * servers
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ServingError("soak needs >= 1 server")
        if self.service_time_s <= 0 or self.deadline_s <= 0:
            raise ServingError("soak times must be positive")
        if not 0.0 <= self.service_spread < 1.0:
            raise ServingError("service_spread must be in [0, 1)")

    def workload(self) -> WorkloadConfig:
        return WorkloadConfig(
            seed=self.seed,
            tenants=self.tenants,
            requests=self.requests,
            zipf_s=self.zipf_s,
            base_rate=self.base_rate,
            diurnal_amplitude=self.diurnal_amplitude,
            diurnal_period_s=self.diurnal_period_s,
            burst_count=self.burst_count,
            burst_factor=self.burst_factor,
            burst_duration_s=self.burst_duration_s,
            query_pool=self.query_pool,
            query_zipf_s=self.query_zipf_s,
            batch_fraction=self.batch_fraction,
        )

    def capacity_rps(self) -> float:
        """Backend pool throughput at the mean service time."""
        return self.servers / self.service_time_s

    def tenant_rate_quota(self) -> float:
        return self.capacity_rps() / self.tenants * self.quota_headroom

    def service_times(self) -> List[float]:
        """Deterministic per-query service times (same in both modes)."""
        rng = random.Random(_derive_seed(self.seed, "serving-service"))
        return [
            self.service_time_s
            * rng.uniform(1.0 - self.service_spread, 1.0 + self.service_spread)
            for _ in range(self.query_pool)
        ]


@dataclass
class TenantOutcome:
    """One tenant's ledger; every arrival lands in exactly one bucket."""

    name: str
    arrivals: int = 0
    ok: int = 0  #: result delivered within the deadline
    late: int = 0  #: result delivered past the deadline (unprotected only)
    expired: int = 0  #: deadline ran out while queued/coalesced
    shed: int = 0  #: typed Shed (bulkhead full)
    quota_rejected: int = 0  #: typed QuotaExceeded (tenant's own limits)
    coalesced: int = 0  #: rode another request's execution as a follower

    @property
    def accounted(self) -> int:
        return self.ok + self.late + self.expired + self.shed + self.quota_rejected


@dataclass
class ServingSoakReport:
    """Outcome of one soak run (one mode)."""

    protected: bool
    per_tenant: Dict[str, TenantOutcome] = field(default_factory=dict)
    executions: int = 0  #: backend executions actually run
    duration_s: float = 0.0
    events_processed: int = 0
    latencies_s: List[float] = field(default_factory=list)
    #: leftover state at the end of the run; verify() requires all zeros
    residual: Dict[str, int] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------

    def total(self, bucket: str) -> int:
        return sum(getattr(t, bucket) for t in self.per_tenant.values())

    @property
    def arrivals(self) -> int:
        return self.total("arrivals")

    @property
    def ok(self) -> int:
        return self.total("ok")

    @property
    def served(self) -> int:
        """Requests that received a result (within deadline or late)."""
        return self.total("ok") + self.total("late")

    @property
    def coalesced(self) -> int:
        return self.total("coalesced")

    @property
    def duplicate_executions_avoided(self) -> int:
        """Requests served without their own backend execution."""
        return self.served - self.executions if self.protected else 0

    @property
    def jain_goodput(self) -> float:
        """Jain's index over per-tenant within-deadline completions."""
        return jain_index(t.ok for t in self.per_tenant.values())

    def latency_percentile(self, q: float) -> float:
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[index]

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(0.99)

    # -- invariants ----------------------------------------------------

    def verify(self) -> None:
        """Raise :class:`ServingError` on any accounting/leak violation."""
        for outcome in self.per_tenant.values():
            if outcome.accounted != outcome.arrivals:
                raise ServingError(
                    f"tenant {outcome.name!r} accounting leak: "
                    f"{outcome.arrivals} arrivals, {outcome.accounted} outcomes"
                )
        if len(self.latencies_s) != self.served:
            raise ServingError("latency samples disagree with completions")
        for name, value in self.residual.items():
            if value != 0:
                raise ServingError(f"soak did not drain: {name}={value}")
        if self.events_processed < self.arrivals:
            raise ServingError("simulation ended before processing arrivals")

    def summary(self) -> Dict[str, float]:
        return {
            "protected": float(self.protected),
            "arrivals": float(self.arrivals),
            "ok": float(self.ok),
            "late": float(self.total("late")),
            "expired": float(self.total("expired")),
            "shed": float(self.total("shed")),
            "quota_rejected": float(self.total("quota_rejected")),
            "coalesced": float(self.coalesced),
            "executions": float(self.executions),
            "duplicate_executions_avoided": float(
                self.duplicate_executions_avoided
            ),
            "jain_goodput": self.jain_goodput,
            "p99_latency_s": self.p99_latency_s,
            "duration_s": self.duration_s,
        }

    def tenant_rows(self) -> List[Dict[str, object]]:
        return [
            {
                "tenant": t.name, "arrivals": t.arrivals, "ok": t.ok,
                "late": t.late, "expired": t.expired, "shed": t.shed,
                "quota": t.quota_rejected, "coalesced": t.coalesced,
            }
            for _, t in sorted(self.per_tenant.items())
        ]


# ---------------------------------------------------------------------------
# Protected mode: through the gateway
# ---------------------------------------------------------------------------

class _ProtectedSoak:
    def __init__(self, config: ServingSoakConfig,
                 obs: Optional[Observability] = None):
        self.config = config
        self.sim = Simulation()
        self.obs = resolve(obs)
        self.service_times = config.service_times()
        self.gateway = Gateway(
            CallableBackend(lambda q: f"result:{q}", kind="store"),
            clock=lambda: self.sim.now,
            admission=AdmissionController(
                max_in_flight=config.servers,
                max_queue=config.admission_queue_factor * config.servers,
                priority_floor=PRIORITY_INTERACTIVE,
                scope="serving",
                obs=obs,
            ),
            coalesce=config.coalesce,
            obs=obs,
        )
        rate = config.tenant_rate_quota()
        for name in config.workload().tenant_names():
            self.gateway.register_tenant(
                TenantConfig(
                    name=name,
                    api_key=f"key-{name}",
                    weight=1.0,
                    rate=rate,
                    burst=config.quota_burst,
                )
            )
        self.free_servers = config.servers
        self.report = ServingSoakReport(protected=True)
        self.report.per_tenant = {
            name: TenantOutcome(name)
            for name in config.workload().tenant_names()
        }

    def run(self) -> ServingSoakReport:
        names = self.config.workload().tenant_names()
        for arrival in generate_arrivals(self.config.workload()):
            self.sim.schedule_at(
                arrival.at_s,
                lambda arrival=arrival, name=names[arrival.tenant]: (
                    self._arrive(arrival, name)
                ),
            )
        self.sim.run()
        gateway = self.gateway
        gateway.assert_drained()  # ticket-leak / drain invariant, hard fail
        report = self.report
        for name, session in gateway.tenants.sessions.items():
            outcome = report.per_tenant[name]
            outcome.ok = session.ok
            outcome.expired = session.expired
            outcome.shed = session.shed
            outcome.quota_rejected = session.quota_rejected
            outcome.coalesced = session.coalesced
            # session.failed stays 0: the synthetic backend never errors.
            if session.failed:
                raise ServingError(
                    f"unexpected backend failures for {name}: {session.failed}"
                )
        report.executions = gateway.executions
        report.duration_s = self.sim.now
        report.events_processed = self.sim.events_processed
        report.residual["queued"] = len(gateway.queue)
        report.residual["coalesce_in_flight"] = gateway.coalescer.in_flight
        report.residual["ticket_leak"] = (
            gateway.tickets_issued - gateway.tickets_released
        )
        report.residual["busy_servers"] = (
            self.config.servers - self.free_servers
        )
        return report

    def _arrive(self, arrival: Arrival, tenant_name: str) -> None:
        self.report.per_tenant[tenant_name].arrivals += 1
        request = GatewayRequest(
            api_key=f"key-{tenant_name}",
            query=f"q{arrival.query}",
            kind="store",
            priority=arrival.priority,
            deadline=Deadline(
                self.config.deadline_s,
                clock=lambda: self.sim.now,
                label=tenant_name,
            ),
        )
        try:
            self.gateway.submit(request)
        except (QuotaExceeded, Shed):
            return  # counted per-tenant by the gateway's sessions
        self._pump()

    def _pump(self) -> None:
        while self.free_servers > 0:
            entry = self.gateway.next_dispatch()
            if entry is None:
                return
            self.free_servers -= 1
            query_index = int(entry.leader.query[1:])
            self.sim.schedule(
                self.service_times[query_index],
                lambda entry=entry: self._finish(entry),
            )

    def _finish(self, entry) -> None:
        self.free_servers += 1
        query = entry.leader.query
        settled = self.gateway.complete(entry, result=f"result:{query}")
        now = self.sim.now
        for member in settled:
            if member.category == OK:
                self.report.latencies_s.append(now - member.submitted_at)
        self._pump()


# ---------------------------------------------------------------------------
# Unprotected mode: straight to the backends, one FIFO
# ---------------------------------------------------------------------------

@dataclass
class _DirectRequest:
    arrived_at: float
    tenant: str
    query: int


class _UnprotectedSoak:
    def __init__(self, config: ServingSoakConfig):
        self.config = config
        self.sim = Simulation()
        self.service_times = config.service_times()
        self.queue: Deque[_DirectRequest] = deque()
        self.free_servers = config.servers
        self.report = ServingSoakReport(protected=False)
        self.report.per_tenant = {
            name: TenantOutcome(name)
            for name in config.workload().tenant_names()
        }

    def run(self) -> ServingSoakReport:
        names = self.config.workload().tenant_names()
        for arrival in generate_arrivals(self.config.workload()):
            request = _DirectRequest(
                arrived_at=arrival.at_s,
                tenant=names[arrival.tenant],
                query=arrival.query,
            )
            self.sim.schedule_at(
                arrival.at_s, lambda request=request: self._arrive(request)
            )
        self.sim.run()
        report = self.report
        report.duration_s = self.sim.now
        report.events_processed = self.sim.events_processed
        report.residual["queued"] = len(self.queue)
        report.residual["busy_servers"] = (
            self.config.servers - self.free_servers
        )
        return report

    def _arrive(self, request: _DirectRequest) -> None:
        self.report.per_tenant[request.tenant].arrivals += 1
        self.queue.append(request)
        self._pump()

    def _pump(self) -> None:
        while self.free_servers > 0 and self.queue:
            request = self.queue.popleft()
            self.free_servers -= 1
            self.sim.schedule(
                self.service_times[request.query],
                lambda request=request: self._finish(request),
            )

    def _finish(self, request: _DirectRequest) -> None:
        self.free_servers += 1
        self.report.executions += 1
        latency = self.sim.now - request.arrived_at
        self.report.latencies_s.append(latency)
        outcome = self.report.per_tenant[request.tenant]
        if latency <= self.config.deadline_s:
            outcome.ok += 1
        else:
            outcome.late += 1
        self._pump()


def run_serving_soak(
    config: ServingSoakConfig,
    protected: bool = True,
    obs: Optional[Observability] = None,
) -> ServingSoakReport:
    """Run one deterministic soak; the report is verify()-able."""
    if protected:
        return _ProtectedSoak(config, obs=obs).run()
    return _UnprotectedSoak(config).run()


def run_comparison(
    config: ServingSoakConfig, obs: Optional[Observability] = None
) -> Tuple[ServingSoakReport, ServingSoakReport]:
    """(unprotected, protected) under the same workload; both verified."""
    bare = run_serving_soak(config, protected=False)
    guarded = run_serving_soak(config, protected=True, obs=obs)
    bare.verify()
    guarded.verify()
    return bare, guarded


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.serving.soak [--smoke] [--seed N] [--requests N]``"""
    import argparse

    parser = argparse.ArgumentParser(
        description="E21 serving-gateway soak: protected vs unprotected"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="short CI-sized run")
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args(argv)
    requests = args.requests
    if requests is None:
        requests = 12_000 if args.smoke else 120_000
    config = ServingSoakConfig(seed=args.seed, requests=requests)
    obs = Observability(clock=lambda: 0.0)
    bare, guarded = run_comparison(config, obs=obs)
    for label, report in (("unprotected", bare), ("protected", guarded)):
        print(f"[{label}] " + " ".join(
            f"{key}={value:.5g}" for key, value in report.summary().items()
            if key != "protected"
        ))
    from repro.obs import bench_snapshot_path, write_snapshot

    path = write_snapshot(
        bench_snapshot_path("E21"),
        obs,
        meta={
            "experiment": "E21",
            "seed": config.seed,
            "requests": config.requests,
            "tenants": config.tenants,
            "jain_protected": guarded.jain_goodput,
            "jain_unprotected": bare.jain_goodput,
            "p99_protected_s": guarded.p99_latency_s,
            "p99_unprotected_s": bare.p99_latency_s,
            "duplicate_executions_avoided": (
                guarded.duplicate_executions_avoided
            ),
            "executions_protected": guarded.executions,
            "executions_unprotected": bare.executions,
        },
    )
    print(f"[obs] snapshot written: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
