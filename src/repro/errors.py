"""Shared exception hierarchy for the ExtremeEarth reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid geometry construction or operation."""


class WKTParseError(GeometryError):
    """Malformed Well-Known Text input."""


class RDFError(ReproError):
    """Invalid RDF term, triple, or serialization."""


class SPARQLError(ReproError):
    """SPARQL parsing or evaluation failure."""


class SPARQLSyntaxError(SPARQLError):
    """Malformed SPARQL query text."""


class RasterError(ReproError):
    """Invalid raster grid operation."""


class StorageError(ReproError):
    """HopsFS-sim filesystem or metadata store failure."""

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message if path is None else f"{message}: {path}")
        self.path = path


class ClusterError(ReproError):
    """Cluster simulator misconfiguration or scheduling failure."""


class MLError(ReproError):
    """Model construction or training failure."""


class MappingError(ReproError):
    """GeoTriples mapping definition or execution failure."""


class FederationError(ReproError):
    """Federated query planning or execution failure."""


class CatalogError(ReproError):
    """Semantic catalogue ingestion or query failure."""


class PipelineError(ReproError):
    """End-to-end pipeline orchestration failure."""
