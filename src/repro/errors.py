"""Shared exception hierarchy for the ExtremeEarth reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.

The hierarchy::

    ReproError                      everything this library raises
    ├── GeometryError               geometry construction/operations
    │   └── WKTParseError           malformed WKT text
    ├── RDFError / SPARQLError      RDF terms, SPARQL parse/eval
    │   ├── SPARQLSyntaxError
    │   ├── QueryBudgetExceeded     a governed query overran its resident
    │   │                           row/byte budget (E23; also a FaultError,
    │   │                           NOT retryable — the same query will blow
    │   │                           the same cap again)
    │   ├── QueryCancelled          a governed query observed its cooperative
    │   │                           cancellation token at a checkpoint (E23;
    │   │                           also a FaultError, retryable)
    │   └── PartitionUnavailable    a distributed query needed a store
    │                               partition with no live replica left
    │                               (E25; also a FaultError, retryable —
    │                               replicas may come back or be re-placed)
    ├── RasterError                 raster grids
    ├── DatacubeError               Earth System Data Cube (E24): schema
    │                               mismatch, unknown variable, or an append
    │                               that would rewrite a sealed chunk
    ├── StorageError                HopsFS-sim filesystem/metadata
    │   └── DataCorruption          a detected integrity violation (E20):
    │       ├── WALCorrupted        a non-tail WAL record failed its CRC
    │       ├── SnapshotCorrupted   a shard snapshot failed its checksum and
    │       │                       no complete WAL remains to replay
    │       └── BlockCorruption     every replica of a block failed
    │                               verification — nothing intact to serve
    ├── ClusterError                cluster simulator
    ├── MLError                     model construction/training
    ├── MappingError                GeoTriples mappings
    ├── FederationError             federated query planning/execution
    ├── CatalogError                semantic catalogue
    ├── PipelineError               pipeline orchestration
    ├── ObsError                    observability (metrics/tracing/snapshots)
    ├── ServingError                request gateway (E21):
    │   ├── AuthFailed              unknown/revoked API key — not retryable
    │   ├── QuotaExceeded           a tenant's token bucket or in-flight cap
    │   │                           rejected the request (also a FaultError,
    │   │                           retryable; carries retry_after_s)
    │   └── Shed                    the gateway translated an internal
    │                               Overloaded/CircuitOpen into a typed
    │                               per-tenant rejection (also a FaultError,
    │                               retryable; carries retry_after_s)
    └── FaultError                  injected infrastructure faults
        ├── TimeoutExceeded         a call/retry loop overran its deadline,
        │                           or a Deadline budget ran out mid-request
        ├── RetryExhausted          a RetryPolicy gave up (carries attempt
        │                           count and the last underlying error)
        ├── CircuitOpen             a CircuitBreaker is open: the call failed
        │                           fast instead of hammering a flapping
        │                           dependency (retryable — the breaker may
        │                           close again after its recovery window)
        ├── Overloaded              an AdmissionController shed the request
        │                           (bulkhead full or low-priority under
        │                           pressure); retryable after backoff
        └── SimulatedCrash          the durability harness killed the process
                                    at a WAL record boundary; never retryable
                                    — the caller is dead, recovery is the
                                    only way forward

Fault-injection errors (:mod:`repro.faults`) deserve a note: subsystems that
participate in chaos experiments raise subclasses that *also* derive from
their domain error (e.g. ``ShardUnavailable(StorageError, FaultError)``,
``EndpointUnavailable(FederationError, FaultError)``), so existing
``except StorageError`` handlers keep working while
:class:`~repro.faults.retry.RetryPolicy` can recognise what is retryable via
the ``retryable`` attribute on :class:`FaultError`.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GeometryError(ReproError):
    """Invalid geometry construction or operation."""


class WKTParseError(GeometryError):
    """Malformed Well-Known Text input."""


class RDFError(ReproError):
    """Invalid RDF term, triple, or serialization."""


class SPARQLError(ReproError):
    """SPARQL parsing or evaluation failure."""


class SPARQLSyntaxError(SPARQLError):
    """Malformed SPARQL query text."""


class RasterError(ReproError):
    """Invalid raster grid operation."""


class StorageError(ReproError):
    """HopsFS-sim filesystem or metadata store failure."""

    def __init__(self, message: str, path: str | None = None):
        super().__init__(message if path is None else f"{message}: {path}")
        self.path = path


class DataCorruption(StorageError):
    """A detected data-integrity violation (experiment E20).

    Deliberately *not* a :class:`FaultError`: corruption that checksums catch
    is a storage-state condition, not a transient call failure — retrying the
    same read against the same corrupt bytes can never succeed, so
    :class:`~repro.faults.retry.RetryPolicy` must not loop on it. Recovery
    (replica failover, scrub/repair, WAL replay) is the correct response.
    """


class WALCorrupted(DataCorruption):
    """A write-ahead-log record *before the tail* failed its CRC.

    A torn tail is expected after a crash and silently discarded; a bad
    record with valid records after it means the log itself rotted, which no
    replay can paper over.
    """

    def __init__(self, message: str, shard: int | None = None,
                 record_index: int | None = None):
        super().__init__(message)
        self.shard = shard
        self.record_index = record_index


class SnapshotCorrupted(DataCorruption):
    """A shard snapshot failed verification and no complete WAL remains.

    With the full log still on disk a corrupt snapshot only costs a longer
    replay; this error means the prefix was truncated away, so the shard's
    state is genuinely unrecoverable.
    """

    def __init__(self, message: str, shard: int | None = None):
        super().__init__(message)
        self.shard = shard


class BlockCorruption(DataCorruption):
    """Every replica of a block failed its content checksum."""

    def __init__(self, message: str, block_id: int | None = None):
        super().__init__(message)
        self.block_id = block_id


class ClusterError(ReproError):
    """Cluster simulator misconfiguration or scheduling failure."""


class MLError(ReproError):
    """Model construction or training failure."""


class MappingError(ReproError):
    """GeoTriples mapping definition or execution failure."""


class FederationError(ReproError):
    """Federated query planning or execution failure."""


class CatalogError(ReproError):
    """Semantic catalogue ingestion or query failure."""


class PipelineError(ReproError):
    """End-to-end pipeline orchestration failure."""


class DatacubeError(ReproError):
    """Earth System Data Cube misuse (see :mod:`repro.datacube`, E24):
    schema mismatch on append, unknown variable, degenerate selection,
    or an append that would rewrite a sealed chunk."""


class ObsError(ReproError):
    """Observability misuse: bad instrument, span, or snapshot document."""


class CacheError(ReproError):
    """Cache misconfiguration (bad capacity, TTL without a clock, ...)."""


class ServingError(ReproError):
    """Request-gateway failure (see :mod:`repro.serving`, experiment E21).

    The gateway's contract is that tenants see *typed, per-tenant* errors
    with actionable hints — never the internals (:class:`Overloaded`,
    :class:`CircuitOpen`) of the layers behind it.
    """


class AuthFailed(ServingError):
    """The request's API key matched no registered tenant.

    Deliberately *not* retryable and not a :class:`FaultError`: retrying the
    same bad credential can never succeed, and backoff loops must not spin
    on it.
    """


class FaultError(ReproError):
    """An injected infrastructure fault (see :mod:`repro.faults`).

    ``retryable`` tells :class:`~repro.faults.retry.RetryPolicy` whether
    another attempt can possibly succeed; permanent faults set it False.
    """

    retryable: bool = True


class TimeoutExceeded(FaultError):
    """A call (or a retry loop's deadline) ran out of time."""

    retryable = True


class RetryExhausted(FaultError):
    """A :class:`~repro.faults.retry.RetryPolicy` gave up.

    Carries the attempt accounting: ``attempts`` made and the ``last_error``
    that caused the final failure (also chained as ``__cause__``).
    """

    retryable = False

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: Optional[BaseException] = None,
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class CircuitOpen(FaultError):
    """A :class:`~repro.resilience.CircuitBreaker` refused the call.

    Raised *instead of* attempting a dependency whose breaker is open, so
    callers fail in microseconds rather than burning a timeout against a
    dependency that is known to be down. Retryable: the breaker re-admits
    probes after its recovery window, so a later attempt can succeed.
    """

    retryable = True

    def __init__(self, message: str, breaker: Optional[str] = None):
        super().__init__(message)
        self.breaker = breaker


class Overloaded(FaultError):
    """An :class:`~repro.resilience.AdmissionController` shed the request.

    The bulkhead was full (``reason="capacity"``) or the request's priority
    class was below the floor while the controller was under pressure
    (``reason="pressure"``). Retryable after backoff — shedding is exactly
    the signal that the serving path needs breathing room *now*.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        scope: Optional[str] = None,
        priority: Optional[int] = None,
        reason: str = "capacity",
    ):
        super().__init__(message)
        self.scope = scope
        self.priority = priority
        self.reason = reason


class QuotaExceeded(ServingError, FaultError):
    """The gateway rejected a request at a tenant's own limits.

    ``reason`` is ``"rate"`` (token bucket empty) or ``"in_flight"`` (the
    tenant's concurrent-request cap is full). Retryable: ``retry_after_s``
    tells the tenant when capacity returns — for a rate rejection it is the
    exact time until the bucket refills one token, so a well-behaved client
    that waits it out is never rejected twice in a row.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        tenant: Optional[str] = None,
        retry_after_s: float = 0.0,
        reason: str = "rate",
    ):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s
        self.reason = reason


class Shed(ServingError, FaultError):
    """The gateway shed a request for platform (not tenant) reasons.

    Raised where an internal :class:`Overloaded` (bulkhead full) or
    :class:`CircuitOpen` (backend breaker open) would otherwise escape to a
    tenant. ``reason`` preserves the cause (``"overloaded"``,
    ``"breaker_open"``); ``retry_after_s`` is the gateway's backoff hint.
    Retryable — shedding is precisely the signal to come back later.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        tenant: Optional[str] = None,
        retry_after_s: float = 0.0,
        reason: str = "overloaded",
    ):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = retry_after_s
        self.reason = reason


class QueryBudgetExceeded(SPARQLError, FaultError):
    """A governed query overran its resource budget (experiment E23).

    Raised by a :class:`~repro.sparql.governor.QueryBudget` checkpoint when
    the query's resident rows or modelled bytes exceed the configured cap —
    *before* the offending allocation is made, in the vector engine's join
    pre-admission check. Not retryable: the same query against the same data
    will blow the same cap again; the tenant must narrow the query (or the
    operator must raise the cap). ``resource`` is ``"rows"`` or ``"bytes"``;
    ``observed``/``limit`` carry the accounting at the moment of the kill.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        resource: str = "rows",
        observed: Optional[int] = None,
        limit: Optional[int] = None,
    ):
        super().__init__(message)
        self.resource = resource
        self.observed = observed
        self.limit = limit


class QueryCancelled(SPARQLError, FaultError):
    """A governed query observed its cancellation token (experiment E23).

    Cooperative: the engine notices the flipped
    :class:`~repro.sparql.governor.CancelToken` at its next checkpoint and
    unwinds — nothing is killed mid-allocation. Retryable: cancellation says
    nothing about whether a fresh execution would succeed (the gateway kills
    coalesced leaders for platform reasons, not because the query is bad).
    """

    retryable = True

    def __init__(self, message: str, reason: Optional[str] = None):
        super().__init__(message)
        self.reason = reason


class PartitionUnavailable(SPARQLError, FaultError):
    """A distributed query lost every replica of a partition it needs (E25).

    Raised by :mod:`repro.sparql.dist` when a scan's partition has no live,
    reachable replica and retries are exhausted — the range-partitioned
    store's analogue of HopsFS losing every copy of a block. Retryable: a
    later execution may find the nodes recovered, the network partition
    healed, or the data re-placed; the *query itself* is fine. The gateway
    translates it to a per-tenant :class:`Shed` so tenants never see store
    topology. ``partition`` is the partition index; ``replicas`` the node
    ids that held copies.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        partition: Optional[int] = None,
        replicas: tuple = (),
    ):
        super().__init__(message)
        self.partition = partition
        self.replicas = tuple(replicas)


class SimulatedCrash(FaultError):
    """The durability harness killed the store at a WAL record boundary.

    Raised by :class:`~repro.durability.DurabilityLayer` when a crash point
    trips mid-append. Never retryable: the "process" is gone, and the whole
    point of experiment E20 is proving that ``crash()`` + ``recover()`` — not
    another attempt — restores every committed write.
    """

    retryable = False

    def __init__(self, message: str, records_durable: int = 0):
        super().__init__(message)
        self.records_durable = records_durable
