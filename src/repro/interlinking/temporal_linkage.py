"""Temporal link discovery: the Silk temporal extension of [21].

"Discovering Spatial and Temporal Links among RDF Data" adds time to link
discovery: entities that carry validity periods get Allen-relation links
(``before``, ``after``, ``during``, ``overlaps``). Candidate generation uses
the :class:`~repro.geosparql.temporal.IntervalIndex` instead of an equigrid —
only pairs whose periods can interact (padded by the largest relation
distance of interest) are compared.

Spatio-temporal discovery composes both dimensions: a pair must satisfy a
spatial *and* a temporal constraint (e.g. "observations of the same area in
overlapping periods"), with candidates filtered by both indexes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.geometry import Geometry, intersects
from repro.geosparql.temporal import (
    IntervalIndex,
    Period,
    period_before,
    period_during,
    period_overlaps,
)
from repro.interlinking.linkage import Link, LinkageResult

TEMPORAL_RELATIONS = ("before", "after", "during", "overlaps")


@dataclass(frozen=True)
class TemporalEntity:
    """An entity with a validity period and (optionally) a geometry."""

    entity_id: str
    period: Period
    geometry: Optional[Geometry] = None

    def __post_init__(self) -> None:
        if self.period[0] > self.period[1]:
            raise ReproError(
                f"entity {self.entity_id!r} has start after end"
            )


def _relations_for(a: Period, b: Period) -> List[str]:
    relations: List[str] = []
    if period_before(a, b):
        relations.append("before")
    if period_before(b, a):
        relations.append("after")
    if period_overlaps(a, b):
        relations.append("overlaps")
        if period_during(a, b):
            relations.append("during")
    return relations


def discover_temporal_links(
    sources: Sequence[TemporalEntity],
    targets: Sequence[TemporalEntity],
    relations: Sequence[str] = ("overlaps", "during"),
    method: str = "index",
    before_horizon_days: float = 0.0,
) -> LinkageResult:
    """Discover Allen-relation links between two entity collections.

    ``relations`` selects which link types to emit. ``overlaps``/``during``
    candidates come from the interval index; ``before``/``after`` links are
    only emitted within ``before_horizon_days`` of each other (an unbounded
    "everything is before everything" link set is useless), and the index
    query is padded accordingly. ``method="brute_force"`` compares all pairs.
    """
    unknown = set(relations) - set(TEMPORAL_RELATIONS)
    if unknown:
        raise ReproError(f"unknown temporal relations {sorted(unknown)}")
    if method not in ("index", "brute_force"):
        raise ReproError(f"unknown method {method!r}")
    wants_order = bool({"before", "after"} & set(relations))
    if wants_order and before_horizon_days <= 0:
        raise ReproError(
            "before/after links require a positive before_horizon_days"
        )

    start_clock = time.perf_counter()
    if method == "brute_force":
        pairs = [(i, j) for i in range(len(sources)) for j in range(len(targets))]
    else:
        index = IntervalIndex.build(
            [(target.period, j) for j, target in enumerate(targets)]
        )
        # One extra second: the index query is half-open, but a target
        # starting exactly at `end + horizon` is still within the horizon.
        pad = timedelta(days=before_horizon_days, seconds=1)
        pairs = []
        for i, source in enumerate(sources):
            query = (source.period[0] - pad, source.period[1] + pad)
            for j in index.overlapping(query):
                pairs.append((i, j))

    horizon = timedelta(days=before_horizon_days)
    links: List[Link] = []
    comparisons = 0
    for i, j in pairs:
        source, target = sources[i], targets[j]
        if source.entity_id == target.entity_id:
            continue
        comparisons += 1
        for relation in _relations_for(source.period, target.period):
            if relation not in relations:
                continue
            if relation == "before" and (
                target.period[0] - source.period[1] > horizon
            ):
                continue
            if relation == "after" and (
                source.period[0] - target.period[1] > horizon
            ):
                continue
            links.append(Link(source.entity_id, relation, target.entity_id))
    return LinkageResult(
        links=links,
        candidate_pairs=len(pairs),
        comparisons=comparisons,
        elapsed_s=time.perf_counter() - start_clock,
    )


def discover_spatiotemporal_links(
    sources: Sequence[TemporalEntity],
    targets: Sequence[TemporalEntity],
    relation_name: str = "cooccurs",
) -> LinkageResult:
    """Links for pairs that overlap in *both* space and time.

    The composition [21] builds toward: temporal candidates from the
    interval index, then the exact spatial test — "observations of the same
    place at the same time".
    """
    if any(e.geometry is None for e in list(sources) + list(targets)):
        raise ReproError("spatiotemporal discovery requires geometries")
    start_clock = time.perf_counter()
    index = IntervalIndex.build(
        [(target.period, j) for j, target in enumerate(targets)]
    )
    links: List[Link] = []
    comparisons = 0
    candidates = 0
    for i, source in enumerate(sources):
        for j in index.overlapping(source.period):
            candidates += 1
            target = targets[j]
            if source.entity_id == target.entity_id:
                continue
            # Cheap bbox reject before the exact geometry test.
            if not source.geometry.bbox.intersects(target.geometry.bbox):
                continue
            comparisons += 1
            if intersects(source.geometry, target.geometry):
                links.append(Link(source.entity_id, relation_name, target.entity_id))
    return LinkageResult(
        links=links,
        candidate_pairs=candidates,
        comparisons=comparisons,
        elapsed_s=time.perf_counter() - start_clock,
    )
