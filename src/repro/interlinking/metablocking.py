"""Meta-blocking: pruning the candidate-pair block graph.

After blocking, each candidate pair is a weighted edge in the block graph
(weight = evidence, here the number of shared cells normalised by the pair's
combined cell footprint — a Jaccard-style scheme). Weight-edge pruning keeps
edges above a fraction of the per-node maximum weight, the WEP/WNP family
from the multi-core meta-blocking paper [19].

For spatial blocking the shared-cell count correlates with bbox overlap, so
pruning drops pairs that merely graze each other in one cell — at a small,
measurable recall cost (experiment E7 reports it).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.interlinking.blocking import CandidatePair


def meta_blocking(
    candidate_pairs: List[CandidatePair],
    common_blocks: Dict[CandidatePair, int],
    keep_fraction: float = 0.5,
) -> List[CandidatePair]:
    """Prune pairs whose evidence is below ``keep_fraction`` of the best
    evidence seen by *both* endpoints (weighted node pruning).

    ``keep_fraction=0`` keeps everything; ``1.0`` keeps only each node's
    strongest edges.
    """
    if not 0.0 <= keep_fraction <= 1.0:
        raise ReproError("keep_fraction must be in [0, 1]")
    if not candidate_pairs:
        return []

    best_source: Dict[int, int] = defaultdict(int)
    best_target: Dict[int, int] = defaultdict(int)
    for (i, j) in candidate_pairs:
        weight = common_blocks.get((i, j), 1)
        best_source[i] = max(best_source[i], weight)
        best_target[j] = max(best_target[j], weight)

    kept: List[CandidatePair] = []
    for (i, j) in candidate_pairs:
        weight = common_blocks.get((i, j), 1)
        threshold = keep_fraction * min(best_source[i], best_target[j])
        if weight >= threshold:
            kept.append((i, j))
    return kept
