"""Spatial blocking: candidate generation via an equigrid.

Every entity is registered in each grid cell its bounding box overlaps; only
pairs sharing at least one cell become candidates. Cell size trades recall
risk (none here — bbox overlap implies a shared cell when the cell grid
covers the data) against candidate count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.geometry import Geometry, GridIndex

CandidatePair = Tuple[int, int]  # (source index, target index)


@dataclass(frozen=True)
class SpatialEntity:
    """An entity to interlink: an identifier plus a geometry."""

    entity_id: str
    geometry: Geometry


def brute_force_pairs(
    sources: Sequence[SpatialEntity], targets: Sequence[SpatialEntity]
) -> List[CandidatePair]:
    """All cross-product pairs — the baseline candidate set."""
    return [(i, j) for i in range(len(sources)) for j in range(len(targets))]


def spatial_blocking(
    sources: Sequence[SpatialEntity],
    targets: Sequence[SpatialEntity],
    cell_size: float,
) -> Tuple[List[CandidatePair], Dict[CandidatePair, int]]:
    """Equigrid blocking.

    Returns (candidate pairs, common-block counts). A pair appears if source
    and target bboxes share a cell; the count of shared cells feeds
    meta-blocking. Pairs whose boxes do not even intersect are dropped
    immediately (cheap exact pre-filter).
    """
    if cell_size <= 0:
        raise ReproError("cell_size must be positive")
    index: GridIndex[int] = GridIndex(cell_size)
    for j, target in enumerate(targets):
        index.insert(target.geometry.bbox, j)

    common_blocks: Dict[CandidatePair, int] = {}
    source_cells: GridIndex[int] = GridIndex(cell_size)
    for i, source in enumerate(sources):
        source_cells.insert(source.geometry.bbox, i)

    # Walk cells: each cell contributes source x target pairs within it.
    target_by_cell: Dict[Tuple[int, int], List[int]] = {
        key: [item for _, item in entries] for key, entries in index.cells()
    }
    for key, entries in source_cells.cells():
        target_items = target_by_cell.get(key)
        if not target_items:
            continue
        for source_box, i in entries:
            for j in target_items:
                if source_box.intersects(targets[j].geometry.bbox):
                    pair = (i, j)
                    common_blocks[pair] = common_blocks.get(pair, 0) + 1
    return list(common_blocks.keys()), common_blocks
