"""Spatial relation discovery over candidate pairs."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.geometry import contains, distance, intersects, within
from repro.interlinking.blocking import (
    CandidatePair,
    SpatialEntity,
    brute_force_pairs,
    spatial_blocking,
)
from repro.interlinking.metablocking import meta_blocking

#: Relations discovered between entity geometries.
RELATIONS = ("intersects", "contains", "within", "near")


@dataclass(frozen=True)
class Link:
    """A discovered relation between a source and a target entity."""

    source_id: str
    relation: str
    target_id: str


@dataclass
class LinkageResult:
    """Discovered links plus the work accounting E7 reports."""

    links: List[Link]
    candidate_pairs: int
    comparisons: int
    elapsed_s: float

    def by_relation(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for link in self.links:
            counts[link.relation] = counts.get(link.relation, 0) + 1
        return counts


def _relations_for(
    source: SpatialEntity, target: SpatialEntity, near_distance: float
) -> List[str]:
    found: List[str] = []
    if intersects(source.geometry, target.geometry):
        found.append("intersects")
        if contains(source.geometry, target.geometry):
            found.append("contains")
        if within(source.geometry, target.geometry):
            found.append("within")
    elif near_distance > 0 and distance(source.geometry, target.geometry) <= near_distance:
        found.append("near")
    return found


def discover_links(
    sources: Sequence[SpatialEntity],
    targets: Sequence[SpatialEntity],
    method: str = "blocking",
    cell_size: Optional[float] = None,
    meta_keep_fraction: float = 0.0,
    near_distance: float = 0.0,
) -> LinkageResult:
    """Discover spatial relations between two entity collections.

    ``method``: ``"brute_force"`` compares all pairs; ``"blocking"`` uses the
    equigrid; adding ``meta_keep_fraction > 0`` applies meta-blocking
    pruning on top. ``near_distance > 0`` additionally emits ``near`` links
    for disjoint-but-close pairs (note: blocking can only find near pairs
    whose boxes share a cell, so use a cell size >= near_distance).
    """
    if method not in ("brute_force", "blocking"):
        raise ReproError(f"unknown linkage method {method!r}")
    start = time.perf_counter()
    if method == "brute_force":
        pairs: List[CandidatePair] = brute_force_pairs(sources, targets)
    else:
        if cell_size is None:
            cell_size = _default_cell_size(sources, targets)
        if near_distance > 0:
            # Grow boxes so near pairs still co-occur in some cell.
            sources = [
                SpatialEntity(e.entity_id, _BoxProxy(e.geometry, near_distance / 2))
                for e in sources
            ]
            targets = [
                SpatialEntity(e.entity_id, _BoxProxy(e.geometry, near_distance / 2))
                for e in targets
            ]
        pairs, common = spatial_blocking(sources, targets, cell_size)
        if meta_keep_fraction > 0:
            pairs = meta_blocking(pairs, common, keep_fraction=meta_keep_fraction)
        if near_distance > 0:
            # Unwrap proxies for exact comparisons.
            sources = [SpatialEntity(e.entity_id, e.geometry.geometry) for e in sources]
            targets = [SpatialEntity(e.entity_id, e.geometry.geometry) for e in targets]

    links: List[Link] = []
    comparisons = 0
    for i, j in pairs:
        source, target = sources[i], targets[j]
        if source.entity_id == target.entity_id:
            continue
        comparisons += 1
        for relation in _relations_for(source, target, near_distance):
            links.append(Link(source.entity_id, relation, target.entity_id))
    elapsed = time.perf_counter() - start
    return LinkageResult(
        links=links,
        candidate_pairs=len(pairs),
        comparisons=comparisons,
        elapsed_s=elapsed,
    )


class _BoxProxy:
    """Wraps a geometry, presenting an expanded bounding box to blocking."""

    def __init__(self, geometry, margin: float):
        self.geometry = geometry
        self._bbox = geometry.bbox.expand(margin)

    @property
    def bbox(self):
        return self._bbox


def _default_cell_size(
    sources: Sequence[SpatialEntity], targets: Sequence[SpatialEntity]
) -> float:
    """Heuristic: twice the mean bbox diagonal of the inputs."""
    entities = list(sources) + list(targets)
    if not entities:
        raise ReproError("no entities to link")
    total = sum(
        (e.geometry.bbox.width + e.geometry.bbox.height) / 2 for e in entities
    )
    mean = total / len(entities)
    return max(mean * 2.0, 1e-9)


def evaluate_links(
    found: List[Link], truth: List[Link]
) -> Tuple[float, float]:
    """(precision, recall) of *found* against a ground-truth link set."""
    found_set: Set[Link] = set(found)
    truth_set: Set[Link] = set(truth)
    if not found_set and not truth_set:
        return 1.0, 1.0
    true_positives = len(found_set & truth_set)
    precision = true_positives / len(found_set) if found_set else 1.0
    recall = true_positives / len(truth_set) if truth_set else 1.0
    return precision, recall
