"""Link discovery for big geospatial RDF data (Challenge C3).

Re-implements the algorithmic core of the JedAI/Silk line of work the paper
extends: "the JedAI linking framework will be extended to enable the scalable
discovery of geospatial relations in big geospatial RDF data sources".

Pipeline: **blocking** (equigrid cells drastically cut the candidate-pair
space) → **meta-blocking** (prune low-evidence pairs from the block graph,
per Papadakis et al. [19]) → **relation discovery** (evaluate exact spatial
predicates on surviving pairs and emit link triples). A brute-force
all-pairs baseline anchors experiment E7.
"""

from repro.interlinking.blocking import SpatialEntity, brute_force_pairs, spatial_blocking
from repro.interlinking.metablocking import meta_blocking
from repro.interlinking.linkage import (
    Link,
    LinkageResult,
    discover_links,
    evaluate_links,
)
from repro.interlinking.temporal_linkage import (
    TemporalEntity,
    discover_spatiotemporal_links,
    discover_temporal_links,
)

__all__ = [
    "Link",
    "LinkageResult",
    "SpatialEntity",
    "TemporalEntity",
    "brute_force_pairs",
    "discover_links",
    "discover_spatiotemporal_links",
    "discover_temporal_links",
    "evaluate_links",
    "meta_blocking",
    "spatial_blocking",
]
