"""The federation result cache: sub-query answers, epoch- and TTL-bounded.

Bind-join execution re-issues the same concrete sub-query (an endpoint, a
partially bound triple pattern) once per upstream binding — across repeated
queries over slowly changing remote data the same answer ships again and
again. A :class:`FederationResultCache` remembers those answers with two
invalidation mechanisms, both deterministic:

* **endpoint epochs** — every entry's key embeds the endpoint's current
  epoch; :meth:`bump_epoch` (called by the executor when a circuit breaker
  changes state or an endpoint is marked dead) moves all future lookups to
  a new keyspace, so stale entries become unreachable and age out of the
  LRU. Endpoint "weather" can therefore never serve answers cached before
  the storm.
* **TTL on the simulation clock** — an optional ``ttl_s`` measured against
  a caller-supplied ``clock`` callable (a sim clock such as
  ``lambda: tracer.now()``; never ``time.time``, which would break run
  determinism). Entries older than the TTL read as misses and are evicted
  on contact.

Deadline interaction is the point of the tier: a hit returns without any
endpoint call, so nothing is charged to the request's
:class:`~repro.resilience.Deadline` — the warm path is simulated-free.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cache.lru import LRUCache, MISS
from repro.errors import CacheError
from repro.obs import Observability, resolve


class FederationResultCache:
    """Caches (endpoint, sub-query) -> shipped triples across bind joins."""

    def __init__(
        self,
        capacity: int = 4096,
        ttl_s: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        obs: Optional[Observability] = None,
    ):
        if ttl_s is not None and clock is None:
            raise CacheError("a TTL needs a clock (pass the sim clock, not time.time)")
        if ttl_s is not None and ttl_s <= 0:
            raise CacheError(f"ttl_s must be positive, got {ttl_s}")
        self._cache = LRUCache(capacity, tier="federation", obs=obs)
        self._epochs: Dict[str, int] = {}
        self._clock = clock
        self.ttl_s = ttl_s
        self.expirations = 0
        self.flushes = 0
        self._flush_counter = resolve(obs).metrics.counter(
            "cache.flushes", tier="federation"
        )

    # ------------------------------------------------------------------
    # Epochs
    # ------------------------------------------------------------------

    def epoch(self, endpoint_name: str) -> int:
        return self._epochs.get(endpoint_name, 0)

    def bump_epoch(self, endpoint_name: str) -> int:
        """Invalidate every cached answer from one endpoint.

        Old-epoch entries are left to age out of the LRU — no scan needed.
        """
        epoch = self._epochs.get(endpoint_name, 0) + 1
        self._epochs[endpoint_name] = epoch
        self.flushes += 1
        self._flush_counter.inc()
        return epoch

    def _key(self, endpoint_name: str, pattern):
        return (
            endpoint_name,
            self.epoch(endpoint_name),
            pattern.subject,
            pattern.predicate,
            pattern.object,
        )

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, endpoint_name: str, pattern):
        """The cached answer, or :data:`~repro.cache.lru.MISS`.

        (An empty result list is a perfectly good cached answer, hence the
        sentinel instead of None.)
        """
        key = self._key(endpoint_name, pattern)
        entry = self._cache.get(key)
        if entry is MISS:
            return MISS
        value, stored_at = entry
        if self.ttl_s is not None and self._clock() - stored_at > self.ttl_s:
            self._cache.evict(key)
            self.expirations += 1
            # An expired entry was a miss in disguise; the LRU counted a
            # hit above, so rebalance the local tallies.
            self._cache.hits -= 1
            self._cache.misses += 1
            return MISS
        return value

    def put(self, endpoint_name: str, pattern, value) -> None:
        stored_at = self._clock() if self._clock is not None else 0.0
        self._cache.put(self._key(endpoint_name, pattern), (value, stored_at))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        stats = self._cache.stats
        stats["expirations"] = self.expirations
        stats["flushes"] = self.flushes
        return stats

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def __repr__(self) -> str:
        return f"FederationResultCache({self.stats})"
