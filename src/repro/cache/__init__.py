"""Deterministic multi-tier caching for the hot read path (experiment E19).

The paper's platform numbers — HopsFS's million metadata ops per second,
Strabon-style stores scaling past 100 GB — are about making the *hot read
path* cheap. After the faults/obs/resilience trilogy the stack recomputed
everything per request: every query re-parsed and re-compiled its text,
federation re-fetched identical sub-queries per binding, and HopsFS threw
away its whole directory-hint table on any directory delete. This package
is the missing layer: three cache tiers, all deterministic (no wall clock,
no randomness), all exactly invalidated, all observable, all optional.

* :class:`~repro.cache.plan.PlanCache` — parsed ASTs + compiled operator
  trees keyed on (owner, query text, :class:`CompileOptions`, store
  content-version). Stores bump a monotonic :attr:`Graph.version` on every
  mutation, so invalidation is exact. Shared by the SPARQL evaluator,
  :class:`GeoStore`, :class:`SemanticCatalog` and :class:`VirtualGeoStore`.
* :class:`~repro.cache.federation.FederationResultCache` — (endpoint,
  sub-query, endpoint epoch) -> shipped triples, with an optional sim-clock
  TTL. The executor bumps an endpoint's epoch whenever its circuit breaker
  changes state or the endpoint is marked dead.
* :class:`~repro.cache.hopsfs.DirHintCache` — HopsFS directory hints in a
  bounded LRU with prefix-scoped eviction (a sibling delete no longer
  flushes hot ancestors) and optional negative entries.

The contract mirrors ``repro.faults`` / ``repro.obs`` / ``repro.resilience``:
every consumer takes its cache as an optional argument defaulting to None
(or, for HopsFS, to behaviour equivalent to the uncached seed), the
disabled path is byte-identical to pre-cache code, and parity tests pin
that. A cache *hit* does no store/remote work and therefore charges
nothing to the request's :class:`~repro.resilience.Deadline` — that is the
entire point of the tier.

Typical use::

    from repro.cache import PlanCache
    cache = PlanCache(capacity=256)
    store = GeoStore(plan_cache=cache)
    store.query(text)   # cold: parse + compile + rewrite
    store.query(text)   # warm: straight to evaluation
    store.add(s, p, o)  # version bump -> next query recompiles
"""

from repro.cache.federation import FederationResultCache
from repro.cache.hopsfs import DirHintCache, NegativeEntry
from repro.cache.lru import LRUCache, MISS
from repro.cache.plan import PlanCache

__all__ = [
    "DirHintCache",
    "FederationResultCache",
    "LRUCache",
    "MISS",
    "NegativeEntry",
    "PlanCache",
]
