"""The HopsFS directory-hint cache: bounded, prefix-invalidated, negative-aware.

HopsFS (Niazi et al.) gets much of its metadata throughput from inode-hint
caching: resolving ``/data/2017/s1/scene.tif`` should not re-read the shard
rows for ``/``, ``/data`` and ``/data/2017`` on every operation. The seed
implementation cached hints in a plain dict and, on *any* directory delete
or rename, cleared the whole thing — one cold sibling delete and every hot
ancestor path on the node re-resolves through the shards.

:class:`DirHintCache` replaces that with

* a **bounded LRU** (component-tuple key -> directory inode id), so an
  adversarial workload cannot grow the hint table without bound;
* **prefix-scoped eviction**: deleting or renaming ``/a/b`` evicts exactly
  the keys ``("a", "b", ...)`` — ``/`` and ``/a`` stay hot (the regression
  test pins this);
* optional **negative entries**: with ``negative=True`` a failed directory
  resolution is remembered (as the failure it produced), so repeated
  lookups of a missing path stop walking the store — and stop charging the
  request's :class:`~repro.resilience.Deadline` — until a ``mkdir``/
  ``create``/``rename`` under that prefix evicts the hint. Negative caching
  changes the *cost* of the failure path (that is its purpose), never its
  outcome, and is off by default.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.lru import LRUCache, MISS
from repro.obs import Observability


class NegativeEntry:
    """A remembered resolution failure (the error message to replay)."""

    __slots__ = ("message",)

    def __init__(self, message: str):
        self.message = message

    def __repr__(self) -> str:
        return f"NegativeEntry({self.message!r})"


class DirHintCache:
    """Component-tuple -> inode hints for HopsFS path resolution."""

    def __init__(
        self,
        capacity: int = 4096,
        negative: bool = False,
        obs: Optional[Observability] = None,
    ):
        self._cache = LRUCache(capacity, tier="hopsfs_dir", obs=obs)
        self.negative = negative
        self.negative_hits = 0

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def get(self, key: Tuple[str, ...]):
        """The cached inode id, a :class:`NegativeEntry`, or ``None`` (miss)."""
        value = self._cache.get(key)
        if value is MISS:
            return None
        if isinstance(value, NegativeEntry):
            self.negative_hits += 1
        return value

    def put(self, key: Tuple[str, ...], inode_id: int) -> None:
        self._cache.put(key, inode_id)

    def put_negative(self, key: Tuple[str, ...], message: str) -> None:
        """Remember a failed resolution (no-op unless ``negative`` is on)."""
        if self.negative:
            self._cache.put(key, NegativeEntry(message))

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def evict_prefix(self, parts: Tuple[str, ...]) -> int:
        """Scoped invalidation: drop *parts* and everything beneath it."""
        return self._cache.evict_prefix(tuple(parts))

    def clear(self) -> int:
        return self._cache.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: Tuple[str, ...]) -> bool:
        return key in self._cache

    @property
    def stats(self) -> Dict[str, int]:
        stats = self._cache.stats
        stats["negative_hits"] = self.negative_hits
        return stats

    def __repr__(self) -> str:
        return f"DirHintCache({self.stats})"
