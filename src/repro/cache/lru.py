"""The deterministic bounded LRU every cache tier is built on.

Nothing here consults a clock or a random stream: eviction order is a pure
function of the call sequence, so two identical runs hit, miss and evict
identically — the property the cache-parity tests and the E19 bench lean on.

Keys are ordinary hashable values; tiers that key by *path components*
(HopsFS directory hints) use tuple keys so :meth:`LRUCache.evict_prefix`
can drop exactly the subtree an invalidation touches and nothing else.

Observability follows the house pattern: pass an
:class:`~repro.obs.Observability` bundle and every hit/miss/eviction lands
in the ``cache.hits`` / ``cache.misses`` / ``cache.evictions`` counters
labelled by ``tier``; without one the counters are the shared null objects
and only the cheap local integers are maintained.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Iterator, Optional, Tuple

from repro.errors import CacheError
from repro.obs import Observability, resolve

#: Sentinel distinguishing "not cached" from a cached None / empty value.
MISS = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``__contains__`` and iteration do not, so
    introspection (tests, stats dumps) never perturbs eviction order.
    """

    def __init__(
        self,
        capacity: int = 1024,
        tier: str = "lru",
        obs: Optional[Observability] = None,
    ):
        if capacity < 1:
            raise CacheError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.tier = tier
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        metrics = resolve(obs).metrics
        self._hit_counter = metrics.counter("cache.hits", tier=tier)
        self._miss_counter = metrics.counter("cache.misses", tier=tier)
        self._eviction_counter = metrics.counter("cache.evictions", tier=tier)

    # ------------------------------------------------------------------
    # Core mapping
    # ------------------------------------------------------------------

    def get(self, key: Hashable, default: object = MISS) -> object:
        """The cached value (refreshing recency), or *default* on a miss."""
        value = self._data.get(key, MISS)
        if value is MISS:
            self.misses += 1
            self._miss_counter.inc()
            return default
        self._data.move_to_end(key)
        self.hits += 1
        self._hit_counter.inc()
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert/update a key, evicting the coldest entries past capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
            self._eviction_counter.inc()

    def evict(self, key: Hashable) -> bool:
        """Drop one key; returns whether it was present."""
        if key in self._data:
            del self._data[key]
            self.evictions += 1
            self._eviction_counter.inc()
            return True
        return False

    def evict_prefix(self, prefix: Tuple) -> int:
        """Drop every tuple key starting with *prefix*; returns the count.

        The scoped-invalidation primitive: deleting ``/a/b`` evicts exactly
        the keys ``("a", "b", ...)`` while hot ancestors stay cached.
        """
        depth = len(prefix)
        doomed = [
            key
            for key in self._data
            if isinstance(key, tuple) and key[:depth] == prefix
        ]
        for key in doomed:
            del self._data[key]
        self.evictions += len(doomed)
        self._eviction_counter.inc(len(doomed))
        return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns how many entries died."""
        count = len(self._data)
        self._data.clear()
        self.evictions += count
        self._eviction_counter.inc(count)
        return count

    # ------------------------------------------------------------------
    # Introspection (never touches recency)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def keys(self) -> Iterator[Hashable]:
        return iter(self._data.keys())

    def peek(self, key: Hashable, default: object = MISS) -> object:
        """``get`` without the recency refresh or hit/miss accounting."""
        return self._data.get(key, default)

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return (
            f"LRUCache(tier={self.tier!r}, {len(self._data)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
