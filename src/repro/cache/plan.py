"""The plan cache: parsed ASTs and compiled operator trees, exactly invalidated.

Re-running the same query text against an unchanged store re-does three
deterministic computations — parsing, algebra compilation (with its
cardinality-driven join ordering) and, in :class:`~repro.geosparql.store.GeoStore`,
the spatial rewrite that bakes R-tree candidate lists into the tree. A
:class:`PlanCache` memoises all three behind one keying discipline:

* **parse entries** are keyed by query text alone — parsing is a pure
  function of the text;
* **plan entries** are keyed by ``(owner token, query text, CompileOptions,
  content version)``. The owner token is a per-live-object id (via a
  ``WeakKeyDictionary``, so a collected store can never alias a new one),
  and the content version is the owner's monotonically bumped mutation
  counter (:attr:`repro.rdf.graph.Graph.version`) — any mutation moves the
  key, so a cached plan can never describe data that changed under it.
  The options tuple (``CompileOptions.cache_key()``) includes the
  ``engine`` field, so the interpreted evaluator and the E22 vector engine
  — whose plans are cost-ordered differently — never share a cache entry;
  it excludes per-request state like the E23 ``budget``, so governed and
  ungoverned executions of one text share one plan.

One ``PlanCache`` may be shared by several stores (the evaluator, a
``GeoStore``, the catalogue over it, a ``VirtualGeoStore``); entries never
collide because the owner token is part of the key. Only *string* queries
are cached — an AST handed in by the caller has no stable identity to key
on, and takes the uncached path unchanged.
"""

from __future__ import annotations

import weakref
from dataclasses import astuple
from typing import Callable, Dict, Optional, Tuple

from repro.cache.lru import LRUCache, MISS
from repro.obs import Observability


class PlanCache:
    """Memoises parse and compile results for string queries."""

    def __init__(
        self,
        capacity: int = 256,
        parse_capacity: Optional[int] = None,
        obs: Optional[Observability] = None,
    ):
        self._plans = LRUCache(capacity, tier="plan", obs=obs)
        self._parses = LRUCache(
            parse_capacity if parse_capacity is not None else capacity,
            tier="parse",
            obs=obs,
        )
        self._tokens: "weakref.WeakKeyDictionary[object, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._next_token = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------

    def token(self, owner: object) -> int:
        """A stable token for a live owner object (store, graph, ...)."""
        token = self._tokens.get(owner)
        if token is None:
            token = self._next_token
            self._next_token += 1
            self._tokens[owner] = token
        return token

    @staticmethod
    def options_key(options) -> Optional[Tuple]:
        """Hashable identity of a :class:`~repro.sparql.algebra.CompileOptions`.

        Delegates to ``options.cache_key()`` so per-request state (the E23
        ``budget`` field) never lands in a plan-cache or coalescing key —
        governed and ungoverned runs of the same text share one plan entry.
        Foreign option objects without a ``cache_key`` fall back to the old
        ``dataclasses.astuple`` identity.
        """
        if options is None:
            return None
        cache_key = getattr(options, "cache_key", None)
        if cache_key is not None:
            return cache_key()
        return astuple(options)

    # ------------------------------------------------------------------
    # Tiers
    # ------------------------------------------------------------------

    def parse(self, text: str):
        """The parsed AST for *text* (cached; parsing is deterministic)."""
        ast = self._parses.get(text)
        if ast is MISS:
            from repro.sparql.parser import parse_query

            ast = parse_query(text)
            self._parses.put(text, ast)
        return ast

    def plan(
        self,
        owner: object,
        text: str,
        options,
        version: int,
        build: Callable[[], object],
    ):
        """The compiled plan for (*owner*, *text*, *options*, *version*).

        ``build`` runs on a miss; its result is cached under the full key,
        so a version bump (any store mutation) forces a rebuild and the
        stale plan ages out of the LRU on its own.
        """
        key = (self.token(owner), text, self.options_key(options), version)
        plan = self._plans.get(key)
        if plan is MISS:
            plan = build()
            self._plans.put(key, plan)
        return plan

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, Dict[str, int]]:
        return {"plans": self._plans.stats, "parses": self._parses.stats}

    def clear(self) -> None:
        self._plans.clear()
        self._parses.clear()

    def __repr__(self) -> str:
        return f"PlanCache(plans={self._plans.stats}, parses={self._parses.stats})"
