"""Collective-communication cost models (experiment E5).

HOPS "supports ... distributed deep learning using TensorFlow's distribution
strategies, including collective allreduce and parameter server". The cost of
one synchronisation step under each topology follows the standard alpha-beta
model (alpha = per-message latency, beta = seconds per byte):

* **Ring allreduce** (Baidu/Horovod): ``2(n-1) * alpha + 2 * (n-1)/n * M *
  beta`` — bandwidth-optimal, per-worker traffic independent of n for large n.
* **Parameter server**: every worker pushes M bytes to and pulls M bytes from
  the server tier; with s servers each holding M/s of the model, the
  bottleneck is the server-side aggregate link: ``2 * alpha + 2 * M * n / s *
  beta`` (n workers' traffic funnelled through s server links).
* **Naive broadcast-gather**: a root gathers M from each worker then sends
  the averaged model back: ``2(n-1) * (alpha + M * beta)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError


@dataclass(frozen=True)
class NetworkModel:
    """alpha-beta link model."""

    latency_s: float = 100e-6  # alpha
    bandwidth_bps: float = 1.25e9  # 10 Gbit/s -> beta = 1/bandwidth

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bps <= 0:
            raise ClusterError("invalid network model parameters")

    @property
    def beta(self) -> float:
        return 1.0 / self.bandwidth_bps


def _validate(workers: int, message_bytes: float) -> None:
    if workers < 1:
        raise ClusterError(f"workers must be >= 1, got {workers}")
    if message_bytes < 0:
        raise ClusterError("message size must be non-negative")


def ring_allreduce_time_s(
    workers: int, message_bytes: float, network: NetworkModel = NetworkModel()
) -> float:
    """Time for one ring allreduce of *message_bytes* across *workers*."""
    _validate(workers, message_bytes)
    if workers == 1:
        return 0.0
    steps = 2 * (workers - 1)
    return steps * network.latency_s + (
        2.0 * (workers - 1) / workers
    ) * message_bytes * network.beta


def parameter_server_time_s(
    workers: int,
    message_bytes: float,
    servers: int = 1,
    network: NetworkModel = NetworkModel(),
) -> float:
    """Time for a push+pull round against a parameter-server tier."""
    _validate(workers, message_bytes)
    if servers < 1:
        raise ClusterError(f"servers must be >= 1, got {servers}")
    # One formula for all worker counts: a lone worker still shards its
    # push/pull across the server tier, so the cost is 2a + 2M/s*b — the
    # general expression with n = 1, monotone in the server count.
    per_server_bytes = message_bytes * workers / servers
    return 2 * network.latency_s + 2 * per_server_bytes * network.beta


def broadcast_time_s(
    workers: int, message_bytes: float, network: NetworkModel = NetworkModel()
) -> float:
    """Naive gather-then-broadcast through a single root."""
    _validate(workers, message_bytes)
    if workers == 1:
        return 0.0
    return 2 * (workers - 1) * (network.latency_s + message_bytes * network.beta)
