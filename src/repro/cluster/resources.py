"""Cluster resources: nodes, slots, and data placement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ClusterError


@dataclass
class Node:
    """One worker node with CPU and GPU execution slots."""

    node_id: int
    cpu_slots: int = 4
    gpu_slots: int = 0
    #: Relative compute speed (1.0 = reference); GPUs are modelled as nodes
    #: with high-speed slots rather than a separate device hierarchy.
    speed: float = 1.0
    #: Identifiers of data partitions stored locally on this node.
    local_data: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.cpu_slots < 0 or self.gpu_slots < 0:
            raise ClusterError("slot counts must be non-negative")
        if self.cpu_slots + self.gpu_slots == 0:
            raise ClusterError(f"node {self.node_id} has no slots")
        if self.speed <= 0:
            raise ClusterError("node speed must be positive")

    def slots(self, kind: str) -> int:
        if kind == "cpu":
            return self.cpu_slots
        if kind == "gpu":
            return self.gpu_slots
        raise ClusterError(f"unknown slot kind {kind!r}")


@dataclass
class ClusterSpec:
    """A homogeneous cluster description plus network parameters."""

    node_count: int = 4
    cpu_slots_per_node: int = 4
    gpu_slots_per_node: int = 0
    node_speed: float = 1.0
    #: Sustained network bandwidth per link, bytes/second.
    network_bandwidth_bps: float = 1.25e9  # 10 Gbit/s
    #: Per-message latency, seconds.
    network_latency_s: float = 100e-6

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ClusterError("cluster needs at least one node")
        if self.network_bandwidth_bps <= 0 or self.network_latency_s < 0:
            raise ClusterError("invalid network parameters")

    def build_nodes(self) -> List[Node]:
        return [
            Node(
                node_id=i,
                cpu_slots=self.cpu_slots_per_node,
                gpu_slots=self.gpu_slots_per_node,
                speed=self.node_speed,
            )
            for i in range(self.node_count)
        ]

    def transfer_time_s(self, size_bytes: float) -> float:
        """Time to move *size_bytes* over one link (alpha-beta model)."""
        if size_bytes < 0:
            raise ClusterError("transfer size must be non-negative")
        return self.network_latency_s + size_bytes / self.network_bandwidth_bps

    def place_partitions(
        self, partition_ids: List[str], nodes: List[Node], copies: int = 1
    ) -> Dict[str, List[int]]:
        """Round-robin partition placement; returns partition -> node ids."""
        if copies < 1 or copies > len(nodes):
            raise ClusterError(f"invalid placement copies={copies}")
        placement: Dict[str, List[int]] = {}
        for index, partition_id in enumerate(partition_ids):
            owners = [
                nodes[(index + c) % len(nodes)].node_id for c in range(copies)
            ]
            placement[partition_id] = owners
            for owner in owners:
                nodes[owner].local_data.add(partition_id)
        return placement
