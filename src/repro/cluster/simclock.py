"""Discrete-event simulation core.

A minimal, deterministic event loop: events are (time, sequence) ordered, so
simultaneous events fire in scheduling order. All simulated components share
one :class:`Simulation` and advance its clock by scheduling callbacks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ClusterError


@dataclass(order=True)
class Event:
    """A scheduled callback. Ordering: (time, sequence)."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulation:
    """The event loop. Time is in seconds and only moves forward."""

    def __init__(self):
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise ClusterError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at an absolute simulation time."""
        if time < self._now:
            raise ClusterError(f"cannot schedule into the past (time={time}, now={self._now})")
        event = Event(time, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return event

    @staticmethod
    def cancel(event: Event) -> None:
        event.cancelled = True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Process events (optionally up to simulated time *until*).

        Returns the final simulation time. Raises if the event budget is
        exhausted — the runaway-loop guard.
        """
        while self._queue:
            if self._processed >= max_events:
                raise ClusterError(f"simulation exceeded {max_events} events")
            event = self._queue[0]
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)
