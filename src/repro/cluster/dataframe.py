"""RDD-like parallel collections with simulated cost accounting.

A :class:`ParallelCollection` partitions a dataset and evaluates
transformations eagerly and correctly in-process, while *charging* the work
to a :class:`SimContext`: each partition becomes one task with a cost model
(per-task overhead + per-item cost), scheduled on the simulated cluster with
data locality. The result is real; the wall-clock is simulated — which is
exactly what the throughput experiments need.
"""

from __future__ import annotations

import functools
import itertools
from typing import Callable, Dict, Generic, Iterable, List, Optional, Tuple, TypeVar

from repro.errors import ClusterError
from repro.cluster.resources import ClusterSpec
from repro.cluster.scheduler import Scheduler
from repro.cluster.simclock import Simulation

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")


class SimContext:
    """Execution context: a cluster spec plus cost-model parameters."""

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        task_overhead_s: float = 0.01,
        per_item_cost_s: float = 1e-4,
        bytes_per_item: float = 1000.0,
        locality_wait_s: float = 3.0,
    ):
        if task_overhead_s < 0 or per_item_cost_s < 0 or bytes_per_item < 0:
            raise ClusterError("cost-model parameters must be non-negative")
        self.spec = spec if spec is not None else ClusterSpec()
        self.task_overhead_s = task_overhead_s
        self.per_item_cost_s = per_item_cost_s
        self.bytes_per_item = bytes_per_item
        self.locality_wait_s = locality_wait_s
        self.simulated_time_s = 0.0
        self.stages_run = 0
        self.tasks_run = 0
        self._partition_counter = itertools.count()

    def parallelize(
        self, data: Iterable[T], partitions: Optional[int] = None
    ) -> "ParallelCollection[T]":
        """Distribute *data* into a parallel collection."""
        items = list(data)
        if partitions is None:
            partitions = self.spec.node_count * self.spec.cpu_slots_per_node
        partitions = max(1, min(partitions, max(len(items), 1)))
        chunk = max(1, (len(items) + partitions - 1) // partitions)
        parts = [items[i : i + chunk] for i in range(0, len(items), chunk)] or [[]]
        ids = [f"part-{next(self._partition_counter)}" for _ in parts]
        # Register placement: round-robin over nodes (node ids only; actual
        # Node objects are created per stage by the scheduler).
        placement = {
            pid: [(index % self.spec.node_count)] for index, pid in enumerate(ids)
        }
        return ParallelCollection(self, parts, ids, placement)

    def _run_stage(
        self,
        partitions: List[List],
        partition_ids: List[str],
        placement: Dict[str, List[int]],
        work: Callable[[List], object],
        per_item_cost_s: Optional[float] = None,
    ) -> List[object]:
        """Execute *work* per partition; charge simulated time; return results."""
        simulation = Simulation()
        scheduler = Scheduler(
            self.spec, simulation=simulation, locality_wait_s=self.locality_wait_s
        )
        results: List[object] = [None] * len(partitions)
        item_cost = (
            per_item_cost_s if per_item_cost_s is not None else self.per_item_cost_s
        )

        tasks = []
        for index, (partition, pid) in enumerate(zip(partitions, partition_ids)):
            def make_callback(i: int, part: List):
                def callback(task) -> None:
                    results[i] = work(part)

                return callback

            task = scheduler.make_task(
                work_s=self.task_overhead_s + len(partition) * item_cost,
                input_bytes=len(partition) * self.bytes_per_item,
                preferred_nodes=set(placement.get(pid, ())),
                on_complete=make_callback(index, partition),
            )
            tasks.append(task)
        scheduler.submit_all(tasks)
        metrics = scheduler.run()
        self.simulated_time_s += metrics.makespan_s
        self.stages_run += 1
        self.tasks_run += len(tasks)
        return results


class ParallelCollection(Generic[T]):
    """An immutable partitioned dataset with Spark-like transformations.

    Transformations (map/filter) are *eager* — they run a simulated stage —
    keeping the implementation simple while still exposing stage structure to
    the cost model.
    """

    def __init__(
        self,
        context: SimContext,
        partitions: List[List[T]],
        partition_ids: List[str],
        placement: Dict[str, List[int]],
    ):
        self.context = context
        self._partitions = partitions
        self._ids = partition_ids
        self._placement = placement

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def map(self, function: Callable[[T], U]) -> "ParallelCollection[U]":
        new_parts = self.context._run_stage(
            self._partitions,
            self._ids,
            self._placement,
            lambda part: [function(item) for item in part],
        )
        return ParallelCollection(self.context, new_parts, self._ids, self._placement)

    def filter(self, predicate: Callable[[T], bool]) -> "ParallelCollection[T]":
        new_parts = self.context._run_stage(
            self._partitions,
            self._ids,
            self._placement,
            lambda part: [item for item in part if predicate(item)],
        )
        return ParallelCollection(self.context, new_parts, self._ids, self._placement)

    def map_partitions(
        self, function: Callable[[List[T]], List[U]]
    ) -> "ParallelCollection[U]":
        new_parts = self.context._run_stage(
            self._partitions, self._ids, self._placement, lambda part: list(function(part))
        )
        return ParallelCollection(self.context, new_parts, self._ids, self._placement)

    def group_by_key(self: "ParallelCollection[Tuple[K, U]]") -> "ParallelCollection[Tuple[K, List[U]]]":
        """Shuffle: group (key, value) pairs by key into new partitions."""
        # Map side: bucket each partition's pairs by destination partition.
        dest_count = len(self._partitions)
        bucketed = self.context._run_stage(
            self._partitions,
            self._ids,
            self._placement,
            lambda part: _bucket(part, dest_count),
        )
        # Shuffle transfer cost: every byte moves once.
        total_items = sum(len(p) for p in self._partitions)
        self.context.simulated_time_s += self.context.spec.transfer_time_s(
            total_items * self.context.bytes_per_item
        )
        # Reduce side: merge buckets.
        merged: List[Dict[K, List[U]]] = [dict() for _ in range(dest_count)]
        for buckets in bucketed:
            for dest, pairs in enumerate(buckets):
                for key, value in pairs:
                    merged[dest].setdefault(key, []).append(value)
        new_parts = [list(d.items()) for d in merged]
        ids = [f"{pid}-shuffled" for pid in self._ids]
        placement = {
            new_id: self._placement.get(old_id, [])
            for new_id, old_id in zip(ids, self._ids)
        }
        return ParallelCollection(self.context, new_parts, ids, placement)

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> List[T]:
        return [item for part in self._partitions for item in part]

    def count(self) -> int:
        counts = self.context._run_stage(
            self._partitions, self._ids, self._placement, len
        )
        return sum(counts)

    def reduce(self, function: Callable[[T, T], T]) -> T:
        partials = self.context._run_stage(
            self._partitions,
            self._ids,
            self._placement,
            lambda part: functools.reduce(function, part) if part else None,
        )
        non_empty = [p for p in partials if p is not None]
        if not non_empty:
            raise ClusterError("reduce of empty collection")
        return functools.reduce(function, non_empty)

    @property
    def partition_count(self) -> int:
        return len(self._partitions)


def _bucket(part: List, dest_count: int) -> List[List]:
    buckets: List[List] = [[] for _ in range(dest_count)]
    for key, value in part:
        buckets[hash(key) % dest_count].append((key, value))
    return buckets
