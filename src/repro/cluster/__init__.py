"""Cluster simulator: the elastic cloud environment of Challenge C5.

The paper runs everything on the HOPS platform in LogicalClocks' cloud —
Spark-style parallel processing, locality-aware scheduling ("move the
processing to where the data is"), and distributed deep learning with
collective allreduce / parameter-server topologies. This package simulates
those mechanisms deterministically:

* :mod:`repro.cluster.simclock` — a discrete-event simulation core
* :mod:`repro.cluster.resources` — nodes with CPU/GPU slots and data placement
* :mod:`repro.cluster.scheduler` — FIFO scheduler with delay scheduling
* :mod:`repro.cluster.dataframe` — an RDD-like parallel collection whose
  operations execute for real while their cost is accounted on the simulator
* :mod:`repro.cluster.comm` — the alpha-beta network cost model with ring
  allreduce, parameter-server, and broadcast collectives (experiment E5)
"""

from repro.cluster.simclock import Event, Simulation
from repro.cluster.resources import ClusterSpec, Node
from repro.cluster.scheduler import Scheduler, SchedulerMetrics, Task
from repro.cluster.dataframe import ParallelCollection, SimContext
from repro.cluster.comm import (
    NetworkModel,
    broadcast_time_s,
    parameter_server_time_s,
    ring_allreduce_time_s,
)

__all__ = [
    "ClusterSpec",
    "Event",
    "NetworkModel",
    "Node",
    "ParallelCollection",
    "Scheduler",
    "SchedulerMetrics",
    "SimContext",
    "Simulation",
    "Task",
    "broadcast_time_s",
    "parameter_server_time_s",
    "ring_allreduce_time_s",
]
