"""Locality-aware task scheduling (delay scheduling) with fault tolerance.

The paper's platform "provides services to move the processing to where the
data is". The mechanism that realises this in Spark-land is *delay
scheduling*: when a slot frees on node N, prefer a queued task whose input is
local to N; a task waits up to ``locality_wait_s`` of simulated time for a
local slot before it accepts a remote one and pays the input transfer.

Experiment E13's ablation compares ``locality_wait_s = 0`` (no locality) with
the default.

Fault tolerance (experiment E17) threads through a
:class:`~repro.faults.injector.FaultInjector`:

* **node crashes** — the node's slots disappear and its running tasks are
  re-queued (``crash_recovery=True``) or lost (``tasks_lost``);
* **stragglers** — slowed nodes trigger *speculative execution*: a second
  copy of a late task launches on a healthy node, first finish wins;
* **blacklisting** — nodes that repeatedly fail tasks stop receiving work.

With no injector and the tolerance knobs at their defaults the scheduler is
byte-identical to the fault-free implementation.

Overload resilience (experiment E18): an optional
:class:`~repro.resilience.AdmissionController` guards submission — each
submitted task takes an admission ticket (classed by ``Task.priority``),
held until the task reaches a terminal state (completed, abandoned, or
lost in a crash), so queue depth is bounded and batch work is shed first
under pressure with the retryable :class:`~repro.errors.Overloaded`.

Distributed query execution (experiment E25) adds DAG scheduling: tasks may
declare ``depends_on`` (dispatch waits for those completions; terminal
non-completion cascades abandonment), an ``on_attempt_end`` hook that fires
per *attempt* (the idempotent-output commit point for shuffle writes), an
``on_abandon`` hook for tasks that will never complete, and a public
:meth:`Scheduler.cancel_task` (budget kills withdraw whole query DAGs with
their admission tickets released exactly once — audited by
``tickets_issued``/``tickets_released``).

Retry accounting semantics (pinned by the regression suite): a failed
attempt that *will be retried* counts toward ``task_failures``; the final
failed attempt of a task that exhausts ``max_retries`` counts as exactly one
``tasks_abandoned`` (not also a failure). A task abandoned after N retries
therefore contributes N failures and 1 abandonment.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.errors import ClusterError
from repro.cluster.resources import ClusterSpec, Node
from repro.cluster.simclock import Event, Simulation
from repro.obs import MetricsRegistry, Observability, resolve
from repro.obs.tracing import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector
    from repro.resilience.admission import AdmissionController, AdmissionTicket


@dataclass
class Task:
    """A unit of work.

    ``work_s`` is the compute time on a speed-1.0 slot; the input is
    ``input_bytes`` stored on ``preferred_nodes`` (empty = no locality
    preference). ``priority`` is the admission class (0 = batch, 1 =
    interactive) consulted only when the scheduler has an admission
    controller attached.

    ``depends_on`` names task ids that must **complete** before this task
    may dispatch (E25 DAG stages: shuffle reducers wait for their mappers).
    A task whose dependency is abandoned, lost, or cancelled can never run
    and is abandoned in cascade.

    Completion hooks: ``on_complete`` fires exactly once, when the task
    settles successfully (speculative copies race; the first finisher wins
    and the losers are cancelled). ``on_attempt_end`` fires for *every*
    attempt that runs to the end of its slot — including attempts the fault
    injector then marks failed, modelling a worker that finished its work
    and wrote its output but died before reporting. Side effects in
    ``on_attempt_end`` must therefore be idempotent: a retried task commits
    its output twice. ``on_abandon`` fires exactly once if the task reaches
    a terminal state *without* completing (retries exhausted, lost in a
    crash without recovery, or dependency-cascaded).
    """

    task_id: int
    work_s: float
    kind: str = "cpu"
    input_bytes: float = 0.0
    preferred_nodes: Set[int] = field(default_factory=set)
    on_complete: Optional[Callable[["Task"], None]] = None
    priority: int = 1
    depends_on: Set[int] = field(default_factory=set)
    on_attempt_end: Optional[Callable[["Task", bool], None]] = None
    on_abandon: Optional[Callable[["Task"], None]] = None

    submitted_at: float = field(default=0.0, init=False)
    started_at: Optional[float] = field(default=None, init=False)
    finished_at: Optional[float] = field(default=None, init=False)
    ran_local: Optional[bool] = field(default=None, init=False)
    ran_on: Optional[int] = field(default=None, init=False)
    attempts: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.work_s < 0:
            raise ClusterError("task work must be non-negative")
        if self.kind not in ("cpu", "gpu"):
            raise ClusterError(f"unknown task kind {self.kind!r}")


@dataclass
class _Execution:
    """One running copy of a task (speculation can run several)."""

    task: Task
    node_id: int
    event: Event
    local: bool
    speculative: bool = False
    span: Optional[Span] = None


class SchedulerMetrics:
    """Aggregate outcomes of a scheduling run.

    The same attribute API as the original dataclass (``tasks_completed``,
    ``locality_hits``, ...), but every field is now backed by a counter in
    a :class:`~repro.obs.MetricsRegistry` — the scheduler's own private
    registry by default, or a shared Observability registry when one is
    attached, where the series appear as ``scheduler.<field>``. Counts are
    exact integers either way, so runs are byte-identical to the bespoke
    fields they replace.
    """

    _COUNT_FIELDS = (
        "tasks_completed",
        "locality_hits",
        "locality_misses",
        "task_failures",
        "tasks_abandoned",
        "node_crashes",
        "speculative_launches",
        "tasks_lost",
        "nodes_blacklisted",
        "tasks_cancelled",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self._registry.counter(f"scheduler.{name}")
            for name in self._COUNT_FIELDS
        }
        self._bytes = self._registry.counter("scheduler.bytes_transferred")
        self._makespan = self._registry.gauge("scheduler.makespan_s")

    def inc(self, name: str, amount: float = 1) -> None:
        if name == "bytes_transferred":
            self._bytes.inc(amount)
            return
        self._counters[name].inc(amount)

    def __getattr__(self, name: str):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    @property
    def bytes_transferred(self) -> float:
        return self._bytes.value

    @property
    def makespan_s(self) -> float:
        return self._makespan.value

    @makespan_s.setter
    def makespan_s(self, value: float) -> None:
        self._makespan.set(value)

    @property
    def locality_rate(self) -> float:
        total = self.locality_hits + self.locality_misses
        if total == 0:
            return 1.0
        return self.locality_hits / total

    def as_dict(self) -> Dict[str, float]:
        summary: Dict[str, float] = {
            name: getattr(self, name) for name in self._COUNT_FIELDS
        }
        summary["bytes_transferred"] = self.bytes_transferred
        summary["makespan_s"] = self.makespan_s
        summary["locality_rate"] = self.locality_rate
        return summary

    def __repr__(self) -> str:  # keeps the old dataclass-style debugging
        fields = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"SchedulerMetrics({fields})"


class Scheduler:
    """FIFO scheduler with delay scheduling over a simulated cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        simulation: Optional[Simulation] = None,
        locality_wait_s: float = 3.0,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        failure_seed: int = 0,
        injector: Optional["FaultInjector"] = None,
        crash_recovery: bool = True,
        speculation: bool = False,
        speculation_factor: float = 2.0,
        blacklist_after: Optional[int] = None,
        obs: Optional[Observability] = None,
        admission: Optional["AdmissionController"] = None,
    ):
        if locality_wait_s < 0:
            raise ClusterError("locality_wait_s must be non-negative")
        if not 0.0 <= failure_rate < 1.0:
            raise ClusterError("failure_rate must be in [0, 1)")
        if max_retries < 0:
            raise ClusterError("max_retries must be non-negative")
        if speculation_factor <= 1.0:
            raise ClusterError("speculation_factor must be > 1")
        if blacklist_after is not None and blacklist_after < 1:
            raise ClusterError("blacklist_after must be >= 1")
        self.spec = spec
        self.simulation = simulation if simulation is not None else Simulation()
        self.locality_wait_s = locality_wait_s
        self.failure_rate = failure_rate
        self.max_retries = max_retries
        self._failure_rng = random.Random(failure_seed)
        self.injector = injector
        self.crash_recovery = crash_recovery
        self.speculation = speculation
        self.speculation_factor = speculation_factor
        self.blacklist_after = blacklist_after
        self.nodes: List[Node] = spec.build_nodes()
        self.obs = resolve(obs)
        # Task lifecycle spans run on *simulated* time: claim an unclocked
        # tracer for the sim-clock (wall-clock tracers keep their clock).
        if self.obs.enabled and self.obs.tracer.clock is None:
            self.obs.tracer.clock = lambda: self.simulation.now
        self.metrics = SchedulerMetrics(
            registry=self.obs.metrics if self.obs.enabled else None
        )
        self._queue: List[Task] = []
        self._free_slots: Dict[str, Dict[int, int]] = {
            "cpu": {n.node_id: n.cpu_slots for n in self.nodes},
            "gpu": {n.node_id: n.gpu_slots for n in self.nodes},
        }
        self._task_counter = itertools.count()
        self._next_wakeup: Optional[float] = None
        self._last_finish_s = 0.0
        self._admission = admission
        self._tickets: Dict[int, "AdmissionTicket"] = {}
        #: Exactly-once admission audit (mirrors the gateway's): every ticket
        #: taken must be released by the time the run drains.
        self.tickets_issued = 0
        self.tickets_released = 0
        self._running: Dict[int, List[_Execution]] = {}
        self._completed_tasks: Set[int] = set()
        self._dependents: Dict[int, List[Task]] = {}
        self._dead_nodes: Set[int] = set()
        self._blacklisted: Set[int] = set()
        self._node_failures: Dict[int, int] = {}
        if injector is not None:
            self._apply_plan(injector)

    def _apply_plan(self, injector: "FaultInjector") -> None:
        """Install stragglers and schedule the plan's node crashes.

        E25 node *losses* kill the node's compute slots through the same
        crash path (the storage side — replica death — is the distributed
        store layer's business, consulted via ``injector.node_losses()``).
        """
        for node in self.nodes:
            factor = injector.straggler_factor(node.node_id)
            if factor != 1.0:
                node.speed = node.speed / factor
            down_times = [
                at
                for at in (
                    injector.node_crash_time(node.node_id),
                    getattr(injector, "node_loss_time", lambda _n: None)(
                        node.node_id
                    ),
                )
                if at is not None
            ]
            if down_times:
                self.simulation.schedule_at(
                    max(min(down_times), self.simulation.now),
                    lambda node_id=node.node_id: self._crash_node(node_id),
                )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def make_task(
        self,
        work_s: float,
        kind: str = "cpu",
        input_bytes: float = 0.0,
        preferred_nodes: Optional[Set[int]] = None,
        on_complete: Optional[Callable[[Task], None]] = None,
        priority: int = 1,
    ) -> Task:
        return Task(
            task_id=next(self._task_counter),
            work_s=work_s,
            kind=kind,
            input_bytes=input_bytes,
            preferred_nodes=set(preferred_nodes or ()),
            on_complete=on_complete,
            priority=priority,
        )

    def _admit(self, task: Task) -> None:
        """Take an admission ticket for *task*; raises ``Overloaded`` when
        the controller sheds it (the task is then not queued)."""
        if self._admission is None:
            return
        self._tickets[task.task_id] = self._admission.admit(
            priority=task.priority
        )
        self.tickets_issued += 1

    def _release_ticket(self, task: Task) -> None:
        ticket = self._tickets.pop(task.task_id, None)
        if ticket is not None:
            ticket.release()
            self.tickets_released += 1

    def _enqueue(self, task: Task) -> None:
        task.submitted_at = self.simulation.now
        for dependency in task.depends_on:
            if dependency not in self._completed_tasks:
                self._dependents.setdefault(dependency, []).append(task)
        self._queue.append(task)

    def submit(self, task: Task) -> None:
        self._admit(task)
        self._enqueue(task)
        self._dispatch()

    def submit_all(self, tasks: List[Task]) -> None:
        for task in tasks:
            self._admit(task)
            self._enqueue(task)
        self._dispatch()

    def run(self) -> SchedulerMetrics:
        """Run the simulation until all submitted tasks complete."""
        self.simulation.run()
        if self._queue:
            raise ClusterError(
                f"{len(self._queue)} tasks still queued after simulation drain "
                "(no capacity for their kind?)"
            )
        # Makespan is the last task completion; pending locality wake-ups may
        # have pushed the simulation clock further with no work happening.
        self.metrics.makespan_s = self._last_finish_s
        return self.metrics

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        # Repeatedly match queued tasks to free slots.
        progress = True
        while progress:
            progress = False
            for task in list(self._queue):
                node_id = self._pick_node(task)
                if node_id is None:
                    continue
                self._queue.remove(task)
                self._launch(task, node_id)
                progress = True
        self._schedule_locality_wakeup()

    def _schedule_locality_wakeup(self) -> None:
        """Wake the dispatcher when the earliest locality wait expires, so
        tasks don't stall while remote slots sit free."""
        expiries = [
            t.submitted_at + self.locality_wait_s
            for t in self._queue
            if t.preferred_nodes and self._deps_met(t)
        ]
        if not expiries:
            return
        earliest = min(expiries)
        if earliest <= self.simulation.now:
            return
        if (
            self._next_wakeup is not None
            and self.simulation.now < self._next_wakeup <= earliest
        ):
            return
        self._next_wakeup = earliest
        self.simulation.schedule_at(earliest, self._dispatch)

    def _schedulable(self, node_id: int) -> bool:
        return node_id not in self._blacklisted

    def _deps_met(self, task: Task) -> bool:
        if not task.depends_on:
            return True
        return task.depends_on <= self._completed_tasks

    def _pick_node(self, task: Task) -> Optional[int]:
        if not self._deps_met(task):
            return None
        free = self._free_slots[task.kind]
        local_candidates = [
            n
            for n in task.preferred_nodes
            if free.get(n, 0) > 0 and self._schedulable(n)
        ]
        if local_candidates:
            return min(local_candidates)
        waited = self.simulation.now - task.submitted_at
        if task.preferred_nodes and waited < self.locality_wait_s:
            # Keep waiting for a local slot.
            return None
        candidates = [
            n for n, slots in free.items() if slots > 0 and self._schedulable(n)
        ]
        if not candidates:
            return None
        return min(candidates)

    def _launch(self, task: Task, node_id: int, speculative: bool = False) -> None:
        node = self.nodes[node_id]
        self._free_slots[task.kind][node_id] -= 1
        task.started_at = self.simulation.now
        task.ran_on = node_id
        local = not task.preferred_nodes or node_id in task.preferred_nodes
        task.ran_local = local
        duration = task.work_s / node.speed
        if not local and task.input_bytes:
            duration += self.spec.transfer_time_s(task.input_bytes)
            self.metrics.inc("bytes_transferred", task.input_bytes)
        if local:
            self.metrics.inc("locality_hits")
        else:
            self.metrics.inc("locality_misses")

        execution = _Execution(
            task=task, node_id=node_id, event=None, local=local,  # type: ignore[arg-type]
            speculative=speculative,
            span=self.obs.tracer.start_span(
                "scheduler.task",
                task=task.task_id,
                node=node_id,
                kind=task.kind,
                local=local,
                speculative=speculative,
            ),
        )

        def finish() -> None:
            self._finish(execution)

        execution.event = self.simulation.schedule(duration, finish)
        self._running.setdefault(task.task_id, []).append(execution)

        if self.speculation and not speculative:
            nominal = task.work_s / self.spec.node_speed
            if nominal > 0 and duration > self.speculation_factor * nominal:
                # The copy is visibly late the moment a healthy node would
                # have finished it; check for a speculative slot then.
                self.simulation.schedule(
                    self.speculation_factor * nominal,
                    lambda: self._maybe_speculate(task),
                )

    def _maybe_speculate(self, task: Task) -> None:
        """Launch a backup copy of a straggling task on a healthy free node.

        If every candidate slot is busy, the check re-arms itself — the
        straggler may hold its copy for many multiples of the nominal
        runtime, and a slot freeing up later is still worth taking.
        """
        if task.finished_at is not None:
            return
        executions = self._running.get(task.task_id)
        if not executions:
            return  # queued for retry; the queue is its backup path
        if any(e.speculative for e in executions):
            return  # one backup copy at a time
        busy = {e.node_id for e in executions}
        free = self._free_slots[task.kind]
        candidates = [
            n
            for n, slots in free.items()
            if slots > 0
            and n not in busy
            and self._schedulable(n)
            and self.nodes[n].speed > self.nodes[executions[0].node_id].speed
        ]
        if not candidates:
            retry_in = task.work_s / self.spec.node_speed
            if retry_in > 0:
                self.simulation.schedule(
                    retry_in, lambda: self._maybe_speculate(task)
                )
            return
        # Prefer the fastest free node; break ties toward the lowest id.
        best = max(candidates, key=lambda n: (self.nodes[n].speed, -n))
        self.metrics.inc("speculative_launches")
        self._launch(task, best, speculative=True)

    # ------------------------------------------------------------------
    # Completion, failure, and crash handling
    # ------------------------------------------------------------------

    def _retire(self, execution: _Execution) -> None:
        """Remove a finished/cancelled execution and free its slot."""
        executions = self._running.get(execution.task.task_id)
        if executions and execution in executions:
            executions.remove(execution)
            if not executions:
                del self._running[execution.task.task_id]
        if execution.node_id not in self._dead_nodes:
            self._free_slots[execution.task.kind][execution.node_id] += 1

    def _cancel_siblings(self, execution: _Execution) -> None:
        """A copy won (or the task was abandoned): kill the other copies."""
        for sibling in list(self._running.get(execution.task.task_id, ())):
            if sibling is execution:
                continue
            Simulation.cancel(sibling.event)
            if sibling.span is not None:
                sibling.span.end("cancelled")
            self._retire(sibling)

    def _finish(self, execution: _Execution) -> None:
        task = execution.task
        self._last_finish_s = max(self._last_finish_s, self.simulation.now)
        self._retire(execution)
        # Injected failure: the attempt burned its slot time, then died.
        failed = bool(
            self.failure_rate and self._failure_rng.random() < self.failure_rate
        )
        if not failed and self.injector is not None:
            failed = self.injector.task_fails(task.task_id)
        if task.on_attempt_end is not None:
            # Every attempt that burned its full slot reports — even one the
            # injector fails (it finished the work, then died unreported).
            # A retry re-runs the hook, so its effects must be idempotent.
            task.ran_on = execution.node_id
            task.ran_local = execution.local
            task.on_attempt_end(task, failed)
        if failed:
            if execution.span is not None:
                execution.span.end("failed")
            task.attempts += 1
            self._record_node_failure(execution.node_id)
            if self._running.get(task.task_id):
                # A speculative copy is still in flight; it is the retry.
                self.metrics.inc("task_failures")
            elif task.attempts > self.max_retries:
                self.metrics.inc("tasks_abandoned")
                self._release_ticket(task)
                if task.on_abandon is not None:
                    task.on_abandon(task)
                self._fail_dependents(task)
            else:
                self.metrics.inc("task_failures")
                task.submitted_at = self.simulation.now
                self._queue.append(task)
            self._dispatch()
            return
        task.finished_at = self.simulation.now
        task.ran_on = execution.node_id
        task.ran_local = execution.local
        if execution.span is not None:
            execution.span.end("ok")
        self._cancel_siblings(execution)
        self.metrics.inc("tasks_completed")
        self._completed_tasks.add(task.task_id)
        for dependent in self._dependents.pop(task.task_id, ()):
            if self._deps_met(dependent):
                # The dependent only now became runnable: restart its
                # locality-wait clock so it still gets a fair local window.
                dependent.submitted_at = self.simulation.now
        self._release_ticket(task)
        if task.on_complete is not None:
            task.on_complete(task)
        self._dispatch()

    def _fail_dependents(self, task: Task) -> None:
        """A task reached a terminal state without completing: every queued
        task that depends on it can never run — abandon them in cascade
        (releasing their tickets) rather than deadlock the drain."""
        for dependent in self._dependents.pop(task.task_id, ()):
            if dependent not in self._queue:
                continue  # already terminal via another path
            self._queue.remove(dependent)
            self.metrics.inc("tasks_abandoned")
            self._release_ticket(dependent)
            if dependent.on_abandon is not None:
                dependent.on_abandon(dependent)
            self._fail_dependents(dependent)

    def cancel_task(self, task: Task) -> bool:
        """Withdraw a task: dequeue it and kill any running copies (E25's
        budget-kill path). The admission ticket is released exactly once; no
        completion callback fires; queued dependents are abandoned. Returns
        True if anything was actually cancelled — completed tasks and tasks
        unknown to the scheduler are a no-op.
        """
        if task.finished_at is not None:
            return False
        cancelled = False
        if task in self._queue:
            self._queue.remove(task)
            cancelled = True
        for execution in list(self._running.get(task.task_id, ())):
            Simulation.cancel(execution.event)
            if execution.span is not None:
                execution.span.end("cancelled")
            self._retire(execution)
            cancelled = True
        if cancelled:
            self.metrics.inc("tasks_cancelled")
            self._release_ticket(task)
            self._fail_dependents(task)
            self._dispatch()
        return cancelled

    @property
    def dead_nodes(self) -> Set[int]:
        """Node ids that have crashed (or been lost) so far, as a copy."""
        return set(self._dead_nodes)

    def _record_node_failure(self, node_id: int) -> None:
        if self.blacklist_after is None or node_id in self._dead_nodes:
            return
        count = self._node_failures.get(node_id, 0) + 1
        self._node_failures[node_id] = count
        if count < self.blacklist_after or node_id in self._blacklisted:
            return
        usable = [
            n.node_id
            for n in self.nodes
            if n.node_id not in self._dead_nodes
            and n.node_id not in self._blacklisted
            and n.node_id != node_id
        ]
        if not usable:
            return  # never blacklist the last schedulable node
        self._blacklisted.add(node_id)
        self.metrics.inc("nodes_blacklisted")

    def _crash_node(self, node_id: int) -> None:
        """The node dies: slots vanish; running work is re-queued or lost."""
        if node_id in self._dead_nodes:
            return
        self._dead_nodes.add(node_id)
        self.metrics.inc("node_crashes")
        self._free_slots["cpu"].pop(node_id, None)
        self._free_slots["gpu"].pop(node_id, None)
        victims = [
            execution
            for executions in self._running.values()
            for execution in executions
            if execution.node_id == node_id
        ]
        for execution in victims:
            Simulation.cancel(execution.event)
            if execution.span is not None:
                execution.span.end("killed")
            self._retire(execution)
            task = execution.task
            if task.finished_at is not None or self._running.get(task.task_id):
                continue  # another copy survives elsewhere
            if self.crash_recovery:
                task.submitted_at = self.simulation.now
                self._queue.append(task)
            else:
                self.metrics.inc("tasks_lost")
                self._release_ticket(task)
                if task.on_abandon is not None:
                    task.on_abandon(task)
                self._fail_dependents(task)
        self._dispatch()
