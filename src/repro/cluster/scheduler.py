"""Locality-aware task scheduling (delay scheduling) with fault tolerance.

The paper's platform "provides services to move the processing to where the
data is". The mechanism that realises this in Spark-land is *delay
scheduling*: when a slot frees on node N, prefer a queued task whose input is
local to N; a task waits up to ``locality_wait_s`` of simulated time for a
local slot before it accepts a remote one and pays the input transfer.

Experiment E13's ablation compares ``locality_wait_s = 0`` (no locality) with
the default.

Fault tolerance (experiment E17) threads through a
:class:`~repro.faults.injector.FaultInjector`:

* **node crashes** — the node's slots disappear and its running tasks are
  re-queued (``crash_recovery=True``) or lost (``tasks_lost``);
* **stragglers** — slowed nodes trigger *speculative execution*: a second
  copy of a late task launches on a healthy node, first finish wins;
* **blacklisting** — nodes that repeatedly fail tasks stop receiving work.

With no injector and the tolerance knobs at their defaults the scheduler is
byte-identical to the fault-free implementation.

Retry accounting semantics (pinned by the regression suite): a failed
attempt that *will be retried* counts toward ``task_failures``; the final
failed attempt of a task that exhausts ``max_retries`` counts as exactly one
``tasks_abandoned`` (not also a failure). A task abandoned after N retries
therefore contributes N failures and 1 abandonment.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, TYPE_CHECKING

from repro.errors import ClusterError
from repro.cluster.resources import ClusterSpec, Node
from repro.cluster.simclock import Event, Simulation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.faults.injector import FaultInjector


@dataclass
class Task:
    """A unit of work.

    ``work_s`` is the compute time on a speed-1.0 slot; the input is
    ``input_bytes`` stored on ``preferred_nodes`` (empty = no locality
    preference).
    """

    task_id: int
    work_s: float
    kind: str = "cpu"
    input_bytes: float = 0.0
    preferred_nodes: Set[int] = field(default_factory=set)
    on_complete: Optional[Callable[["Task"], None]] = None

    submitted_at: float = field(default=0.0, init=False)
    started_at: Optional[float] = field(default=None, init=False)
    finished_at: Optional[float] = field(default=None, init=False)
    ran_local: Optional[bool] = field(default=None, init=False)
    ran_on: Optional[int] = field(default=None, init=False)
    attempts: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.work_s < 0:
            raise ClusterError("task work must be non-negative")
        if self.kind not in ("cpu", "gpu"):
            raise ClusterError(f"unknown task kind {self.kind!r}")


@dataclass
class _Execution:
    """One running copy of a task (speculation can run several)."""

    task: Task
    node_id: int
    event: Event
    local: bool
    speculative: bool = False


@dataclass
class SchedulerMetrics:
    """Aggregate outcomes of a scheduling run."""

    tasks_completed: int = 0
    locality_hits: int = 0
    locality_misses: int = 0
    bytes_transferred: float = 0.0
    makespan_s: float = 0.0
    task_failures: int = 0
    tasks_abandoned: int = 0
    node_crashes: int = 0
    speculative_launches: int = 0
    tasks_lost: int = 0
    nodes_blacklisted: int = 0

    @property
    def locality_rate(self) -> float:
        total = self.locality_hits + self.locality_misses
        if total == 0:
            return 1.0
        return self.locality_hits / total


class Scheduler:
    """FIFO scheduler with delay scheduling over a simulated cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        simulation: Optional[Simulation] = None,
        locality_wait_s: float = 3.0,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        failure_seed: int = 0,
        injector: Optional["FaultInjector"] = None,
        crash_recovery: bool = True,
        speculation: bool = False,
        speculation_factor: float = 2.0,
        blacklist_after: Optional[int] = None,
    ):
        if locality_wait_s < 0:
            raise ClusterError("locality_wait_s must be non-negative")
        if not 0.0 <= failure_rate < 1.0:
            raise ClusterError("failure_rate must be in [0, 1)")
        if max_retries < 0:
            raise ClusterError("max_retries must be non-negative")
        if speculation_factor <= 1.0:
            raise ClusterError("speculation_factor must be > 1")
        if blacklist_after is not None and blacklist_after < 1:
            raise ClusterError("blacklist_after must be >= 1")
        self.spec = spec
        self.simulation = simulation if simulation is not None else Simulation()
        self.locality_wait_s = locality_wait_s
        self.failure_rate = failure_rate
        self.max_retries = max_retries
        self._failure_rng = random.Random(failure_seed)
        self.injector = injector
        self.crash_recovery = crash_recovery
        self.speculation = speculation
        self.speculation_factor = speculation_factor
        self.blacklist_after = blacklist_after
        self.nodes: List[Node] = spec.build_nodes()
        self.metrics = SchedulerMetrics()
        self._queue: List[Task] = []
        self._free_slots: Dict[str, Dict[int, int]] = {
            "cpu": {n.node_id: n.cpu_slots for n in self.nodes},
            "gpu": {n.node_id: n.gpu_slots for n in self.nodes},
        }
        self._task_counter = itertools.count()
        self._next_wakeup: Optional[float] = None
        self._last_finish_s = 0.0
        self._running: Dict[int, List[_Execution]] = {}
        self._dead_nodes: Set[int] = set()
        self._blacklisted: Set[int] = set()
        self._node_failures: Dict[int, int] = {}
        if injector is not None:
            self._apply_plan(injector)

    def _apply_plan(self, injector: "FaultInjector") -> None:
        """Install stragglers and schedule the plan's node crashes."""
        for node in self.nodes:
            factor = injector.straggler_factor(node.node_id)
            if factor != 1.0:
                node.speed = node.speed / factor
            crash_at = injector.node_crash_time(node.node_id)
            if crash_at is not None:
                self.simulation.schedule_at(
                    max(crash_at, self.simulation.now),
                    lambda node_id=node.node_id: self._crash_node(node_id),
                )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def make_task(
        self,
        work_s: float,
        kind: str = "cpu",
        input_bytes: float = 0.0,
        preferred_nodes: Optional[Set[int]] = None,
        on_complete: Optional[Callable[[Task], None]] = None,
    ) -> Task:
        return Task(
            task_id=next(self._task_counter),
            work_s=work_s,
            kind=kind,
            input_bytes=input_bytes,
            preferred_nodes=set(preferred_nodes or ()),
            on_complete=on_complete,
        )

    def submit(self, task: Task) -> None:
        task.submitted_at = self.simulation.now
        self._queue.append(task)
        self._dispatch()

    def submit_all(self, tasks: List[Task]) -> None:
        for task in tasks:
            task.submitted_at = self.simulation.now
            self._queue.append(task)
        self._dispatch()

    def run(self) -> SchedulerMetrics:
        """Run the simulation until all submitted tasks complete."""
        self.simulation.run()
        if self._queue:
            raise ClusterError(
                f"{len(self._queue)} tasks still queued after simulation drain "
                "(no capacity for their kind?)"
            )
        # Makespan is the last task completion; pending locality wake-ups may
        # have pushed the simulation clock further with no work happening.
        self.metrics.makespan_s = self._last_finish_s
        return self.metrics

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        # Repeatedly match queued tasks to free slots.
        progress = True
        while progress:
            progress = False
            for task in list(self._queue):
                node_id = self._pick_node(task)
                if node_id is None:
                    continue
                self._queue.remove(task)
                self._launch(task, node_id)
                progress = True
        self._schedule_locality_wakeup()

    def _schedule_locality_wakeup(self) -> None:
        """Wake the dispatcher when the earliest locality wait expires, so
        tasks don't stall while remote slots sit free."""
        expiries = [
            t.submitted_at + self.locality_wait_s
            for t in self._queue
            if t.preferred_nodes
        ]
        if not expiries:
            return
        earliest = min(expiries)
        if earliest <= self.simulation.now:
            return
        if (
            self._next_wakeup is not None
            and self.simulation.now < self._next_wakeup <= earliest
        ):
            return
        self._next_wakeup = earliest
        self.simulation.schedule_at(earliest, self._dispatch)

    def _schedulable(self, node_id: int) -> bool:
        return node_id not in self._blacklisted

    def _pick_node(self, task: Task) -> Optional[int]:
        free = self._free_slots[task.kind]
        local_candidates = [
            n
            for n in task.preferred_nodes
            if free.get(n, 0) > 0 and self._schedulable(n)
        ]
        if local_candidates:
            return min(local_candidates)
        waited = self.simulation.now - task.submitted_at
        if task.preferred_nodes and waited < self.locality_wait_s:
            # Keep waiting for a local slot.
            return None
        candidates = [
            n for n, slots in free.items() if slots > 0 and self._schedulable(n)
        ]
        if not candidates:
            return None
        return min(candidates)

    def _launch(self, task: Task, node_id: int, speculative: bool = False) -> None:
        node = self.nodes[node_id]
        self._free_slots[task.kind][node_id] -= 1
        task.started_at = self.simulation.now
        task.ran_on = node_id
        local = not task.preferred_nodes or node_id in task.preferred_nodes
        task.ran_local = local
        duration = task.work_s / node.speed
        if not local and task.input_bytes:
            duration += self.spec.transfer_time_s(task.input_bytes)
            self.metrics.bytes_transferred += task.input_bytes
        if local:
            self.metrics.locality_hits += 1
        else:
            self.metrics.locality_misses += 1

        execution = _Execution(
            task=task, node_id=node_id, event=None, local=local,  # type: ignore[arg-type]
            speculative=speculative,
        )

        def finish() -> None:
            self._finish(execution)

        execution.event = self.simulation.schedule(duration, finish)
        self._running.setdefault(task.task_id, []).append(execution)

        if self.speculation and not speculative:
            nominal = task.work_s / self.spec.node_speed
            if nominal > 0 and duration > self.speculation_factor * nominal:
                # The copy is visibly late the moment a healthy node would
                # have finished it; check for a speculative slot then.
                self.simulation.schedule(
                    self.speculation_factor * nominal,
                    lambda: self._maybe_speculate(task),
                )

    def _maybe_speculate(self, task: Task) -> None:
        """Launch a backup copy of a straggling task on a healthy free node.

        If every candidate slot is busy, the check re-arms itself — the
        straggler may hold its copy for many multiples of the nominal
        runtime, and a slot freeing up later is still worth taking.
        """
        if task.finished_at is not None:
            return
        executions = self._running.get(task.task_id)
        if not executions:
            return  # queued for retry; the queue is its backup path
        if any(e.speculative for e in executions):
            return  # one backup copy at a time
        busy = {e.node_id for e in executions}
        free = self._free_slots[task.kind]
        candidates = [
            n
            for n, slots in free.items()
            if slots > 0
            and n not in busy
            and self._schedulable(n)
            and self.nodes[n].speed > self.nodes[executions[0].node_id].speed
        ]
        if not candidates:
            retry_in = task.work_s / self.spec.node_speed
            if retry_in > 0:
                self.simulation.schedule(
                    retry_in, lambda: self._maybe_speculate(task)
                )
            return
        # Prefer the fastest free node; break ties toward the lowest id.
        best = max(candidates, key=lambda n: (self.nodes[n].speed, -n))
        self.metrics.speculative_launches += 1
        self._launch(task, best, speculative=True)

    # ------------------------------------------------------------------
    # Completion, failure, and crash handling
    # ------------------------------------------------------------------

    def _retire(self, execution: _Execution) -> None:
        """Remove a finished/cancelled execution and free its slot."""
        executions = self._running.get(execution.task.task_id)
        if executions and execution in executions:
            executions.remove(execution)
            if not executions:
                del self._running[execution.task.task_id]
        if execution.node_id not in self._dead_nodes:
            self._free_slots[execution.task.kind][execution.node_id] += 1

    def _cancel_siblings(self, execution: _Execution) -> None:
        """A copy won (or the task was abandoned): kill the other copies."""
        for sibling in list(self._running.get(execution.task.task_id, ())):
            if sibling is execution:
                continue
            Simulation.cancel(sibling.event)
            self._retire(sibling)

    def _finish(self, execution: _Execution) -> None:
        task = execution.task
        self._last_finish_s = max(self._last_finish_s, self.simulation.now)
        self._retire(execution)
        # Injected failure: the attempt burned its slot time, then died.
        failed = bool(
            self.failure_rate and self._failure_rng.random() < self.failure_rate
        )
        if not failed and self.injector is not None:
            failed = self.injector.task_fails(task.task_id)
        if failed:
            task.attempts += 1
            self._record_node_failure(execution.node_id)
            if self._running.get(task.task_id):
                # A speculative copy is still in flight; it is the retry.
                self.metrics.task_failures += 1
            elif task.attempts > self.max_retries:
                self.metrics.tasks_abandoned += 1
            else:
                self.metrics.task_failures += 1
                task.submitted_at = self.simulation.now
                self._queue.append(task)
            self._dispatch()
            return
        task.finished_at = self.simulation.now
        task.ran_on = execution.node_id
        task.ran_local = execution.local
        self._cancel_siblings(execution)
        self.metrics.tasks_completed += 1
        if task.on_complete is not None:
            task.on_complete(task)
        self._dispatch()

    def _record_node_failure(self, node_id: int) -> None:
        if self.blacklist_after is None or node_id in self._dead_nodes:
            return
        count = self._node_failures.get(node_id, 0) + 1
        self._node_failures[node_id] = count
        if count < self.blacklist_after or node_id in self._blacklisted:
            return
        usable = [
            n.node_id
            for n in self.nodes
            if n.node_id not in self._dead_nodes
            and n.node_id not in self._blacklisted
            and n.node_id != node_id
        ]
        if not usable:
            return  # never blacklist the last schedulable node
        self._blacklisted.add(node_id)
        self.metrics.nodes_blacklisted += 1

    def _crash_node(self, node_id: int) -> None:
        """The node dies: slots vanish; running work is re-queued or lost."""
        if node_id in self._dead_nodes:
            return
        self._dead_nodes.add(node_id)
        self.metrics.node_crashes += 1
        self._free_slots["cpu"].pop(node_id, None)
        self._free_slots["gpu"].pop(node_id, None)
        victims = [
            execution
            for executions in self._running.values()
            for execution in executions
            if execution.node_id == node_id
        ]
        for execution in victims:
            Simulation.cancel(execution.event)
            self._retire(execution)
            task = execution.task
            if task.finished_at is not None or self._running.get(task.task_id):
                continue  # another copy survives elsewhere
            if self.crash_recovery:
                task.submitted_at = self.simulation.now
                self._queue.append(task)
            else:
                self.metrics.tasks_lost += 1
        self._dispatch()
