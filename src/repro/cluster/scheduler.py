"""Locality-aware task scheduling (delay scheduling).

The paper's platform "provides services to move the processing to where the
data is". The mechanism that realises this in Spark-land is *delay
scheduling*: when a slot frees on node N, prefer a queued task whose input is
local to N; a task waits up to ``locality_wait_s`` of simulated time for a
local slot before it accepts a remote one and pays the input transfer.

Experiment E13's ablation compares ``locality_wait_s = 0`` (no locality) with
the default.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.errors import ClusterError
from repro.cluster.resources import ClusterSpec, Node
from repro.cluster.simclock import Simulation


@dataclass
class Task:
    """A unit of work.

    ``work_s`` is the compute time on a speed-1.0 slot; the input is
    ``input_bytes`` stored on ``preferred_nodes`` (empty = no locality
    preference).
    """

    task_id: int
    work_s: float
    kind: str = "cpu"
    input_bytes: float = 0.0
    preferred_nodes: Set[int] = field(default_factory=set)
    on_complete: Optional[Callable[["Task"], None]] = None

    submitted_at: float = field(default=0.0, init=False)
    started_at: Optional[float] = field(default=None, init=False)
    finished_at: Optional[float] = field(default=None, init=False)
    ran_local: Optional[bool] = field(default=None, init=False)
    ran_on: Optional[int] = field(default=None, init=False)
    attempts: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.work_s < 0:
            raise ClusterError("task work must be non-negative")
        if self.kind not in ("cpu", "gpu"):
            raise ClusterError(f"unknown task kind {self.kind!r}")


@dataclass
class SchedulerMetrics:
    """Aggregate outcomes of a scheduling run."""

    tasks_completed: int = 0
    locality_hits: int = 0
    locality_misses: int = 0
    bytes_transferred: float = 0.0
    makespan_s: float = 0.0
    task_failures: int = 0
    tasks_abandoned: int = 0

    @property
    def locality_rate(self) -> float:
        total = self.locality_hits + self.locality_misses
        if total == 0:
            return 1.0
        return self.locality_hits / total


class Scheduler:
    """FIFO scheduler with delay scheduling over a simulated cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        simulation: Optional[Simulation] = None,
        locality_wait_s: float = 3.0,
        failure_rate: float = 0.0,
        max_retries: int = 3,
        failure_seed: int = 0,
    ):
        if locality_wait_s < 0:
            raise ClusterError("locality_wait_s must be non-negative")
        if not 0.0 <= failure_rate < 1.0:
            raise ClusterError("failure_rate must be in [0, 1)")
        if max_retries < 0:
            raise ClusterError("max_retries must be non-negative")
        self.spec = spec
        self.simulation = simulation if simulation is not None else Simulation()
        self.locality_wait_s = locality_wait_s
        self.failure_rate = failure_rate
        self.max_retries = max_retries
        self._failure_rng = random.Random(failure_seed)
        self.nodes: List[Node] = spec.build_nodes()
        self.metrics = SchedulerMetrics()
        self._queue: List[Task] = []
        self._free_slots: Dict[str, Dict[int, int]] = {
            "cpu": {n.node_id: n.cpu_slots for n in self.nodes},
            "gpu": {n.node_id: n.gpu_slots for n in self.nodes},
        }
        self._task_counter = itertools.count()
        self._next_wakeup: Optional[float] = None
        self._last_finish_s = 0.0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def make_task(
        self,
        work_s: float,
        kind: str = "cpu",
        input_bytes: float = 0.0,
        preferred_nodes: Optional[Set[int]] = None,
        on_complete: Optional[Callable[[Task], None]] = None,
    ) -> Task:
        return Task(
            task_id=next(self._task_counter),
            work_s=work_s,
            kind=kind,
            input_bytes=input_bytes,
            preferred_nodes=set(preferred_nodes or ()),
            on_complete=on_complete,
        )

    def submit(self, task: Task) -> None:
        task.submitted_at = self.simulation.now
        self._queue.append(task)
        self._dispatch()

    def submit_all(self, tasks: List[Task]) -> None:
        for task in tasks:
            task.submitted_at = self.simulation.now
            self._queue.append(task)
        self._dispatch()

    def run(self) -> SchedulerMetrics:
        """Run the simulation until all submitted tasks complete."""
        self.simulation.run()
        if self._queue:
            raise ClusterError(
                f"{len(self._queue)} tasks still queued after simulation drain "
                "(no capacity for their kind?)"
            )
        # Makespan is the last task completion; pending locality wake-ups may
        # have pushed the simulation clock further with no work happening.
        self.metrics.makespan_s = self._last_finish_s
        return self.metrics

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        # Repeatedly match queued tasks to free slots.
        progress = True
        while progress:
            progress = False
            for task in list(self._queue):
                node_id = self._pick_node(task)
                if node_id is None:
                    continue
                self._queue.remove(task)
                self._launch(task, node_id)
                progress = True
        self._schedule_locality_wakeup()

    def _schedule_locality_wakeup(self) -> None:
        """Wake the dispatcher when the earliest locality wait expires, so
        tasks don't stall while remote slots sit free."""
        expiries = [
            t.submitted_at + self.locality_wait_s
            for t in self._queue
            if t.preferred_nodes
        ]
        if not expiries:
            return
        earliest = min(expiries)
        if earliest <= self.simulation.now:
            return
        if (
            self._next_wakeup is not None
            and self.simulation.now < self._next_wakeup <= earliest
        ):
            return
        self._next_wakeup = earliest
        self.simulation.schedule_at(earliest, self._dispatch)

    def _pick_node(self, task: Task) -> Optional[int]:
        free = self._free_slots[task.kind]
        local_candidates = [
            n for n in task.preferred_nodes if free.get(n, 0) > 0
        ]
        if local_candidates:
            return min(local_candidates)
        waited = self.simulation.now - task.submitted_at
        if task.preferred_nodes and waited < self.locality_wait_s:
            # Keep waiting for a local slot.
            return None
        candidates = [n for n, slots in free.items() if slots > 0]
        if not candidates:
            return None
        return min(candidates)

    def _launch(self, task: Task, node_id: int) -> None:
        node = self.nodes[node_id]
        self._free_slots[task.kind][node_id] -= 1
        task.started_at = self.simulation.now
        task.ran_on = node_id
        local = not task.preferred_nodes or node_id in task.preferred_nodes
        task.ran_local = local
        duration = task.work_s / node.speed
        if not local and task.input_bytes:
            duration += self.spec.transfer_time_s(task.input_bytes)
            self.metrics.bytes_transferred += task.input_bytes
        if local:
            self.metrics.locality_hits += 1
        else:
            self.metrics.locality_misses += 1

        def finish() -> None:
            self._last_finish_s = max(self._last_finish_s, self.simulation.now)
            self._free_slots[task.kind][node_id] += 1
            # Injected failure: the attempt burned its slot time, then died.
            if self.failure_rate and self._failure_rng.random() < self.failure_rate:
                self.metrics.task_failures += 1
                task.attempts += 1
                if task.attempts > self.max_retries:
                    self.metrics.tasks_abandoned += 1
                else:
                    task.submitted_at = self.simulation.now
                    self._queue.append(task)
                self._dispatch()
                return
            task.finished_at = self.simulation.now
            self.metrics.tasks_completed += 1
            if task.on_complete is not None:
                task.on_complete(task)
            self._dispatch()

        self.simulation.schedule(duration, finish)
