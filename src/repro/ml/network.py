"""Sequential model container."""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MLError
from repro.ml.layers import Layer, Parameter
from repro.ml.losses import softmax_probabilities


class Sequential:
    """A stack of layers trained with backprop."""

    def __init__(self, layers: Sequence[Layer]):
        if not layers:
            raise MLError("Sequential requires at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    @property
    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    @property
    def parameter_bytes(self) -> int:
        """Model size in bytes (float32 on the wire), for the comm models."""
        return self.parameter_count * 4

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax of logits)."""
        return self.forward(x, training=False).argmax(axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return softmax_probabilities(self.forward(x, training=False))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {
            f"{index}.{p.name}": p.value.copy()
            for index, layer in enumerate(self.layers)
            for p in layer.parameters()
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for index, layer in enumerate(self.layers):
            for p in layer.parameters():
                key = f"{index}.{p.name}"
                if key not in state:
                    raise MLError(f"missing parameter {key} in state dict")
                if state[key].shape != p.value.shape:
                    raise MLError(
                        f"shape mismatch for {key}: "
                        f"{state[key].shape} vs {p.value.shape}"
                    )
                p.value[...] = state[key]

    def save(self, path: str) -> None:
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})
