"""Optimizers and large-minibatch learning-rate schedules.

The warmup schedule implements the recipe of Goyal et al., "Accurate, Large
Minibatch SGD: Training ImageNet in 1 Hour" (cited by the paper as the
state of the art ExtremeEarth wants to transfer to EO): scale the base
learning rate linearly with the number of workers and ramp up to it over the
first few epochs to avoid early divergence. Experiment E4's ablation trains
with and without the warmup.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import MLError
from repro.ml.layers import Parameter


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, parameters: List[Parameter], lr: float):
        if lr <= 0:
            raise MLError(f"learning rate must be positive, got {lr}")
        if not parameters:
            raise MLError("optimizer needs at least one parameter")
        self.parameters = parameters
        self.lr = lr

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Optimizer state as named arrays (for checkpoint files)."""
        return {"lr": np.float64(self.lr)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "lr" not in state:
            raise MLError("optimizer state missing 'lr'")
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise MLError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.value
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.value -= self.lr * update

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        for index, velocity in enumerate(self._velocity):
            state[f"velocity.{index}"] = velocity.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        for index, velocity in enumerate(self._velocity):
            key = f"velocity.{index}"
            if key not in state:
                raise MLError(f"optimizer state missing {key}")
            velocity[...] = state[key]


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: List[Parameter],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2, self.eps = beta1, beta2, eps
        self._m = [np.zeros_like(p.value) for p in parameters]
        self._v = [np.zeros_like(p.value) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            grad = parameter.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state["t"] = np.int64(self._t)
        for index, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{index}"] = m.copy()
            state[f"v.{index}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        if "t" not in state:
            raise MLError("optimizer state missing 't'")
        self._t = int(state["t"])
        for index, (m, v) in enumerate(zip(self._m, self._v)):
            for key, target in ((f"m.{index}", m), (f"v.{index}", v)):
                if key not in state:
                    raise MLError(f"optimizer state missing {key}")
                target[...] = state[key]


class WarmupLinearScalingSchedule:
    """Goyal-et-al. schedule: target lr = base_lr * workers, linear warmup.

    ``lr_at(step)`` ramps from ``base_lr`` to ``base_lr * workers`` over
    ``warmup_steps``, then holds. With ``warmup_steps=0`` the scaled rate
    applies immediately (the unstable regime the ablation demonstrates).
    """

    def __init__(self, base_lr: float, workers: int, warmup_steps: int = 0):
        if base_lr <= 0:
            raise MLError("base_lr must be positive")
        if workers < 1:
            raise MLError("workers must be >= 1")
        if warmup_steps < 0:
            raise MLError("warmup_steps must be non-negative")
        self.base_lr = base_lr
        self.workers = workers
        self.warmup_steps = warmup_steps
        self.target_lr = base_lr * workers

    def lr_at(self, step: int) -> float:
        if step < 0:
            raise MLError("step must be non-negative")
        if self.warmup_steps == 0 or step >= self.warmup_steps:
            return self.target_lr
        fraction = (step + 1) / self.warmup_steps
        return self.base_lr + (self.target_lr - self.base_lr) * fraction

    def apply(self, optimizer: Optimizer, step: int) -> None:
        optimizer.lr = self.lr_at(step)
