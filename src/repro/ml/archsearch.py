"""Model-architecture search (the second HOPS "parallel experiments" service).

The paper: HOPS "provides its own libraries for parallel deep learning
experiments (hyperparameter search and model-architecture search)".
This module adds the architecture half: a declarative CNN space
(:class:`ArchitectureSpec`), a builder, and a random search over the space
reusing the trial machinery of :mod:`repro.ml.hyperparam`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import MLError
from repro.ml.hyperparam import SearchResult, TrialResult
from repro.ml.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU
from repro.ml.network import Sequential


@dataclass(frozen=True)
class ArchitectureSpec:
    """A CNN architecture: conv filter counts (one pooling per block),
    a dense head width, and optional dropout."""

    conv_filters: Tuple[int, ...] = (16, 32)
    dense_width: int = 64
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if not self.conv_filters:
            raise MLError("architecture needs at least one conv block")
        if any(f < 1 for f in self.conv_filters):
            raise MLError("conv filter counts must be positive")
        if self.dense_width < 1:
            raise MLError("dense_width must be positive")
        if not 0.0 <= self.dropout < 1.0:
            raise MLError("dropout must be in [0, 1)")

    def required_patch_divisor(self) -> int:
        return 2 ** len(self.conv_filters)

    def parameter_estimate(self, bands: int, patch_size: int, classes: int) -> int:
        """Rough parameter count, for cost-aware search."""
        total = 0
        in_channels = bands
        for filters in self.conv_filters:
            total += in_channels * filters * 9 + filters
            in_channels = filters
        reduced = patch_size // self.required_patch_divisor()
        total += in_channels * reduced * reduced * self.dense_width + self.dense_width
        total += self.dense_width * classes + classes
        return total


def build_architecture(
    spec: ArchitectureSpec,
    bands: int,
    patch_size: int,
    classes: int,
    seed: int = 0,
) -> Sequential:
    """Instantiate the CNN a spec describes."""
    divisor = spec.required_patch_divisor()
    if patch_size % divisor != 0 or patch_size // divisor < 1:
        raise MLError(
            f"patch size {patch_size} incompatible with "
            f"{len(spec.conv_filters)} pooling stages"
        )
    layers: List = []
    in_channels = bands
    for index, filters in enumerate(spec.conv_filters):
        layers.append(
            Conv2D(in_channels, filters, kernel_size=3, padding="same",
                   seed=seed + index)
        )
        layers.append(ReLU())
        layers.append(MaxPool2D(2))
        in_channels = filters
    layers.append(Flatten())
    reduced = patch_size // divisor
    layers.append(
        Dense(in_channels * reduced * reduced, spec.dense_width, seed=seed + 100)
    )
    layers.append(ReLU())
    if spec.dropout > 0:
        layers.append(Dropout(spec.dropout, seed=seed + 200))
    layers.append(Dense(spec.dense_width, classes, seed=seed + 101))
    return Sequential(layers)


def random_architecture(
    rng: random.Random,
    max_blocks: int = 3,
    filter_choices: Sequence[int] = (8, 16, 32, 64),
    dense_choices: Sequence[int] = (32, 64, 128),
    dropout_choices: Sequence[float] = (0.0, 0.25, 0.5),
) -> ArchitectureSpec:
    """Sample one spec from the default search space."""
    blocks = rng.randint(1, max_blocks)
    return ArchitectureSpec(
        conv_filters=tuple(rng.choice(list(filter_choices)) for _ in range(blocks)),
        dense_width=rng.choice(list(dense_choices)),
        dropout=rng.choice(list(dropout_choices)),
    )


def architecture_search(
    objective: Callable[[ArchitectureSpec], Tuple[float, float]],
    trials: int = 8,
    seed: int = 0,
    parallel_slots: int = 4,
    max_blocks: int = 3,
) -> SearchResult:
    """Random architecture search; *objective* maps a spec to (score, cost).

    Duplicate specs are evaluated once (the sampler may repeat small spaces).
    """
    if trials < 1:
        raise MLError("trials must be >= 1")
    rng = random.Random(seed)
    results: List[TrialResult] = []
    seen = {}
    for _ in range(trials):
        spec = random_architecture(rng, max_blocks=max_blocks)
        key = (spec.conv_filters, spec.dense_width, spec.dropout)
        if key in seen:
            results.append(seen[key])
            continue
        score, cost = objective(spec)
        trial = TrialResult(
            config=(
                ("conv_filters", spec.conv_filters),
                ("dense_width", spec.dense_width),
                ("dropout", spec.dropout),
            ),
            score=score,
            cost_s=cost,
        )
        seen[key] = trial
        results.append(trial)
    return SearchResult(results, parallel_slots)
