"""Neural network layers with analytic gradients.

Every layer implements ``forward(x, training)`` and ``backward(dout)``;
trainable state lives in :class:`Parameter` objects (value + accumulated
gradient) that optimizers consume. Gradients are exact — the test suite
checks each layer against central-difference numeric gradients.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import MLError
from repro.ml.initializers import he_normal, xavier_uniform, zeros


class Parameter:
    """A trainable array and its gradient."""

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Layer:
    """Base layer."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0):
        if in_features < 1 or out_features < 1:
            raise MLError("Dense features must be positive")
        rng = np.random.default_rng(seed)
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng), "dense.weight")
        self.bias = Parameter(zeros((out_features,)), "dense.bias")
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.value.shape[0]:
            raise MLError(
                f"Dense expects (N, {self.weight.value.shape[0]}), got {x.shape}"
            )
        self._x = x
        return x @ self.weight.value + self.bias.value

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise MLError("backward before forward")
        self.weight.grad += self._x.T @ dout
        self.bias.grad += dout.sum(axis=0)
        return dout @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class Conv2D(Layer):
    """2-D convolution (cross-correlation), stride 1, 'same' or 'valid' padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        padding: str = "same",
        seed: int = 0,
    ):
        if kernel_size < 1:
            raise MLError("kernel_size must be >= 1")
        if padding not in ("same", "valid"):
            raise MLError(f"unknown padding {padding!r}")
        if padding == "same" and kernel_size % 2 == 0:
            raise MLError("'same' padding requires an odd kernel size")
        rng = np.random.default_rng(seed)
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(he_normal(shape, rng), "conv.weight")
        self.bias = Parameter(zeros((out_channels,)), "conv.bias")
        self.kernel_size = kernel_size
        self.padding = padding
        self._windows: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None

    def _pad(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.weight.value.shape[1]:
            raise MLError(
                f"Conv2D expects (N, {self.weight.value.shape[1]}, H, W), got {x.shape}"
            )
        pad = self._pad()
        if pad:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        if x.shape[2] < self.kernel_size or x.shape[3] < self.kernel_size:
            raise MLError("input smaller than kernel")
        self._x_shape = x.shape
        # (N, C, OH, OW, KH, KW)
        windows = sliding_window_view(x, (self.kernel_size, self.kernel_size), axis=(2, 3))
        self._windows = windows
        out = np.einsum("nchwkl,fckl->nfhw", windows, self.weight.value, optimize=True)
        return out + self.bias.value[np.newaxis, :, np.newaxis, np.newaxis]

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._windows is None or self._x_shape is None:
            raise MLError("backward before forward")
        self.weight.grad += np.einsum(
            "nchwkl,nfhw->fckl", self._windows, dout, optimize=True
        )
        self.bias.grad += dout.sum(axis=(0, 2, 3))

        # dx: scatter each kernel tap's contribution back onto the padded input.
        n, channels, height, width = self._x_shape
        dx_padded = np.zeros((n, channels, height, width))
        out_h, out_w = dout.shape[2], dout.shape[3]
        for kh in range(self.kernel_size):
            for kw in range(self.kernel_size):
                # contribution: dout (n,f,oh,ow) x W[f,c,kh,kw] -> (n,c,oh,ow)
                contribution = np.einsum(
                    "nfhw,fc->nchw", dout, self.weight.value[:, :, kh, kw], optimize=True
                )
                dx_padded[:, :, kh : kh + out_h, kw : kw + out_w] += contribution
        pad = self._pad()
        if pad:
            return dx_padded[:, :, pad:-pad, pad:-pad]
        return dx_padded

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]


class MaxPool2D(Layer):
    """Non-overlapping max pooling (kernel = stride). Requires divisible dims."""

    def __init__(self, pool_size: int = 2):
        if pool_size < 1:
            raise MLError("pool_size must be >= 1")
        self.pool_size = pool_size
        self._mask: Optional[np.ndarray] = None
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        k = self.pool_size
        if x.ndim != 4:
            raise MLError(f"MaxPool2D expects 4-D input, got {x.shape}")
        n, c, h, w = x.shape
        if h % k or w % k:
            raise MLError(f"input {h}x{w} not divisible by pool size {k}")
        self._in_shape = x.shape
        blocks = x.reshape(n, c, h // k, k, w // k, k)
        # Reorder to (n, c, h//k, w//k, k, k) so each block is contiguous.
        blocks = blocks.transpose(0, 1, 2, 4, 3, 5)
        out = blocks.max(axis=(4, 5))
        # Mask marking the *first* max within each block (tie-broken), so the
        # backward pass routes each gradient to exactly one input.
        flat = (blocks == out[..., np.newaxis, np.newaxis]).reshape(
            n, c, h // k, w // k, k * k
        )
        first = np.zeros_like(flat, dtype=np.float64)
        idx = flat.argmax(axis=-1)
        np.put_along_axis(first, idx[..., np.newaxis], 1.0, axis=-1)
        self._mask = first.reshape(n, c, h // k, w // k, k, k)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None or self._in_shape is None:
            raise MLError("backward before forward")
        k = self.pool_size
        n, c, h, w = self._in_shape
        # mask is (n, c, h//k, w//k, k, k); broadcast dout over the block dims.
        grads = self._mask * dout[:, :, :, :, np.newaxis, np.newaxis]
        # Reassemble to (n, c, h, w): blocks laid out row-major.
        grads = grads.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h, w)
        return grads


class Flatten(Layer):
    """Flatten all but the batch dimension."""

    def __init__(self):
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise MLError("backward before forward")
        return dout.reshape(self._shape)


class ReLU(Layer):
    def __init__(self):
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise MLError("backward before forward")
        return dout * self._mask


class Dropout(Layer):
    """Inverted dropout; identity at inference."""

    def __init__(self, rate: float = 0.5, seed: int = 0):
        if not 0.0 <= rate < 1.0:
            raise MLError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask


class BatchNorm(Layer):
    """Batch normalization over the batch (and spatial dims for 4-D input)."""

    def __init__(self, features: int, momentum: float = 0.9, eps: float = 1e-5):
        if features < 1:
            raise MLError("features must be positive")
        self.gamma = Parameter(np.ones(features), "bn.gamma")
        self.beta = Parameter(np.zeros(features), "bn.beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(features)
        self.running_var = np.ones(features)
        self._cache = None

    def _axes(self, x: np.ndarray) -> Tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise MLError(f"BatchNorm expects 2-D or 4-D input, got {x.shape}")

    def _reshape(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 2:
            return stat
        return stat[np.newaxis, :, np.newaxis, np.newaxis]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = self._axes(x)
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        mean_b = self._reshape(mean, x.ndim)
        var_b = self._reshape(var, x.ndim)
        x_hat = (x - mean_b) / np.sqrt(var_b + self.eps)
        self._cache = (x_hat, var_b, axes, x.ndim)
        return self._reshape(self.gamma.value, x.ndim) * x_hat + self._reshape(
            self.beta.value, x.ndim
        )

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise MLError("backward before forward")
        x_hat, var_b, axes, ndim = self._cache
        count = np.prod([dout.shape[a] for a in axes])
        self.gamma.grad += (dout * x_hat).sum(axis=axes)
        self.beta.grad += dout.sum(axis=axes)
        gamma_b = self._reshape(self.gamma.value, ndim)
        dxhat = dout * gamma_b
        # Standard batchnorm backward (training-mode statistics).
        dx = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
        ) / np.sqrt(var_b + self.eps)
        return dx

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]
