"""Loss functions: value and gradient in one call."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MLError


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy over the batch.

    ``logits``: (N, C) raw scores; ``labels``: (N,) integer class ids.
    Returns (loss, dlogits). Numerically stable via the log-sum-exp shift.
    """
    if logits.ndim != 2:
        raise MLError(f"logits must be (N, C), got {logits.shape}")
    n, c = logits.shape
    labels = np.asarray(labels)
    if labels.shape != (n,):
        raise MLError(f"labels must be ({n},), got {labels.shape}")
    if labels.min() < 0 or labels.max() >= c:
        raise MLError("label out of range")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    log_likelihood = -np.log(probs[np.arange(n), labels] + 1e-300)
    loss = float(log_likelihood.mean())
    dlogits = probs.copy()
    dlogits[np.arange(n), labels] -= 1.0
    dlogits /= n
    return loss, dlogits


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error; returns (loss, dpredictions)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise MLError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    diff = predictions - targets
    loss = float((diff**2).mean())
    grad = 2.0 * diff / diff.size
    return loss, grad


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Softmax over the last axis (stable)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
