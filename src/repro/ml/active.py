"""Active and semi-supervised learning for remote sensing classification.

The paper grounds Challenge C1 in Persello & Bruzzone, "Active and
Semisupervised Learning for the Classification of Remote Sensing Images"
[20]: labelled EO data is scarce and expensive ("it is not feasible to assume
the availability of enough ground truth"), so the label budget must be spent
where it matters and the unlabelled archive must be exploited.

* :func:`uncertainty_sampling` / :func:`margin_sampling` — query strategies
  scoring pool samples by predictive entropy or margin;
* :class:`ActiveLearner` — the budgeted labelling loop: train, query the
  most informative samples, label, repeat (random sampling is the baseline);
* :func:`self_training` — semi-supervised pseudo-labelling: confident
  predictions on unlabelled data join the training set, iterated to a
  fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MLError
from repro.datasets.eurosat import Dataset
from repro.ml.network import Sequential


def predictive_entropy(probabilities: np.ndarray) -> np.ndarray:
    """Shannon entropy per row of a (N, C) probability matrix."""
    probabilities = np.asarray(probabilities)
    if probabilities.ndim != 2:
        raise MLError("probabilities must be (N, C)")
    clipped = np.clip(probabilities, 1e-12, 1.0)
    return -(clipped * np.log(clipped)).sum(axis=1)


def prediction_margin(probabilities: np.ndarray) -> np.ndarray:
    """Best-minus-second-best probability per row (small = uncertain)."""
    probabilities = np.asarray(probabilities)
    if probabilities.ndim != 2 or probabilities.shape[1] < 2:
        raise MLError("probabilities must be (N, C) with C >= 2")
    top_two = np.sort(probabilities, axis=1)[:, -2:]
    return top_two[:, 1] - top_two[:, 0]


def uncertainty_sampling(
    model: Sequential, pool_x: np.ndarray, count: int
) -> np.ndarray:
    """Indices of the *count* highest-entropy pool samples."""
    if count < 1:
        raise MLError("count must be >= 1")
    entropy = predictive_entropy(model.predict_proba(pool_x))
    return np.argsort(entropy)[::-1][:count]


def margin_sampling(
    model: Sequential, pool_x: np.ndarray, count: int
) -> np.ndarray:
    """Indices of the *count* smallest-margin pool samples."""
    if count < 1:
        raise MLError("count must be >= 1")
    margin = prediction_margin(model.predict_proba(pool_x))
    return np.argsort(margin)[:count]


def random_sampling(
    pool_size: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """The baseline: *count* indices drawn uniformly without replacement."""
    if count < 1 or count > pool_size:
        raise MLError(f"cannot draw {count} from a pool of {pool_size}")
    return rng.choice(pool_size, size=count, replace=False)


@dataclass
class ActiveRound:
    """One round of the labelling loop."""

    labelled: int
    accuracy: float


@dataclass
class ActiveLearner:
    """A budgeted active-learning loop over a labelled pool.

    The pool's labels play the oracle: they are revealed only when queried.
    ``train_fn(model, dataset)`` trains in place; ``model_fn(bands)``
    constructs a fresh model per round (retraining from scratch keeps
    rounds comparable).
    """

    model_fn: Callable[[], Sequential]
    train_fn: Callable[[Sequential, Dataset], None]
    strategy: str = "uncertainty"  # uncertainty | margin | random
    seed: int = 0

    def run(
        self,
        pool: Dataset,
        test: Dataset,
        initial: int = 20,
        batch: int = 20,
        rounds: int = 5,
    ) -> Tuple[Sequential, List[ActiveRound]]:
        """Run the loop; returns (final model, per-round history)."""
        from repro.ml.metrics import accuracy as accuracy_fn

        if self.strategy not in ("uncertainty", "margin", "random"):
            raise MLError(f"unknown strategy {self.strategy!r}")
        if initial < 1 or batch < 1 or rounds < 1:
            raise MLError("initial, batch, and rounds must be >= 1")
        if initial + batch * rounds > len(pool):
            raise MLError("label budget exceeds the pool size")
        rng = np.random.default_rng(self.seed)

        labelled_idx = list(rng.choice(len(pool), size=initial, replace=False))
        history: List[ActiveRound] = []
        model = self.model_fn()
        for _ in range(rounds):
            labelled = pool.subset(np.asarray(sorted(labelled_idx)))
            model = self.model_fn()
            self.train_fn(model, labelled)
            history.append(
                ActiveRound(
                    labelled=len(labelled_idx),
                    accuracy=accuracy_fn(model.predict(test.x), test.y),
                )
            )
            unlabelled = np.setdiff1d(
                np.arange(len(pool)), np.asarray(labelled_idx)
            )
            if unlabelled.size == 0:
                break
            take = min(batch, unlabelled.size)
            if self.strategy == "random":
                picked = random_sampling(unlabelled.size, take, rng)
            elif self.strategy == "margin":
                picked = margin_sampling(model, pool.x[unlabelled], take)
            else:
                picked = uncertainty_sampling(model, pool.x[unlabelled], take)
            labelled_idx.extend(unlabelled[picked].tolist())
        return model, history


def self_training(
    model_fn: Callable[[], Sequential],
    train_fn: Callable[[Sequential, Dataset], None],
    labelled: Dataset,
    unlabelled_x: np.ndarray,
    confidence: float = 0.9,
    max_iterations: int = 3,
) -> Tuple[Sequential, Dataset, List[int]]:
    """Iterated pseudo-labelling.

    Each iteration trains on the current labelled set, pseudo-labels the
    unlabelled samples the model is confident about (max probability >=
    ``confidence``), and absorbs them. Stops when nothing new qualifies.
    Returns (final model, final training set, adopted-per-iteration counts).
    """
    if not 0.5 < confidence <= 1.0:
        raise MLError("confidence must be in (0.5, 1.0]")
    remaining = np.asarray(unlabelled_x)
    current = labelled
    adopted_history: List[int] = []
    model = model_fn()
    train_fn(model, current)
    for _ in range(max_iterations):
        if remaining.shape[0] == 0:
            break
        probabilities = model.predict_proba(remaining)
        best = probabilities.max(axis=1)
        confident = best >= confidence
        adopted = int(confident.sum())
        adopted_history.append(adopted)
        if adopted == 0:
            break
        pseudo_labels = probabilities[confident].argmax(axis=1)
        current = Dataset(
            np.concatenate([current.x, remaining[confident]]),
            np.concatenate([current.y, pseudo_labels.astype(np.int64)]),
            current.class_names,
        )
        remaining = remaining[~confident]
        model = model_fn()
        train_fn(model, current)
    return model, current, adopted_history
