"""Classification metrics."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import MLError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    predictions = np.asarray(predictions).ravel()
    labels = np.asarray(labels).ravel()
    if predictions.shape != labels.shape:
        raise MLError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise MLError("accuracy of empty arrays")
    return float((predictions == labels).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Rows = true class, columns = predicted class.

    Class ids must be non-negative and, when ``num_classes`` is given,
    below it — fancy indexing would otherwise silently wrap negative ids
    to the end of the matrix, corrupting every metric built on top.
    """
    predictions = np.asarray(predictions).ravel()
    labels = np.asarray(labels).ravel()
    if predictions.shape != labels.shape:
        raise MLError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise MLError("confusion matrix of empty arrays")
    lowest = int(min(predictions.min(), labels.min()))
    if lowest < 0:
        raise MLError(f"class ids must be non-negative, got {lowest}")
    highest = int(max(predictions.max(), labels.max()))
    if num_classes is None:
        num_classes = highest + 1
    elif num_classes < 1:
        raise MLError(f"num_classes must be >= 1, got {num_classes}")
    elif highest >= num_classes:
        raise MLError(
            f"class id {highest} out of range for num_classes={num_classes}"
        )
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def f1_scores(predictions: np.ndarray, labels: np.ndarray) -> Dict[int, float]:
    """Per-class F1. Classes absent from both arrays are omitted."""
    matrix = confusion_matrix(predictions, labels)
    scores: Dict[int, float] = {}
    for class_id in range(matrix.shape[0]):
        tp = matrix[class_id, class_id]
        fp = matrix[:, class_id].sum() - tp
        fn = matrix[class_id, :].sum() - tp
        if tp + fp + fn == 0:
            continue
        denominator = 2 * tp + fp + fn
        scores[class_id] = float(2 * tp / denominator) if denominator else 0.0
    return scores


def mean_iou(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Mean intersection-over-union across classes present in the data."""
    matrix = confusion_matrix(predictions, labels)
    ious = []
    for class_id in range(matrix.shape[0]):
        tp = matrix[class_id, class_id]
        union = matrix[class_id, :].sum() + matrix[:, class_id].sum() - tp
        if union == 0:
            continue
        ious.append(tp / union)
    if not ious:
        raise MLError("mean_iou: no classes present")
    return float(np.mean(ious))
